"""The paper's full deployment story, end to end.

1. Execute a training workload (TPC-H variants + TPC-DS) and capture, per
   pipeline, the ~200 features and every candidate estimator's error — the
   cheap capture loop of §6.4.
2. Train the MART-based estimator-selection models (static features and
   static+dynamic features).
3. Attach a ProgressMonitor to a *new, ad-hoc* query on a *different*
   database (the Real-1 sales schema): the monitor picks an estimator per
   pipeline from static features at pipeline start and revises the choice
   once 20% of the driver input has been consumed (§4.4).

Run:  python examples/train_and_monitor.py        (~1 minute)
"""

from repro.core.monitor import ProgressMonitor
from repro.core.training import train_selector
from repro.engine.executor import ExecutorConfig
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scale import TINY
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec


def main() -> None:
    harness = ExperimentHarness(TINY, seed=3)

    print("Step 1: executing training workloads "
          "(tpch x3 designs + tpcds) ...")
    train_workloads = ["tpch_untuned", "tpch_partial", "tpch_full", "tpcds"]
    static_data = harness.pooled_training_data(train_workloads, "static")
    dynamic_data = harness.pooled_training_data(train_workloads, "dynamic")
    print(f"  captured {static_data.n_examples} pipeline examples, "
          f"{dynamic_data.X.shape[1]} features (dynamic mode)")

    print("Step 2: training the per-estimator MART error models ...")
    static_selector = train_selector(static_data, TINY.mart_params())
    dynamic_selector = train_selector(dynamic_data, TINY.mart_params())
    print(f"  trained {len(static_selector.models)} static models in "
          f"{static_selector.training_seconds_:.1f}s, "
          f"{len(dynamic_selector.models)} dynamic models in "
          f"{dynamic_selector.training_seconds_:.1f}s")

    print("Step 3: monitoring an ad-hoc query on an unseen database ...")
    bundle = harness.suite.bundle("real1")  # never part of training
    query = QuerySpec(
        name="adhoc_report",
        tables=["sales", "product", "category", "store", "calendar"],
        joins=[JoinEdge("sales", "sale_product", "product", "prod_key"),
               JoinEdge("product", "prod_category", "category", "cat_key"),
               JoinEdge("sales", "sale_store", "store", "store_key"),
               JoinEdge("sales", "sale_day", "calendar", "day_key")],
        filters=[FilterSpec("calendar", "day_month", "<=", 6),
                 FilterSpec("product", "prod_price", "<=", 60.0)],
        group_by=["cat_department"],
        aggregates=[Aggregate("sum", "sale_amount"), Aggregate("count")],
        order_by=["sum_sale_amount"],
    )
    plan = bundle.planner.plan(query)
    print(plan.pretty())

    switches = []
    last = {}

    def watch(report):
        for pid, name in report.pipeline_estimator.items():
            if last.get(pid) != name:
                switches.append((report.time, pid, last.get(pid), name))
                last[pid] = name

    monitor = ProgressMonitor(static_selector=static_selector,
                              dynamic_selector=dynamic_selector,
                              refresh_every=3, on_report=watch)
    run, reports = monitor.run(bundle.db, plan, query_name=query.name,
                               config=ExecutorConfig(seed=4, batch_size=128,
                                                     target_observations=150))

    print(f"\n  query finished in {run.total_time:,.1f} simulated seconds; "
          f"{len(reports)} progress reports emitted")
    print("  estimator choices over time (pipeline, old -> new):")
    for t, pid, old, new in switches:
        kind = "revised (dynamic)" if old else "initial (static)"
        print(f"    t={t:8.1f}s  pipeline {pid}: "
              f"{old or '-'} -> {new}   [{kind}]")

    final = reports[-1]
    print(f"  final reported progress: {final.progress:.1%}")

    print("\nStep 4: was the selection any good? (offline comparison)")
    from repro.progress import all_estimators
    from repro.progress.metrics import evaluate_pipeline
    for pr in run.pipeline_runs(min_observations=8):
        chosen = last.get(pr.pid)
        scored = {r.estimator: r.l1
                  for r in evaluate_pipeline(pr, all_estimators())}
        best = min(scored, key=scored.get)
        print(f"  pipeline {pr.pid}: chose {chosen} "
              f"(L1={scored.get(chosen, float('nan')):.3f}); "
              f"best was {best} (L1={scored[best]:.3f})")


if __name__ == "__main__":
    main()
