"""Quickstart: run a query on a synthetic TPC-H database and watch it.

Demonstrates the core objects in ~60 lines:

* generate a skewed TPC-H-shaped database,
* plan a 3-way join + aggregation with the cost-based planner,
* execute it on the simulated engine while a ProgressMonitor (using the
  classic DNE estimator as a conventional "progress bar") reports progress,
* compare the final estimator errors on the executed pipelines.

Run:  python examples/quickstart.py
"""

from repro import ProgressMonitor, quickstart_components
from repro.engine.executor import ExecutorConfig
from repro.progress import all_estimators
from repro.progress.metrics import evaluate_pipeline
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec


def main() -> None:
    db, planner, _ = quickstart_components(lineitem_rows=20_000, z=1.0)
    query = QuerySpec(
        name="quickstart",
        tables=["customer", "orders", "lineitem"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("orders", "o_orderdate", "<=", 1600),
                 FilterSpec("lineitem", "l_quantity", ">=", 5.0)],
        group_by=["c_nationkey"],
        aggregates=[Aggregate("sum", "l_extendedprice"), Aggregate("count")],
        order_by=["sum_l_extendedprice"],
        top=10,
    )
    print("Query:", query.describe())
    plan = planner.plan(query)
    print("\nPhysical plan:")
    print(plan.pretty())

    print("\nExecuting with a live progress bar (DNE estimator):")

    def render(report):
        bar = "#" * int(report.progress * 40)
        print(f"  t={report.time:7.1f}s  [{bar:<40}] "
              f"{report.progress:6.1%}  (pipeline {report.active_pid}, "
              f"{report.active_estimator})")

    monitor = ProgressMonitor(fallback="dne", refresh_every=25,
                              on_report=render)
    config = ExecutorConfig(collect_output=True, seed=1)
    run, reports = monitor.run(db, plan, query_name=query.name, config=config)

    print(f"\nDone: {run.output_rows} result rows in "
          f"{run.total_time:,.1f} simulated seconds, "
          f"{len(run.pipelines)} pipelines, {len(run.times)} observations.")
    if run.output is not None and len(run.output):
        print("First result rows (nation, revenue — ascending):")
        for i in range(min(5, len(run.output))):
            print(f"  nation {int(run.output.column('c_nationkey')[i]):3d}  "
                  f"revenue {run.output.column('sum_l_extendedprice')[i]:14,.2f}")

    print("\nHow would each progress estimator have done, per pipeline?")
    for pr in run.pipeline_runs(min_observations=8):
        reports = evaluate_pipeline(pr, all_estimators(include_worst_case=True))
        ranked = sorted(reports, key=lambda r: r.l1)
        summary = "  ".join(f"{r.estimator}={r.l1:.3f}" for r in ranked)
        print(f"  pipeline {pr.pid}: {summary}")


if __name__ == "__main__":
    main()
