"""Ad-hoc generalization study (the paper's §6.2, as a script).

Leave-one-workload-out over the six evaluation workloads: for each held-out
workload, train the selection models on the other five and score on the
held-out pipelines.  Prints a Figure-5-style summary table: average L1 for
each fixed estimator, for estimator selection (static/dynamic features),
and for the oracle lower bound.

Run:  python examples/adhoc_generalization.py           (~2 minutes)
      REPRO_SCALE=small python examples/adhoc_generalization.py  (bigger)
"""

import numpy as np

from repro.core.evaluate import (
    evaluate_fixed,
    evaluate_oracle,
    evaluate_selection,
)
from repro.core.training import train_selector
from repro.experiments.harness import ExperimentHarness
from repro.experiments.results import format_table
from repro.experiments.scale import active_scale

POOL = ["dne", "tgn", "luo", "batch_dne", "dne_seek", "tgn_int"]


def main() -> None:
    scale = active_scale(default="tiny")
    print(f"scale profile: {scale.name}")
    harness = ExperimentHarness(scale, seed=0)

    per_method: dict[str, list[float]] = {}
    optimal_rates: list[float] = []
    for held_out in harness.suite.names:
        print(f"hold out {held_out} ...")
        results = {}
        for mode in ("static", "dynamic"):
            train, test = harness.leave_one_out(held_out, mode)
            train = train.restrict_estimators(POOL)
            test = test.restrict_estimators(POOL)
            selector = train_selector(train, scale.mart_params())
            evaluation = evaluate_selection(selector, test)
            results[f"selection ({mode})"] = evaluation.avg_l1
            if mode == "dynamic":
                optimal_rates.append(evaluation.optimal_rate)
                for name in POOL:
                    results[name] = evaluate_fixed(test, name).avg_l1
                results["oracle"] = evaluate_oracle(test).avg_l1
        for method, value in results.items():
            per_method.setdefault(method, []).append(value)

    rows = sorted(((m, float(np.mean(vs))) for m, vs in per_method.items()),
                  key=lambda r: r[1])
    table = format_table(["method", "avg L1 (6-fold leave-one-out)"], rows,
                         title="Ad-hoc generalization (paper §6.2 protocol)")
    print("\n" + table)
    print(f"\nselection picks a near-optimal estimator on "
          f"{np.mean(optimal_rates):.0%} of held-out pipelines")
    best_single = min(np.mean(per_method[n]) for n in POOL)
    sel = np.mean(per_method["selection (dynamic)"])
    print(f"best single estimator L1: {best_single:.4f}; "
          f"selection (dynamic): {sel:.4f}")


if __name__ == "__main__":
    main()
