"""Estimator gallery: how the eight estimators track one hard pipeline.

Builds the nested-iteration plan behind the paper's Figure 6 (index
nested-loop join with a partial batch sort on the outer), executes it, and
renders every estimator's progress trajectory against the time-based truth
as ASCII line plots — the quickest way to develop intuition for *why*
different estimators win on different plans.

Run:  python examples/estimator_gallery.py
"""

from repro.catalog.statistics import build_statistics
from repro.datagen.tpch import generate_tpch
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.experiments.results import ascii_series
from repro.optimizer.planner import Planner, PlannerConfig
from repro.plan.nodes import Op
from repro.progress import all_estimators
from repro.progress.metrics import l1_error
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec


def main() -> None:
    db = generate_tpch(lineitem_rows=20_000, z=1.5, seed=11)
    db.table("lineitem").create_index("l_orderkey")
    db.table("orders").create_index("o_totalprice")
    planner = Planner(db, build_statistics(db), PlannerConfig(
        batch_sort_min_outer=150.0, cost_seek_probe=0.5,
        batch_sort_initial=256, batch_sort_growth=2.0))
    query = QuerySpec(
        name="gallery",
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("orders", "o_totalprice", "between",
                            (20_000.0, 120_000.0))],
        aggregates=[Aggregate("sum", "l_extendedprice")],
    )
    plan = planner.plan(query)
    print(plan.pretty())
    if not plan.find_all(Op.BATCH_SORT):
        print("\n(note: the optimizer did not pick a batch sort at this "
              "scale; curves still differ)")

    run = QueryExecutor(db, ExecutorConfig(
        batch_size=32, target_observations=400, seed=2)).execute(plan)
    pipeline = max(run.pipeline_runs(min_observations=10),
                   key=lambda pr: pr.duration)
    truth = pipeline.true_progress()
    print(f"\nmain pipeline: {pipeline.n_observations} observations over "
          f"{pipeline.duration:,.1f} simulated seconds")
    print()
    print(ascii_series(pipeline.times, truth, label="TRUE PROGRESS"))

    scored = []
    for estimator in all_estimators(include_worst_case=True):
        curve = estimator.estimate(pipeline)
        scored.append((l1_error(curve, truth), estimator.name, curve))
    for l1, name, curve in sorted(scored):
        print()
        print(ascii_series(pipeline.times, curve,
                           label=f"{name.upper()}  (L1 = {l1:.3f})"))


if __name__ == "__main__":
    main()
