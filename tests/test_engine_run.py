"""Unit tests for QueryRun / PipelineRun slicing and derived quantities."""

import numpy as np
from repro.plan.nodes import Op


class TestPipelineSlicing:
    def test_pipeline_runs_scorable(self, join_run):
        runs = join_run.pipeline_runs(min_observations=5)
        assert runs
        for pr in runs:
            assert pr.n_observations >= 5
            assert pr.duration > 0

    def test_min_observations_filtering(self, join_run):
        lax = join_run.pipeline_runs(min_observations=2)
        strict = join_run.pipeline_runs(min_observations=50)
        assert len(lax) >= len(strict)

    def test_columns_match_members(self, join_run):
        for pr in join_run.pipeline_runs(min_observations=5):
            assert pr.K.shape == (pr.n_observations, pr.n_nodes)
            assert len(pr.ops) == pr.n_nodes
            assert len(pr.E0) == pr.n_nodes

    def test_observations_inside_window(self, join_run):
        for pr in join_run.pipeline_runs(min_observations=5):
            assert (pr.times >= pr.t_start - 1e-9).all()
            assert (pr.times <= pr.t_end + 1e-9).all()

    def test_unexecuted_pipeline_returns_none(self, join_run):
        # Ask for an absurd number of observations: always None.
        for info in join_run.pipelines:
            assert join_run.pipeline_run(info.pid, min_observations=10**6) is None


class TestDerivedQuantities:
    def test_true_progress_monotone_in_window(self, pipeline_runs):
        for pr in pipeline_runs:
            progress = pr.true_progress()
            assert ((0 <= progress) & (progress <= 1)).all()
            assert (np.diff(progress) >= -1e-12).all()

    def test_driver_fraction_monotone_bounded(self, pipeline_runs):
        for pr in pipeline_runs:
            fraction = pr.driver_fraction()
            assert ((0 <= fraction) & (fraction <= 1)).all()
            assert (np.diff(fraction) >= -1e-12).all()

    def test_driver_fraction_completes(self, pipeline_runs):
        # by the end of a completed pipeline the driver input is consumed
        for pr in pipeline_runs:
            assert pr.driver_fraction()[-1] >= 0.95

    def test_known_totals_exact_for_scans(self, pipeline_runs):
        for pr in pipeline_runs:
            totals = pr.known_totals()
            for j, op in enumerate(pr.ops):
                if op in (Op.TABLE_SCAN, Op.INDEX_SCAN):
                    assert totals[j] == pr.table_rows[j]
                if op in (Op.SORT, Op.HASH_AGG):
                    assert totals[j] == pr.N[j]

    def test_marker_observation_lookup(self, pipeline_runs):
        for pr in pipeline_runs:
            t5 = pr.observation_at_driver_fraction(5.0)
            t20 = pr.observation_at_driver_fraction(20.0)
            assert t5 is not None and t20 is not None
            assert t5 <= t20
            assert pr.driver_fraction()[t20] >= 0.2 - 1e-9

    def test_marker_never_reached(self, pipeline_runs):
        pr = pipeline_runs[0]
        assert pr.observation_at_driver_fraction(1000.0) is None

    def test_node_mask(self, pipeline_runs):
        for pr in pipeline_runs:
            mask = pr.node_mask(Op.FILTER, Op.INDEX_SCAN)
            expected = [op in (Op.FILTER, Op.INDEX_SCAN) for op in pr.ops]
            assert mask.tolist() == expected
