"""Unit tests for repro.catalog.table: columnar tables and indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, TableSchema
from repro.catalog.table import SortedIndex, Table, _expand_ranges


def make_table(values, clustered=None):
    schema = TableSchema("t", (Column("k"), Column("v", "float64")))
    data = {"k": np.asarray(values), "v": np.asarray(values, dtype=float) * 1.5}
    return Table(schema, data, clustered_on=clustered)


class TestExpandRanges:
    def test_simple(self):
        out = _expand_ranges(np.array([0, 5]), np.array([2, 3]))
        assert out.tolist() == [0, 1, 5, 6, 7]

    def test_empty_counts(self):
        out = _expand_ranges(np.array([3, 9]), np.array([0, 0]))
        assert out.tolist() == []

    def test_mixed(self):
        out = _expand_ranges(np.array([1, 4, 4]), np.array([1, 0, 2]))
        assert out.tolist() == [1, 4, 5]

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)),
                    max_size=20))
    def test_matches_naive(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        counts = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = [s + i for s, c in pairs for i in range(c)]
        assert _expand_ranges(starts, counts).tolist() == expected


class TestSortedIndex:
    def test_lookup_many_counts(self):
        idx = SortedIndex("k", np.array([5, 3, 5, 1, 5]))
        positions, counts = idx.lookup_many(np.array([5, 2, 3]))
        assert counts.tolist() == [3, 0, 1]
        assert sorted(positions[:3].tolist()) == [0, 2, 4]
        assert positions[3] == 1

    def test_lookup_range_inclusive(self):
        idx = SortedIndex("k", np.array([10, 20, 30, 40]))
        assert sorted(idx.lookup_range(20, 30).tolist()) == [1, 2]

    def test_lookup_range_all(self):
        idx = SortedIndex("k", np.array([4, 2, 9]))
        assert len(idx.lookup_range(-100, 100)) == 3

    def test_match_counts(self):
        idx = SortedIndex("k", np.array([1, 1, 2]))
        assert idx.match_counts(np.array([1, 2, 3])).tolist() == [2, 1, 0]

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=50),
           st.lists(st.integers(0, 9), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_lookup_matches_naive(self, values, probes):
        values = np.asarray(values)
        idx = SortedIndex("k", values)
        positions, counts = idx.lookup_many(np.asarray(probes))
        offset = 0
        for probe, count in zip(probes, counts):
            found = positions[offset:offset + count]
            assert (values[found] == probe).all()
            assert count == int((values == probe).sum())
            offset += count


class TestTable:
    def test_ragged_columns_rejected(self):
        schema = TableSchema("t", (Column("k"), Column("v")))
        with pytest.raises(ValueError, match="ragged"):
            Table(schema, {"k": np.arange(3), "v": np.arange(4)})

    def test_missing_column_rejected(self):
        schema = TableSchema("t", (Column("k"), Column("v")))
        with pytest.raises(ValueError, match="missing"):
            Table(schema, {"k": np.arange(3)})

    def test_cluster_on_sorts_rows(self):
        table = make_table([3, 1, 2])
        table.cluster_on("k")
        assert table.column("k").tolist() == [1, 2, 3]
        assert table.column("v").tolist() == [1.5, 3.0, 4.5]

    def test_cluster_on_rebuilds_indexes(self):
        table = make_table([3, 1, 2])
        table.create_index("v")
        table.cluster_on("k")
        positions, counts = table.indexes["v"].lookup_many(np.array([3.0]))
        assert counts.tolist() == [1]
        assert table.column("v")[positions[0]] == 3.0

    def test_has_index_secondary_and_clustered(self):
        table = make_table([1, 2, 3], clustered="k")
        assert table.has_index("k")
        assert not table.has_index("v")
        table.create_index("v")
        assert table.has_index("v")

    def test_seek_index_on_clustered_column(self):
        table = make_table([1, 2, 3], clustered="k")
        index = table.seek_index("k")
        _, counts = index.lookup_many(np.array([2]))
        assert counts.tolist() == [1]

    def test_seek_index_missing_raises(self):
        with pytest.raises(KeyError, match="no index"):
            make_table([1]).seek_index("v")

    def test_drop_index(self):
        table = make_table([1, 2])
        table.create_index("v")
        table.drop_index("v")
        assert not table.has_index("v")

    def test_row_width(self):
        assert make_table([1]).row_width == 16
