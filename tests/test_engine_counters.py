"""Tests for the counter store and observation log."""

import numpy as np
import pytest

from repro.engine.counters import CounterStore, ObservationLog, UNBOUNDED


class TestCounterStore:
    def test_initial_state(self):
        store = CounterStore(3)
        assert store.K.tolist() == [0, 0, 0]
        assert not store.done.any()
        assert np.isnan(store.first_activity).all()

    def test_record_activity_first_and_last(self):
        store = CounterStore(2)
        store.record_activity(0, 1.0)
        store.record_activity(0, 5.0)
        assert store.first_activity[0] == 1.0
        assert store.last_activity[0] == 5.0
        assert np.isnan(store.first_activity[1])


class TestObservationLog:
    def test_empty_log_arrays(self):
        log = ObservationLog(2)
        arrays = log.as_arrays()
        assert arrays["times"].shape == (0,)
        assert arrays["K"].shape == (0, 2)
        assert log.last_time == -np.inf

    def test_snapshot_copies_state(self):
        store = CounterStore(2)
        log = ObservationLog(2)
        store.K[0] = 5.0
        log.snapshot(1.0, store, np.zeros(2), np.full(2, UNBOUNDED))
        store.K[0] = 99.0  # later mutation must not leak into the snapshot
        arrays = log.as_arrays()
        assert arrays["K"][0, 0] == 5.0

    def test_snapshot_accumulates(self):
        store = CounterStore(1)
        log = ObservationLog(1)
        for t in (0.5, 1.5, 2.5):
            store.K[0] += 1
            log.snapshot(t, store, store.K.copy(), store.K.copy())
        assert len(log) == 3
        arrays = log.as_arrays()
        assert arrays["times"].tolist() == [0.5, 1.5, 2.5]
        assert arrays["K"][:, 0].tolist() == [1.0, 2.0, 3.0]
        assert log.last_time == 2.5

    def test_snapshot_records_done_flags(self):
        store = CounterStore(2)
        log = ObservationLog(2)
        log.snapshot(1.0, store, np.zeros(2), np.full(2, UNBOUNDED))
        store.done[1] = True
        log.snapshot(2.0, store, np.zeros(2), np.full(2, UNBOUNDED))
        arrays = log.as_arrays()
        assert arrays["D"].dtype == bool
        assert arrays["D"].tolist() == [[False, False], [False, True]]

    def test_empty_log_has_done_matrix(self):
        arrays = ObservationLog(3).as_arrays()
        assert arrays["D"].shape == (0, 3)
        assert arrays["D"].dtype == bool


class TestSnapshotValidation:
    """A mis-sized bounds vector used to be stored silently and only blow
    up much later inside estimator code; now it fails at the snapshot."""

    def test_wrong_lb_shape_rejected(self):
        log = ObservationLog(3)
        with pytest.raises(ValueError, match=r"shape \(3,\)"):
            log.snapshot(1.0, CounterStore(3), np.zeros(2),
                         np.full(3, UNBOUNDED))

    def test_wrong_ub_shape_rejected(self):
        log = ObservationLog(3)
        with pytest.raises(ValueError, match=r"shape \(3,\)"):
            log.snapshot(1.0, CounterStore(3), np.zeros(3),
                         np.full((3, 1), UNBOUNDED))

    def test_mismatched_counter_store_rejected(self):
        log = ObservationLog(3)
        with pytest.raises(ValueError, match="tracks 2 nodes"):
            log.snapshot(1.0, CounterStore(2), np.zeros(3),
                         np.full(3, UNBOUNDED))

    def test_nothing_stored_on_rejection(self):
        log = ObservationLog(2)
        with pytest.raises(ValueError):
            log.snapshot(1.0, CounterStore(2), np.zeros(3), np.zeros(3))
        assert len(log) == 0
        assert log.as_arrays()["K"].shape == (0, 2)
