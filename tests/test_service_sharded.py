"""Tests for the sharded multi-process progress service.

The load-bearing property extends pooling transparency across process
boundaries: a session served by a :class:`ShardedProgressService` — placed
on a shard, budget-gated, its reports shipped back through the trace-codec
wire format — must produce the bit-identical report stream the
single-process pooled service (and hence a solo monitor) produces.  These
tests replay the committed golden fuzz traces, so they run in the fast
suite; live-execution churn coverage lives in ``test_service.py`` and the
randomized sweep in the fuzz oracle's ``service`` layer.
"""

import pytest

from repro.core.monitor import ProgressMonitor
from repro.service import (
    MemoryBudgetExceeded,
    ProgressService,
    ShardedProgressService,
    place_session,
)
from repro.service.sharded import ShardWorker
from repro.trace.store import read_trace

from test_trace_golden import GOLDEN_DIR


def _monitor():
    return ProgressMonitor(refresh_every=2)


@pytest.fixture(scope="module")
def golden_runs():
    runs, _ = read_trace(GOLDEN_DIR / "fuzz")
    assert len(runs) >= 2
    # six sessions over the committed recordings: enough to spread across
    # every shard count under test
    return [runs[i % len(runs)] for i in range(6)]


@pytest.fixture(scope="module")
def solo_results(golden_runs):
    service = ProgressService(_monitor(), slice_steps=4)
    for run in golden_runs:
        service.submit_replay(run)
    return service.run_until_complete(max_ticks=100_000)


class TestPlacement:
    def test_round_robin_by_submission_index(self):
        assert [place_session(i, "q", 3) for i in range(7)] \
            == [0, 1, 2, 0, 1, 2, 0]

    def test_hash_is_stable_and_name_keyed(self):
        a = place_session(0, "query_a", 4, "hash")
        # independent of submission index, pure in the name
        assert all(place_session(i, "query_a", 4, "hash") == a
                   for i in range(5))
        spread = {place_session(0, f"q{i}", 4, "hash") for i in range(32)}
        assert len(spread) > 1, "hash placement must actually spread names"

    def test_hash_matches_crc32_not_salted_hash(self):
        # the placement contract: CRC32 of the utf-8 name, so the same
        # submission lands on the same shard in every process and run
        import zlib
        name = "tpch_q7"
        assert place_session(9, name, 5, "hash") \
            == zlib.crc32(name.encode()) % 5

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            place_session(0, "q", 2, "sticky")
        with pytest.raises(ValueError, match="unknown placement"):
            ShardedProgressService(_monitor(), n_shards=2, placement="nope")

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedProgressService(_monitor(), n_shards=0)


class TestInlineParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    @pytest.mark.parametrize("placement", ["round_robin", "hash"])
    def test_streams_bit_identical_to_pooled(self, golden_runs, solo_results,
                                             n_shards, placement):
        service = ShardedProgressService(
            _monitor(), n_shards=n_shards, slice_steps=4,
            placement=placement)
        sids = [service.submit_replay(run) for run in golden_runs]
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        assert set(results) == set(sids)
        for sid in sids:
            assert results[sid][1] == solo_results[sid][1]

    def test_default_shard_count_is_cpu_count(self):
        from repro.runtime import available_cpus
        service = ShardedProgressService(_monitor())
        assert service.n_shards == available_cpus()
        service.close()

    def test_on_report_fires_in_merged_submission_order(self, golden_runs):
        seen = []
        service = ShardedProgressService(
            _monitor(), n_shards=3, slice_steps=4,
            on_report=lambda sid, report: seen.append((sid, report)))
        sids = [service.submit_replay(run) for run in golden_runs]
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        # per-session projection of the hook sequence = that session's stream
        for sid in sids:
            assert [r for s, r in seen if s == sid] == results[sid][1]
        # within the whole soak, ids within each round are merged in
        # ascending submission order: the global sequence is sorted within
        # every contiguous tick window, which per-round capture guarantees
        assert len(seen) == sum(len(v[1]) for v in results.values())

    def test_keep_reports_false_drops_results(self, golden_runs):
        service = ShardedProgressService(
            _monitor(), n_shards=2, slice_steps=4, keep_reports=False)
        for run in golden_runs:
            service.submit_replay(run)
        assert service.run_until_complete(max_ticks=100_000) == {}
        fleet = service.stats.service
        assert fleet.sessions_completed == len(golden_runs)
        assert fleet.reports > 0  # the work still happened
        service.close()

    def test_resubmission_after_drain(self, golden_runs, solo_results):
        service = ShardedProgressService(_monitor(), n_shards=2,
                                         slice_steps=4)
        first = service.submit_replay(golden_runs[0])
        service.run_until_complete(max_ticks=100_000)
        assert not service.active
        second = service.submit_replay(golden_runs[1])
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        assert results[second][1] == solo_results[1][1]
        assert service.stats.service.sessions_completed == 2
        assert first != second

    def test_empty_fleet_drains_immediately(self):
        service = ShardedProgressService(_monitor(), n_shards=2)
        assert not service.active
        assert service.run_until_complete(max_ticks=10) == {}
        service.close()

    def test_closed_service_refuses_ticks(self, golden_runs):
        service = ShardedProgressService(_monitor(), n_shards=2)
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            service.tick()


class TestMemoryBudget:
    def test_oversized_run_rejected_at_submit(self, golden_runs):
        service = ShardedProgressService(_monitor(), n_shards=1,
                                         memory_budget_bytes=16)
        with pytest.raises(MemoryBudgetExceeded, match="budget"):
            service.submit_replay(golden_runs[0])
        service.close()

    def test_deferred_admissions_retry_after_retirement(self, golden_runs,
                                                        solo_results):
        # budget fits exactly one of the biggest runs: later submissions
        # must wait in FIFO and admit as earlier sessions retire — with
        # streams (and merge order) unchanged
        budget = max(run.nbytes for run in golden_runs)
        service = ShardedProgressService(_monitor(), n_shards=1,
                                         slice_steps=4,
                                         memory_budget_bytes=budget)
        sids = [service.submit_replay(run) for run in golden_runs]
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        stats = service.stats.shards[0]
        assert stats.deferrals > 0, "the budget never actually deferred"
        assert stats.bytes_peak <= budget
        assert stats.bytes_live == 0, "drained fleet still charges bytes"
        for sid in sids:
            assert results[sid][1] == solo_results[sid][1]

    def test_budget_charges_follow_admission_and_retirement(self,
                                                            golden_runs):
        run = golden_runs[0]
        worker = ShardWorker(0, _monitor(), slice_steps=4,
                             memory_budget_bytes=run.nbytes * 2)
        worker.enqueue(0, run)
        assert worker.stats.bytes_live == 0  # queued, not yet admitted
        worker.tick()
        assert worker.stats.bytes_live == run.nbytes
        while worker.active:
            worker.tick()
        assert worker.stats.bytes_live == 0
        assert worker.stats.bytes_peak == run.nbytes

    def test_worker_rejects_oversized_enqueue(self, golden_runs):
        worker = ShardWorker(0, _monitor(), memory_budget_bytes=8)
        with pytest.raises(MemoryBudgetExceeded):
            worker.enqueue(0, golden_runs[0])


class TestProcessMode:
    """One process-backed pass in the fast suite: the wire protocol end to
    end (submit/tick/stop frames, codec payloads, graceful drain)."""

    def test_streams_bit_identical_over_pipes(self, golden_runs,
                                              solo_results):
        with ShardedProgressService(
                _monitor, n_shards=2, slice_steps=4,
                processes=True) as service:
            sids = [service.submit_replay(run) for run in golden_runs]
            assert len(service.worker_pids) == 2
            results = service.run_until_complete(max_ticks=100_000)
            for sid in sids:
                assert results[sid][1] == solo_results[sid][1]
            fleet = service.stats.service
            assert fleet.sessions_completed == len(golden_runs)
            assert service.stats.tick_latency(99) >= 0.0

    def test_monitor_instance_rejected_for_processes(self):
        with pytest.raises(ValueError, match="factory"):
            ShardedProgressService(_monitor(), n_shards=2, processes=True)

    def test_inline_mode_has_no_worker_pids(self):
        service = ShardedProgressService(_monitor(), n_shards=2)
        assert service.worker_pids == []
        service.close()
