"""Tests for scale profiles, the experiment harness and result formatting."""

import json
import numpy as np
import pytest

from repro.experiments.harness import ExperimentHarness
from repro.experiments.results import ascii_series, format_table, save_result
from repro.experiments.scale import PAPER, SMALL, TINY, active_scale

pytestmark = pytest.mark.slow  # execution-backed: tiny-scale workload runs


class TestScaleProfiles:
    def test_sizes_ordered(self):
        assert TINY.suite.tpch_rows < SMALL.suite.tpch_rows < PAPER.suite.tpch_rows
        assert TINY.mart_trees <= SMALL.mart_trees <= PAPER.mart_trees

    def test_paper_profile_uses_paper_hyperparams(self):
        assert PAPER.mart_trees == 200
        assert PAPER.mart_leaves == 30

    def test_mart_params_overrides(self):
        params = TINY.mart_params(n_trees=3)
        assert params.n_trees == 3
        assert params.max_leaves == TINY.mart_leaves

    def test_active_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert active_scale().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            active_scale()

    def test_active_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_scale().name == "small"


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(TINY, seed=1)


class TestHarness:
    def test_runs_cached(self, harness):
        runs_a = harness.runs("tpcds")
        runs_b = harness.runs("tpcds")
        assert runs_a is runs_b
        assert len(runs_a) == TINY.suite.tpcds_queries

    def test_pipelines_nonempty(self, harness):
        assert len(harness.pipelines("tpcds")) > 0

    def test_training_data_shapes(self, harness):
        data = harness.training_data("tpcds", "static")
        assert data.n_examples == len(harness.pipelines("tpcds"))
        assert data.errors_l1.shape[1] == len(harness.estimators)

    def test_leave_one_out_disjoint(self, harness):
        train, test = harness.leave_one_out("tpcds", "static")
        train_dbs = {m["db"] for m in train.meta}
        test_dbs = {m["db"] for m in test.meta}
        assert "tpcds" in test_dbs
        assert "tpcds" not in train_dbs

    def test_volume_buckets_balanced(self, harness):
        data = harness.training_data("tpcds", "static")
        buckets = harness.volume_buckets(data, n_buckets=3)
        counts = np.bincount(buckets, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_volume_buckets_ordered(self, harness):
        data = harness.training_data("tpcds", "static")
        buckets = harness.volume_buckets(data, n_buckets=3)
        volumes = np.array([m["total_getnext"] for m in data.meta])
        assert volumes[buckets == 0].max() <= volumes[buckets == 2].min() + 1e-9


class TestResults:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2]],
                            title="T")
        assert "### T" in text
        assert "| a " in text and "1.5000" in text

    def test_save_result_writes_files(self, tmp_path, monkeypatch):
        import repro.experiments.results as results_mod
        monkeypatch.setattr(results_mod, "RESULTS_DIR", tmp_path)
        path = save_result("unit", "# hello", data={"x": np.float64(1.5)})
        assert path.read_text().startswith("# hello")
        payload = json.loads((tmp_path / "unit.json").read_text())
        assert payload["x"] == 1.5

    def test_ascii_series_renders(self):
        xs = np.linspace(0, 1, 50)
        art = ascii_series(xs, xs, label="diag")
        assert "diag" in art
        assert "*" in art
