"""Property-based tests: estimators on randomized synthetic trajectories.

Hypothesis generates arbitrary monotone counter trajectories for a small
operator zoo (shared strategies in ``tests/strategies.py``); every
estimator must stay within [0, 1], never produce NaN/inf, and remain
causal.  A second family of properties drives the trajectories through
the real :class:`ObservationLog` (snapshot → dense arrays →
:class:`PipelineRun`), and GetNext-model estimators must be monotone
whenever the counters are.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.nodes import Op
from repro.progress.registry import all_estimators
from repro.query.logical import JOIN_KINDS

from helpers import make_pipeline_run, truncate_run
from strategies import (
    executed_join_run,
    random_observation_log,
    random_pipeline,
)

ESTIMATORS = all_estimators(include_worst_case=True)

#: Estimators whose value is a ratio of monotone GetNext/bound aggregates
#: (the paper's GNM family plus [5]'s bound-interval estimators).  With
#: fixed totals and monotone counters these must be monotone; LUO is
#: excluded by design — it extrapolates from observed *speed*, which can
#: legitimately revise progress downward.
MONOTONE_NAMES = ("dne", "tgn", "batch_dne", "dne_seek", "tgn_int",
                  "pmax", "safe")
MONOTONE_ESTIMATORS = [e for e in ESTIMATORS if e.name in MONOTONE_NAMES]


@given(random_pipeline())
@settings(max_examples=40, deadline=None)
def test_all_estimators_bounded_and_finite(pr):
    for estimator in ESTIMATORS:
        values = estimator.estimate(pr)
        assert values.shape == (pr.n_observations,), estimator.name
        assert np.isfinite(values).all(), estimator.name
        assert ((0.0 <= values) & (values <= 1.0)).all(), estimator.name


@given(random_pipeline(), st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_all_estimators_causal(pr, cut_offset):
    cut = min(cut_offset, pr.n_observations - 1)
    prefix_run = truncate_run(pr, cut)
    for estimator in ESTIMATORS:
        full = estimator.estimate(pr)
        prefix = estimator.estimate(prefix_run)
        assert np.allclose(prefix, full[:cut + 1], atol=1e-9), estimator.name


@given(random_pipeline())
@settings(max_examples=25, deadline=None)
def test_driver_fraction_properties(pr):
    fraction = pr.driver_fraction()
    assert ((0.0 <= fraction) & (fraction <= 1.0)).all()
    assert (np.diff(fraction) >= -1e-12).all()


@given(random_pipeline())
@settings(max_examples=40, deadline=None)
def test_getnext_estimators_monotone_under_monotone_counters(pr):
    assert MONOTONE_ESTIMATORS, "estimator registry lost the GNM family"
    for estimator in MONOTONE_ESTIMATORS:
        values = estimator.estimate(pr)
        assert (np.diff(values) >= -1e-9).all(), estimator.name


@given(random_observation_log())
@settings(max_examples=25, deadline=None)
def test_estimators_defined_at_every_log_snapshot(log_and_totals):
    """Every estimator yields a finite [0, 1] value at every recorded
    snapshot of an :class:`ObservationLog`, however ragged the counters."""
    log, totals = log_and_totals
    arrays = log.as_arrays()
    assert arrays["K"].shape == (len(log), log.n_nodes)
    assert arrays["D"].shape == (len(log), log.n_nodes)
    pr = make_pipeline_run([Op.FILTER, Op.INDEX_SCAN], arrays["K"],
                           parents=[-1, 0], drivers=[1],
                           N=np.maximum(totals, arrays["K"][-1]),
                           times=arrays["times"],
                           LB=arrays["LB"], UB=arrays["UB"])
    for estimator in ESTIMATORS:
        values = estimator.estimate(pr)
        assert values.shape == (pr.n_observations,), estimator.name
        assert np.isfinite(values).all(), estimator.name
        assert ((0.0 <= values) & (values <= 1.0)).all(), estimator.name


# -- per-join-kind properties on *real* executions ---------------------------
#
# The strategies above fabricate trajectories; these draw a tiny random
# hash join of each kind (inner / left outer / semi / anti), execute it
# through the real engine and assert the invariants the progress layer
# leans on: the recorded worst-case bounds bracket the true totals at
# every snapshot, every estimator stays defined, the GNM family stays
# monotone, and SAFE stays inside the feasible interval whose low end is
# PMAX.  Real executions are slower than synthetic trajectories, so the
# example budgets are small — the fuzz sweep covers volume.


@pytest.mark.parametrize("kind", JOIN_KINDS)
@given(data=st.data())
@settings(max_examples=8, deadline=None)
def test_join_kind_bounds_bracket_true_totals(kind, data):
    run = data.draw(executed_join_run(kind))
    assert run.output_rows >= 0
    assert (run.LB <= run.N[None, :] + 1e-9).all(), kind
    assert (run.UB >= run.N[None, :] - 1e-9).all(), kind


@pytest.mark.parametrize("kind", JOIN_KINDS)
@given(data=st.data())
@settings(max_examples=6, deadline=None)
def test_join_kind_estimators_defined_and_monotone(kind, data):
    run = data.draw(executed_join_run(kind))
    for pr in run.pipeline_runs(min_observations=3):
        for estimator in ESTIMATORS:
            values = estimator.estimate(pr)
            assert np.isfinite(values).all(), (kind, estimator.name)
            assert ((0.0 <= values) & (values <= 1.0)).all(), (
                kind, estimator.name)
        for estimator in MONOTONE_ESTIMATORS:
            values = estimator.estimate(pr)
            assert (np.diff(values) >= -1e-9).all(), (kind, estimator.name)


@pytest.mark.parametrize("kind", JOIN_KINDS)
@given(data=st.data())
@settings(max_examples=6, deadline=None)
def test_join_kind_safe_within_feasible_interval(kind, data):
    """PMAX is the low end of the feasible progress interval and SAFE its
    minimax point: PMAX <= SAFE <= the interval's high end, per snapshot."""
    run = data.draw(executed_join_run(kind))
    pmax = next(e for e in ESTIMATORS if e.name == "pmax")
    safe = next(e for e in ESTIMATORS if e.name == "safe")
    for pr in run.pipeline_runs(min_observations=3):
        lo = pmax.estimate(pr)
        mid = safe.estimate(pr)
        k_sum = pr.K.sum(axis=1)
        lb_sum = np.maximum(pr.LB.sum(axis=1), k_sum)
        hi = np.clip(k_sum / np.maximum(lb_sum, 1e-12), 0.0, 1.0)
        assert (lo <= mid + 1e-9).all(), kind
        assert (mid <= hi + 1e-9).all(), kind
