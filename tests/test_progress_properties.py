"""Property-based tests: estimators on randomized synthetic trajectories.

Hypothesis generates arbitrary monotone counter trajectories for a small
operator zoo; every estimator must stay within [0, 1], never produce
NaN/inf, and remain causal.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.nodes import Op
from repro.progress.registry import all_estimators

from helpers import make_pipeline_run, truncate_run

ESTIMATORS = all_estimators(include_worst_case=True)


@st.composite
def random_pipeline(draw):
    n_obs = draw(st.integers(3, 25))
    shapes = draw(st.sampled_from([
        ([Op.FILTER, Op.INDEX_SCAN], [-1, 0], [1]),
        ([Op.NESTED_LOOP_JOIN, Op.INDEX_SCAN, Op.INDEX_SEEK],
         [-1, 0, 0], [1]),
        ([Op.HASH_JOIN, Op.BATCH_SORT, Op.INDEX_SCAN], [-1, 0, 1], [2]),
        ([Op.STREAM_AGG, Op.MERGE_JOIN, Op.INDEX_SCAN, Op.INDEX_SCAN],
         [-1, 0, 1, 1], [2, 3]),
    ]))
    ops, parents, drivers = shapes
    m = len(ops)
    totals = np.array([draw(st.floats(1.0, 1e5)) for _ in range(m)])
    # random monotone trajectories from 0 to the totals
    fractions = np.sort(np.array(
        [[draw(st.floats(0.0, 1.0)) for _ in range(m)]
         for _ in range(n_obs)]), axis=0)
    fractions[0] = 0.0
    fractions[-1] = 1.0
    K = fractions * totals
    e0 = totals * np.array([draw(st.floats(0.1, 10.0)) for _ in range(m)])
    times = np.cumsum(np.array([draw(st.floats(0.01, 10.0))
                                for _ in range(n_obs)]))
    return make_pipeline_run(ops, K, parents=parents, drivers=drivers,
                             E0=e0, times=times)


@given(random_pipeline())
@settings(max_examples=40, deadline=None)
def test_all_estimators_bounded_and_finite(pr):
    for estimator in ESTIMATORS:
        values = estimator.estimate(pr)
        assert values.shape == (pr.n_observations,), estimator.name
        assert np.isfinite(values).all(), estimator.name
        assert ((0.0 <= values) & (values <= 1.0)).all(), estimator.name


@given(random_pipeline(), st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_all_estimators_causal(pr, cut_offset):
    cut = min(cut_offset, pr.n_observations - 1)
    prefix_run = truncate_run(pr, cut)
    for estimator in ESTIMATORS:
        full = estimator.estimate(pr)
        prefix = estimator.estimate(prefix_run)
        assert np.allclose(prefix, full[:cut + 1], atol=1e-9), estimator.name


@given(random_pipeline())
@settings(max_examples=25, deadline=None)
def test_driver_fraction_properties(pr):
    fraction = pr.driver_fraction()
    assert ((0.0 <= fraction) & (fraction <= 1.0)).all()
    assert (np.diff(fraction) >= -1e-12).all()
