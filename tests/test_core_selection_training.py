"""Tests for the estimator-selection core: selector, training data."""

import numpy as np
import pytest

from repro.core.selection import EstimatorSelector
from repro.core.training import (
    TrainingData,
    collect_training_data,
    runs_to_pipelines,
    train_selector,
)
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.registry import all_estimators

FAST_MART = MARTParams(n_trees=10, max_leaves=4)


def synthetic_training_data(rng, n=200):
    """Errors are a learnable function of the features."""
    X = rng.uniform(0, 1, size=(n, 5))
    errors = np.column_stack([
        0.05 + 0.4 * X[:, 0],          # estimator A bad when x0 high
        0.05 + 0.4 * (1 - X[:, 0]),    # estimator B bad when x0 low
        np.full(n, 0.30),              # estimator C mediocre always
    ])
    return TrainingData(
        X=X, errors_l1=errors, errors_l2=errors * 1.2,
        feature_names=[f"f{i}" for i in range(5)],
        estimator_names=["a", "b", "c"],
        meta=[{"query": f"q{i}", "db": "syn", "pid": 0,
               "duration": 1.0, "total_getnext": float(i)} for i in range(n)],
    )


class TestEstimatorSelector:
    def test_requires_estimators(self):
        with pytest.raises(ValueError):
            EstimatorSelector([])

    def test_fit_validates_shapes(self, rng):
        selector = EstimatorSelector(["a", "b"], FAST_MART)
        with pytest.raises(ValueError):
            selector.fit(rng.normal(size=(10, 3)), rng.normal(size=(10, 3)))

    def test_predict_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            EstimatorSelector(["a"], FAST_MART).predict_errors(
                rng.normal(size=(2, 3)))

    def test_learns_feature_dependent_choice(self, rng):
        data = synthetic_training_data(rng)
        selector = EstimatorSelector(data.estimator_names, FAST_MART)
        selector.fit(data.X, data.errors_l1)
        X_low = np.array([[0.05, 0.5, 0.5, 0.5, 0.5]])
        X_high = np.array([[0.95, 0.5, 0.5, 0.5, 0.5]])
        assert selector.select(X_low) == ["a"]
        assert selector.select(X_high) == ["b"]

    def test_select_one(self, rng):
        data = synthetic_training_data(rng)
        selector = EstimatorSelector(data.estimator_names, FAST_MART)
        selector.fit(data.X, data.errors_l1)
        assert selector.select_one(np.array([0.0, 0, 0, 0, 0])) == "a"

    def test_training_time_recorded(self, rng):
        data = synthetic_training_data(rng, n=60)
        selector = EstimatorSelector(data.estimator_names, FAST_MART)
        selector.fit(data.X, data.errors_l1)
        assert selector.training_seconds_ > 0


class TestTrainingData:
    def test_subset_by_mask(self, rng):
        data = synthetic_training_data(rng, n=50)
        mask = np.zeros(50, dtype=bool)
        mask[:10] = True
        sub = data.subset(mask)
        assert sub.n_examples == 10
        assert len(sub.meta) == 10

    def test_subset_by_indices(self, rng):
        data = synthetic_training_data(rng, n=50)
        sub = data.subset(np.array([1, 3, 5]))
        assert sub.n_examples == 3
        assert sub.meta[0]["query"] == "q1"

    def test_concat(self, rng):
        a = synthetic_training_data(rng, n=20)
        b = synthetic_training_data(rng, n=30)
        merged = TrainingData.concat([a, b])
        assert merged.n_examples == 50

    def test_concat_rejects_mismatched_layouts(self, rng):
        a = synthetic_training_data(rng, n=10)
        b = synthetic_training_data(rng, n=10)
        b.estimator_names = ["x", "y", "z"]
        with pytest.raises(ValueError):
            TrainingData.concat([a, b])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            TrainingData.concat([])

    def test_restrict_estimators(self, rng):
        data = synthetic_training_data(rng, n=10)
        sub = data.restrict_estimators(["c", "a"])
        assert sub.estimator_names == ["c", "a"]
        assert np.allclose(sub.errors_l1[:, 1], data.errors_l1[:, 0])


class TestCollection:
    def test_collect_training_data(self, pipeline_runs):
        estimators = all_estimators()
        extractor = FeatureExtractor("dynamic", estimators=estimators)
        data = collect_training_data(pipeline_runs, estimators, extractor)
        assert data.n_examples == len(pipeline_runs)
        assert data.X.shape[1] == extractor.n_features
        assert data.errors_l1.shape == (len(pipeline_runs), len(estimators))
        assert (data.errors_l1 >= 0).all()
        assert (data.errors_l2 >= data.errors_l1 - 1e-9).all()

    def test_meta_provenance(self, pipeline_runs):
        estimators = all_estimators()
        extractor = FeatureExtractor("static")
        data = collect_training_data(pipeline_runs, estimators, extractor)
        for row in data.meta:
            assert row["db"] and row["query"]
            assert row["total_getnext"] > 0

    def test_runs_to_pipelines(self, join_run, scan_run):
        pipelines = runs_to_pipelines([join_run, scan_run],
                                      min_observations=5)
        assert len(pipelines) >= 2

    def test_train_selector_round_trip(self, pipeline_runs):
        estimators = all_estimators()
        extractor = FeatureExtractor("static")
        data = collect_training_data(pipeline_runs, estimators, extractor)
        selector = train_selector(data, FAST_MART)
        chosen = selector.select(data.X)
        assert len(chosen) == data.n_examples
        assert set(chosen) <= set(data.estimator_names)

    def test_train_selector_metric_validation(self, rng):
        data = synthetic_training_data(rng, n=20)
        with pytest.raises(ValueError):
            train_selector(data, FAST_MART, metric="l7")
