"""Tests for the ridge-regression baseline."""

import numpy as np
import pytest

from repro.learning.linear import RidgeRegressor


class TestRidgeRegressor:
    def test_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(rng.normal(size=(2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            RidgeRegressor().fit(rng.normal(size=(5, 2)), np.zeros(4))

    def test_recovers_linear_signal(self, rng):
        X = rng.normal(size=(500, 4))
        y = 2.0 * X[:, 0] - 1.5 * X[:, 2] + 3.0
        model = RidgeRegressor(alpha=1e-6).fit(X, y)
        assert np.abs(model.predict(X) - y).mean() < 0.01

    def test_handles_constant_feature(self, rng):
        X = np.column_stack([np.ones(100), rng.normal(size=100)])
        y = X[:, 1]
        model = RidgeRegressor().fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_regularization_shrinks_coefficients(self, rng):
        X = rng.normal(size=(100, 3))
        y = X[:, 0] + 0.1 * rng.normal(size=100)
        small = RidgeRegressor(alpha=0.01).fit(X, y)
        large = RidgeRegressor(alpha=1e4).fit(X, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_scale_invariant_prediction(self, rng):
        X = rng.normal(size=(200, 2))
        y = X[:, 0] * 4
        scaled = X.copy()
        scaled[:, 0] *= 1000
        a = RidgeRegressor(alpha=1e-3).fit(X, y).predict(X)
        b = RidgeRegressor(alpha=1e-3).fit(scaled, y).predict(scaled)
        assert np.allclose(a, b, atol=0.05)

    def test_fit_seconds_recorded(self, rng):
        model = RidgeRegressor().fit(rng.normal(size=(50, 2)), np.zeros(50))
        assert model.fit_seconds_ >= 0
