"""Tests for cardinality estimation, physical design and the planner."""

import numpy as np
import pytest

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.physical_design import (
    DesignLevel,
    apply_design,
    candidate_columns,
    design_for_workload,
)
from repro.optimizer.planner import Planner, PlannerConfig
from repro.plan.nodes import Op
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec
from repro.workloads.tpch_queries import generate_tpch_workload


@pytest.fixture(scope="module")
def card(tpch_db, tpch_stats):
    return CardinalityEstimator(tpch_stats)


class TestCardinalityEstimator:
    def test_range_selectivity_sane(self, card):
        spec = FilterSpec("lineitem", "l_shipdate", "<=", 10**9)
        assert card.filter_selectivity(spec) == pytest.approx(1.0, abs=0.01)

    def test_conjunction_multiplies(self, card):
        a = FilterSpec("lineitem", "l_quantity", ">=", 10.0)
        b = FilterSpec("lineitem", "l_discount", "<=", 0.05)
        combined = card.conjunction_selectivity([a, b])
        product = card.filter_selectivity(a) * card.filter_selectivity(b)
        assert combined == pytest.approx(product)

    def test_fk_join_preserves_fact_cardinality(self, card, tpch_db):
        n_li = tpch_db.table("lineitem").n_rows
        n_orders = tpch_db.table("orders").n_rows
        est = card.join_cardinality(n_li, n_orders,
                                    card.ndv("lineitem", "l_orderkey"),
                                    card.ndv("orders", "o_orderkey"))
        assert est == pytest.approx(n_li, rel=0.2)

    def test_seek_fanout(self, card, tpch_db):
        fanout = card.seek_fanout("lineitem", "l_orderkey")
        distinct = len(np.unique(tpch_db.table("lineitem").column("l_orderkey")))
        expected = tpch_db.table("lineitem").n_rows / distinct
        assert fanout == pytest.approx(expected, rel=0.05)

    def test_group_count_bounded(self, card):
        assert card.group_count(1000, [5]) <= 5
        assert card.group_count(2, [1000]) <= 2
        assert card.group_count(0, [10]) == 0
        assert card.group_count(1000, []) == 1.0

    def test_group_count_saturates(self, card):
        low = card.group_count(10, [100])
        high = card.group_count(10_000, [100])
        assert low < high <= 100

    def test_semi_join_bounded_by_outer_side(self, card, tpch_db):
        n_li = tpch_db.table("lineitem").n_rows
        n_orders = tpch_db.table("orders").n_rows
        li_ndv = card.ndv("lineitem", "l_orderkey")
        o_ndv = card.ndv("orders", "o_orderkey")
        semi = card.semi_join_cardinality(n_li, n_orders, li_ndv, o_ndv)
        assert 0.0 <= semi <= n_li
        # every lineitem has an order: the FK semi join keeps ~everything
        assert semi == pytest.approx(n_li, rel=0.2)

    def test_anti_join_complements_semi(self, card):
        semi = card.semi_join_cardinality(1000, 50, 200, 50)
        anti = card.anti_join_cardinality(1000, 50, 200, 50)
        assert anti == pytest.approx(1000 - semi)
        assert anti >= 0.0
        # an empty inner side keeps every outer row
        assert card.anti_join_cardinality(1000, 0, 200, 1) == 1000.0

    def test_outer_join_at_least_preserved_side(self, card):
        for right in (0, 5, 500):
            est = card.outer_join_cardinality(1000, right, 200,
                                              max(right, 1))
            assert est >= 1000.0  # never below the preserved side


class TestPhysicalDesign:
    @pytest.fixture(scope="class")
    def queries(self):
        return generate_tpch_workload(30, seed=1)

    def test_candidates_cover_join_columns(self, queries):
        usage = candidate_columns(queries)
        assert usage[("lineitem", "l_orderkey")] > 0

    def test_untuned_is_empty(self, tpch_db, queries):
        design = design_for_workload(tpch_db, queries, DesignLevel.UNTUNED)
        assert design.n_indexes() == 0

    def test_partial_smaller_than_full(self, tpch_db, queries):
        partial = design_for_workload(tpch_db, queries, DesignLevel.PARTIAL)
        full = design_for_workload(tpch_db, queries, DesignLevel.FULL)
        assert 0 < partial.n_indexes() < full.n_indexes()

    def test_partial_subset_of_full(self, tpch_db, queries):
        partial = design_for_workload(tpch_db, queries, DesignLevel.PARTIAL)
        full = design_for_workload(tpch_db, queries, DesignLevel.FULL)
        for table, cols in partial.indexes.items():
            assert cols <= full.columns_for(table)

    def test_apply_design_installs_and_clears(self, tpch_db, queries):
        full = design_for_workload(tpch_db, queries, DesignLevel.FULL)
        apply_design(tpch_db, full)
        assert any(t.indexes for t in tpch_db.tables.values())
        apply_design(tpch_db, design_for_workload(tpch_db, queries,
                                                  DesignLevel.UNTUNED))
        assert all(not t.indexes for t in tpch_db.tables.values())


class TestPlanner:
    def test_single_table_scan_plan(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"])
        plan = tpch_planner.plan(q)
        assert plan.op in (Op.INDEX_SCAN, Op.TABLE_SCAN)
        assert plan.est_rows > 0

    def test_selective_filter_uses_seek_when_indexed(self, tpch_db, tpch_stats):
        tpch_db.table("orders").create_index("o_orderdate")
        try:
            planner = Planner(tpch_db, tpch_stats)
            q = QuerySpec(name="q", tables=["orders"],
                          filters=[FilterSpec("orders", "o_orderdate",
                                              "between", (10, 20))])
            plan = planner.plan(q)
            assert plan.find_all(Op.INDEX_SEEK)
        finally:
            tpch_db.table("orders").drop_index("o_orderdate")

    def test_unselective_filter_scans(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"],
                      filters=[FilterSpec("orders", "o_orderdate", ">=", 0)])
        plan = tpch_planner.plan(q)
        assert not plan.find_all(Op.INDEX_SEEK)
        assert plan.find_all(Op.FILTER)

    def test_clustered_fk_pk_join_uses_merge(self, tpch_planner):
        q = QuerySpec(
            name="q", tables=["orders", "lineitem"],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")])
        plan = tpch_planner.plan(q)
        assert plan.find_all(Op.MERGE_JOIN)

    def test_group_by_on_unsorted_column_uses_hash_agg(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"], group_by=["o_orderstatus"],
                      aggregates=[Aggregate("count")])
        plan = tpch_planner.plan(q)
        assert plan.find_all(Op.HASH_AGG)

    def test_scalar_aggregate_uses_stream_agg(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"],
                      aggregates=[Aggregate("sum", "o_totalprice")])
        plan = tpch_planner.plan(q)
        aggs = plan.find_all(Op.STREAM_AGG)
        assert aggs and aggs[0].params["group_cols"] == []

    def test_order_by_adds_sort_and_top(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"], order_by=["o_totalprice"],
                      top=5)
        plan = tpch_planner.plan(q)
        assert plan.op == Op.TOP
        assert plan.children[0].op == Op.SORT

    def test_order_by_clustered_column_skips_sort(self, tpch_planner):
        q = QuerySpec(name="q", tables=["orders"], order_by=["o_orderkey"])
        plan = tpch_planner.plan(q)
        assert not plan.find_all(Op.SORT)

    def test_every_node_has_estimates(self, tpch_planner, join_query):
        plan = tpch_planner.plan(join_query)
        for node in plan.walk():
            assert node.est_rows > 0
            assert node.est_row_width > 0

    def test_nlj_gets_batch_sort_for_large_outer(self, tpch_db, tpch_stats):
        tpch_db.table("lineitem").create_index("l_orderkey")
        try:
            config = PlannerConfig(batch_sort_min_outer=100.0,
                                   cost_seek_probe=0.1)
            planner = Planner(tpch_db, tpch_stats, config)
            q = QuerySpec(
                name="q", tables=["orders", "lineitem"],
                joins=[JoinEdge("orders", "o_orderkey", "lineitem",
                                "l_orderkey")],
                filters=[FilterSpec("orders", "o_totalprice", ">=", 100.0)])
            plan = planner.plan(q)
            if plan.find_all(Op.NESTED_LOOP_JOIN):
                assert plan.find_all(Op.BATCH_SORT)
        finally:
            tpch_db.table("lineitem").drop_index("l_orderkey")

    def test_plans_are_finalized(self, tpch_planner, join_query):
        plan = tpch_planner.plan(join_query)
        ids = [n.node_id for n in plan.walk()]
        assert ids == list(range(len(ids)))

    @pytest.mark.parametrize("kind", ["left", "semi", "anti"])
    def test_non_inner_join_kind_lands_on_the_join_node(self, tpch_planner,
                                                        kind):
        q = QuerySpec(
            name="q", tables=["orders", "lineitem"],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem",
                            "l_orderkey", kind)])
        plan = tpch_planner.plan(q)
        joins = [n for n in plan.walk()
                 if n.op in (Op.HASH_JOIN, Op.MERGE_JOIN,
                             Op.NESTED_LOOP_JOIN)]
        assert len(joins) == 1
        assert joins[0].params.get("join_kind") == kind
        if kind in ("semi", "anti"):  # NLJ/merge can't run these kinds
            assert joins[0].op == Op.HASH_JOIN

    def test_inner_plans_carry_no_join_kind_param(self, tpch_planner,
                                                  join_query):
        plan = tpch_planner.plan(join_query)
        for node in plan.walk():
            assert "join_kind" not in node.params  # inner stays byte-stable

    def test_non_inner_join_starts_from_preserved_side(self, tpch_planner):
        # lineitem is far larger, but the semi join preserves orders, so
        # the join order must reach orders first regardless of cost
        q = QuerySpec(
            name="q", tables=["lineitem", "orders"],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem",
                            "l_orderkey", "semi")])
        plan = tpch_planner.plan(q)
        joins = [n for n in plan.walk() if n.op == Op.HASH_JOIN]
        assert joins and joins[0].params.get("join_kind") == "semi"

    def test_semi_join_estimate_bounded_by_outer(self, tpch_planner,
                                                 tpch_db):
        q = QuerySpec(
            name="q", tables=["orders", "lineitem"],
            joins=[JoinEdge("orders", "o_orderkey", "lineitem",
                            "l_orderkey", "semi")])
        plan = tpch_planner.plan(q)
        assert plan.est_rows <= tpch_db.table("orders").n_rows * 1.01
