"""Unit tests for filter predicates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.predicates import FilterSpec, evaluate_all, evaluate_filter

VALUES = np.array([1, 3, 5, 7, 9])


class TestFilterSpecValidation:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown predicate"):
            FilterSpec("t", "c", "~=", 1)

    def test_between_reversed_rejected(self):
        with pytest.raises(ValueError, match="reversed"):
            FilterSpec("t", "c", "between", (5, 1))

    def test_in_requires_tuple(self):
        with pytest.raises(ValueError, match="tuple"):
            FilterSpec("t", "c", "in", [1, 2])

    def test_describe(self):
        spec = FilterSpec("orders", "o_orderdate", "<=", 10)
        assert "orders.o_orderdate" in spec.describe()

    def test_sargability(self):
        assert FilterSpec("t", "c", "between", (1, 2)).sargable
        assert FilterSpec("t", "c", "==", 1).sargable
        assert not FilterSpec("t", "c", "in", (1, 2)).sargable
        assert not FilterSpec("t", "c", "!=", 1).sargable


class TestEvaluateFilter:
    @pytest.mark.parametrize("op,value,expected", [
        ("==", 5, [False, False, True, False, False]),
        ("!=", 5, [True, True, False, True, True]),
        ("<", 5, [True, True, False, False, False]),
        ("<=", 5, [True, True, True, False, False]),
        (">", 5, [False, False, False, True, True]),
        (">=", 5, [False, False, True, True, True]),
        ("between", (3, 7), [False, True, True, True, False]),
        ("in", (1, 9), [True, False, False, False, True]),
    ])
    def test_all_operators(self, op, value, expected):
        spec = FilterSpec("t", "c", op, value)
        assert evaluate_filter(spec, VALUES).tolist() == expected

    def test_evaluate_all_conjunction(self):
        specs = [FilterSpec("t", "a", ">=", 3), FilterSpec("t", "b", "<", 2)]
        data = {"a": VALUES, "b": np.array([0, 1, 2, 0, 3])}
        assert evaluate_all(specs, data).tolist() == [False, True, False, True, False]

    def test_evaluate_all_requires_specs(self):
        with pytest.raises(ValueError):
            evaluate_all([], {"a": VALUES})


class TestSeekRange:
    def test_eq(self):
        assert FilterSpec("t", "c", "==", 5).seek_range(0, 10) == (5, 5)

    def test_between(self):
        assert FilterSpec("t", "c", "between", (2, 4)).seek_range(0, 10) == (2, 4)

    def test_le_and_ge(self):
        assert FilterSpec("t", "c", "<=", 5).seek_range(0, 10) == (0, 5)
        assert FilterSpec("t", "c", ">=", 5).seek_range(0, 10) == (5, 10)

    def test_strict_bounds_integers(self):
        assert FilterSpec("t", "c", "<", 5).seek_range(0, 10) == (0, 4)
        assert FilterSpec("t", "c", ">", 5).seek_range(0, 10) == (6, 10)

    def test_strict_bounds_floats(self):
        low, high = FilterSpec("t", "c", "<", 5.0).seek_range(0.0, 10.0)
        assert high < 5.0 and high > 4.999999

    def test_non_sargable_raises(self):
        with pytest.raises(ValueError):
            FilterSpec("t", "c", "in", (1,)).seek_range(0, 10)

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60),
           st.sampled_from(["==", "<", "<=", ">", ">=", "between"]),
           st.integers(-50, 50), st.integers(0, 20))
    @settings(max_examples=80)
    def test_seek_range_equals_filter(self, values, op, point, width):
        """Seeking the range must select exactly the filtered rows."""
        value = (point, point + width) if op == "between" else point
        spec = FilterSpec("t", "c", op, value)
        arr = np.asarray(values)
        low, high = spec.seek_range(arr.min(), arr.max())
        seeked = (arr >= low) & (arr <= high)
        assert (seeked == evaluate_filter(spec, arr)).all()
