"""Tests for the six workload generators and the suite."""

import pytest

from repro.datagen.sales import generate_real1, generate_real2
from repro.datagen.tpcds import generate_tpcds
from repro.datagen.tpch import generate_tpch
from repro.workloads.real1 import generate_real1_workload
from repro.workloads.real2 import generate_real2_workload
from repro.workloads.suite import WORKLOAD_NAMES, SuiteScale, WorkloadSuite
from repro.workloads.tpch_queries import TEMPLATES, generate_tpch_workload
from repro.workloads.tpcds_queries import generate_tpcds_workload


class TestGenerators:
    def test_tpch_workload_counts_and_names(self):
        queries = generate_tpch_workload(40, seed=0)
        assert len(queries) == 40
        assert len({q.name for q in queries}) == 40

    def test_tpch_templates_all_used(self):
        queries = generate_tpch_workload(len(TEMPLATES), seed=0)
        used = {q.name.split("_", 1)[1].rsplit("_", 1)[0] for q in queries}
        assert len(used) == len(TEMPLATES)

    def test_tpch_workload_deterministic(self):
        a = generate_tpch_workload(10, seed=3)
        b = generate_tpch_workload(10, seed=3)
        assert [q.describe() for q in a] == [q.describe() for q in b]

    def test_tpcds_workload_valid(self):
        queries = generate_tpcds_workload(30, seed=1)
        assert len(queries) == 30
        for q in queries:
            assert q.tables[0] in ("store_sales", "catalog_sales", "web_sales")

    def test_real1_join_width(self):
        queries = generate_real1_workload(60, seed=1)
        widths = [len(q.tables) for q in queries]
        assert min(widths) >= 5
        assert max(widths) <= 8

    def test_real2_join_width(self):
        queries = generate_real2_workload(60, seed=1)
        widths = [len(q.tables) for q in queries]
        assert max(widths) >= 10  # "typically 12 joins"
        assert min(widths) >= 6


class TestPlannability:
    """Every generated query must plan and have consistent estimates."""

    @pytest.mark.parametrize("dbgen,qgen", [
        (lambda: generate_tpch(3000, z=1.0, seed=1),
         lambda: generate_tpch_workload(32, seed=1)),
        (lambda: generate_tpcds(2500, seed=1),
         lambda: generate_tpcds_workload(24, seed=1)),
        (lambda: generate_real1(2500, seed=1),
         lambda: generate_real1_workload(24, seed=1)),
        (lambda: generate_real2(2500, seed=1),
         lambda: generate_real2_workload(24, seed=1)),
    ], ids=["tpch", "tpcds", "real1", "real2"])
    def test_all_queries_plan(self, dbgen, qgen):
        from repro.catalog.statistics import build_statistics
        from repro.optimizer.planner import Planner
        db = dbgen()
        planner = Planner(db, build_statistics(db, n_buckets=8))
        for query in qgen():
            plan = planner.plan(query)
            assert plan.n_nodes >= 1
            for node in plan.walk():
                assert node.est_rows > 0


class TestWorkloadSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        scale = SuiteScale(tpch_rows=2000, tpcds_rows=1500, real1_rows=1500,
                           real2_rows=1500, tpch_queries=8, tpcds_queries=6,
                           real1_queries=6, real2_queries=6)
        return WorkloadSuite(scale, seed=0)

    def test_names(self, suite):
        assert suite.names == WORKLOAD_NAMES

    def test_unknown_workload_rejected(self, suite):
        with pytest.raises(KeyError):
            suite.bundle("mysql")

    def test_bundles_cached(self, suite):
        assert suite.bundle("tpcds") is suite.bundle("tpcds")

    def test_tpch_designs_differ(self, suite):
        untuned = suite.bundle("tpch_untuned")
        full = suite.bundle("tpch_full")
        assert untuned.design.n_indexes() == 0
        assert full.design.n_indexes() > 0
        # same logical queries, different databases/designs
        assert [q.name for q in untuned.queries] == [q.name for q in full.queries]
        assert untuned.db is not full.db

    def test_design_applied_to_db(self, suite):
        full = suite.bundle("tpch_full")
        indexed = sum(len(t.indexes) for t in full.db.tables.values())
        assert indexed == full.design.n_indexes()

    def test_bundle_dbs_named_after_workload(self, suite):
        assert suite.bundle("tpch_partial").db.name == "tpch_partial"
