"""Tests for error metrics and §6.6 tolerance rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.progress.metrics import (
    error_matrix,
    evaluate_pipeline,
    l1_error,
    l2_error,
    near_optimal_mask,
    ratio_error,
    significantly_outperforms,
)
from repro.progress.registry import original_estimators


class TestBasicMetrics:
    def test_l1_zero_on_exact(self):
        x = np.linspace(0, 1, 10)
        assert l1_error(x, x) == 0.0

    def test_l1_constant_offset(self):
        truth = np.linspace(0, 1, 10)
        assert l1_error(truth + 0.1, truth) == pytest.approx(0.1)

    def test_l2_penalizes_outliers_more(self):
        truth = np.zeros(10)
        spread = np.full(10, 0.1)
        spiky = np.zeros(10)
        spiky[0] = 1.0
        assert l1_error(spread, truth) == pytest.approx(l1_error(spiky, truth))
        assert l2_error(spiky, truth) > l2_error(spread, truth)

    def test_ratio_error_symmetric(self):
        a = np.array([0.5])
        b = np.array([0.25])
        assert ratio_error(a, b) == pytest.approx(ratio_error(b, a))

    def test_empty_inputs(self):
        empty = np.empty(0)
        assert l1_error(empty, empty) == 0.0
        assert l2_error(empty, empty) == 0.0
        assert ratio_error(empty, empty) == 1.0

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=50),
           st.lists(st.floats(0, 1), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_l1_le_l2(self, xs, ys):
        n = min(len(xs), len(ys))
        a, b = np.asarray(xs[:n]), np.asarray(ys[:n])
        assert l1_error(a, b) <= l2_error(a, b) + 1e-12


class TestNearOptimal:
    def test_minimum_is_always_near_optimal(self):
        errors = np.array([[0.3, 0.1, 0.5]])
        mask = near_optimal_mask(errors)
        assert mask[0].tolist() == [False, True, False]

    def test_absolute_tolerance(self):
        errors = np.array([[0.105, 0.1, 0.5]])
        assert near_optimal_mask(errors)[0].tolist() == [True, True, False]

    def test_relative_tolerance(self):
        errors = np.array([[0.505, 0.5, 0.6]])
        assert near_optimal_mask(errors)[0].tolist() == [True, True, False]

    def test_multiple_rows(self):
        errors = np.array([[0.1, 0.2], [0.2, 0.1]])
        mask = near_optimal_mask(errors)
        assert mask[0, 0] and mask[1, 1]


class TestSignificantlyOutperforms:
    def test_clear_winner(self):
        errors = np.array([[0.05, 0.3, 0.4]])
        assert significantly_outperforms(errors)[0] == 0

    def test_near_tie_is_nobody(self):
        errors = np.array([[0.100, 0.105, 0.4]])
        assert significantly_outperforms(errors)[0] == -1

    def test_per_row_results(self):
        errors = np.array([[0.05, 0.5], [0.5, 0.05]])
        assert significantly_outperforms(errors).tolist() == [0, 1]


class TestPipelineEvaluation:
    def test_evaluate_pipeline_reports_all(self, pipeline_runs):
        reports = evaluate_pipeline(pipeline_runs[0], original_estimators())
        assert [r.estimator for r in reports] == ["dne", "tgn", "luo"]
        for report in reports:
            assert report.l1 >= 0 and report.l2 >= report.l1 - 1e-12
            assert report.ratio >= 1.0

    def test_error_matrix_shape(self, pipeline_runs):
        matrix = error_matrix(pipeline_runs, original_estimators(), "l1")
        assert matrix.shape == (len(pipeline_runs), 3)
        assert (matrix >= 0).all()

    def test_error_matrix_rejects_unknown_metric(self, pipeline_runs):
        with pytest.raises(ValueError):
            error_matrix(pipeline_runs, original_estimators(), "l7")
