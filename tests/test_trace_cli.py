"""Tests for the ``python -m repro.trace`` store-management CLI."""

import io
import json
import os
import time

import numpy as np
import pytest

from repro.trace.__main__ import main as trace_main
from repro.trace.store import MANIFEST_NAME, RUNS_NAME, TraceStore


@pytest.fixture()
def store(join_run, scan_run, tmp_path):
    store = TraceStore(tmp_path / "traces")
    store.save("alpha", [join_run, scan_run], meta={"workload": "unit"})
    store.save("beta", [scan_run])
    return store


def run_cli(store, *argv):
    return trace_main(["--root", str(store.root), *argv])


class TestList:
    def test_lists_keys_with_meta_and_size(self, store, capsys):
        assert run_cli(store, "list") == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert "runs=2" in out and "runs=1" in out
        assert "workload=unit" in out
        assert "2 trace(s)" in out

    def test_marks_stale_format_versions(self, store, capsys):
        manifest_path = store.path("beta") / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        run_cli(store, "list")
        assert "[stale format v1]" in capsys.readouterr().out

    def test_empty_store(self, tmp_path, capsys):
        assert trace_main(["--root", str(tmp_path / "void"), "list"]) == 0
        assert "empty trace store" in capsys.readouterr().out

    def test_requires_a_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        with pytest.raises(SystemExit, match="no trace store"):
            trace_main(["list"])

    def test_env_var_supplies_root(self, store, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(store.root))
        assert trace_main(["list"]) == 0
        assert "alpha" in capsys.readouterr().out


class TestVerify:
    def test_intact_store_verifies(self, store, capsys):
        assert run_cli(store, "verify") == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2
        assert "2/2 trace(s) verified" in out

    def test_specific_key_only(self, store, capsys):
        assert run_cli(store, "verify", "alpha") == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" not in out

    def test_corrupt_member_detected(self, store, capsys):
        npz_path = store.path("alpha") / RUNS_NAME
        with np.load(npz_path) as members:
            arrays = {name: members[name].copy() for name in members.files}
        name = sorted(n for n in arrays if n.endswith("_times"))[0]
        arrays[name] = arrays[name] + 1.0
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        npz_path.write_bytes(buffer.getvalue())
        assert run_cli(store, "verify") == 1
        out = capsys.readouterr().out
        assert "CORRUPT  alpha" in out and "digest mismatch" in out
        assert "1/2 trace(s) verified" in out

    def test_truncated_npz_detected(self, store, capsys):
        npz_path = store.path("beta") / RUNS_NAME
        npz_path.write_bytes(npz_path.read_bytes()[:40])
        assert run_cli(store, "verify", "beta") == 1
        assert "unreadable" in capsys.readouterr().out

    def test_tampered_manifest_detected(self, store, capsys):
        manifest_path = store.path("alpha") / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["runs"][0]["output_rows"] += 5
        manifest_path.write_text(json.dumps(manifest))
        assert run_cli(store, "verify", "alpha") == 1
        assert "digest mismatch" in capsys.readouterr().out

    def test_predigest_recordings_fall_back_to_reencode(self, store, capsys):
        """Traces recorded before the integrity digest still verify via
        the decode/re-encode layer."""
        manifest_path = store.path("alpha") / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        del manifest["integrity"]
        manifest_path.write_text(json.dumps(manifest))
        assert run_cli(store, "verify", "alpha") == 0
        assert "ok " in capsys.readouterr().out


class TestGC:
    def _age(self, path, seconds=7200):
        stamp = time.time() - seconds
        os.utime(path, (stamp, stamp))

    def test_collects_stale_formats_staging_and_claims(self, store, capsys):
        manifest_path = store.path("beta") / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest_path.write_text(json.dumps(manifest))
        staging = store.root / ".orphan.tmp-x"
        staging.mkdir()
        self._age(staging)
        claim = store.claim_path("dead")
        claim.write_text("{}")
        self._age(claim)

        assert run_cli(store, "gc", "--dry-run") == 0
        out = capsys.readouterr().out
        assert "would remove 3 item(s)" in out
        assert store.exists("beta") and staging.is_dir() and claim.is_file()

        assert run_cli(store, "gc") == 0
        out = capsys.readouterr().out
        assert "removed 3 item(s)" in out
        assert "stale format v1" in out
        assert "orphaned staging directory" in out
        assert "stale single-flight claim" in out
        assert not store.exists("beta")
        assert not staging.exists() and not claim.exists()
        assert store.exists("alpha")  # current-format traces stay

    def test_fresh_staging_and_claims_kept(self, store, capsys):
        (store.root / ".inflight.tmp-y").mkdir()
        store.claim_path("busy").write_text("{}")
        assert run_cli(store, "gc") == 0
        assert "removed 0 item(s)" in capsys.readouterr().out
        assert store.staging_dirs() and store.claims()

    def test_stale_after_zero_forces_collection(self, store, capsys):
        (store.root / ".inflight.tmp-z").mkdir()
        time.sleep(0.02)
        assert run_cli(store, "gc", "--stale-after", "0") == 0
        assert "removed 1 item(s)" in capsys.readouterr().out
        assert store.staging_dirs() == []
