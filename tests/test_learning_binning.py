"""Tests for quantile pre-binning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.binning import QuantileBinner


class TestQuantileBinner:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            QuantileBinner().transform(np.zeros((2, 2)))

    def test_rejects_bad_bin_count(self):
        with pytest.raises(ValueError):
            QuantileBinner(max_bins=1)
        with pytest.raises(ValueError):
            QuantileBinner(max_bins=300)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            QuantileBinner().fit(np.zeros(5))

    def test_feature_count_checked(self, rng):
        binner = QuantileBinner().fit(rng.normal(size=(50, 3)))
        with pytest.raises(ValueError):
            binner.transform(rng.normal(size=(5, 4)))

    def test_bins_in_range(self, rng):
        X = rng.normal(size=(500, 4))
        binner = QuantileBinner(max_bins=16)
        Xb = binner.fit_transform(X)
        assert Xb.dtype == np.uint8
        assert Xb.max() < 16

    def test_constant_feature_single_bin(self, rng):
        X = np.column_stack([np.full(100, 3.0), rng.normal(size=100)])
        Xb = QuantileBinner(max_bins=8).fit_transform(X)
        assert len(np.unique(Xb[:, 0])) == 1

    def test_monotone_mapping(self, rng):
        X = rng.normal(size=(300, 1))
        binner = QuantileBinner(max_bins=32).fit(X)
        Xb = binner.transform(X)[:, 0]
        order = np.argsort(X[:, 0])
        assert (np.diff(Xb[order].astype(int)) >= 0).all()

    def test_unseen_values_clamp(self, rng):
        X = rng.uniform(0, 1, size=(100, 1))
        binner = QuantileBinner(max_bins=8).fit(X)
        out = binner.transform(np.array([[-100.0], [100.0]]))
        assert out[0, 0] == 0
        assert out[1, 0] == binner.transform(X).max()

    def test_nan_maps_to_lowest_bin(self, rng):
        X = rng.uniform(0, 1, size=(100, 1))
        binner = QuantileBinner(max_bins=8).fit(X)
        assert binner.transform(np.array([[np.nan]]))[0, 0] == 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    @settings(max_examples=40)
    def test_roundtrip_never_crashes(self, values):
        X = np.asarray(values).reshape(-1, 1)
        binner = QuantileBinner(max_bins=8).fit(X)
        out = binner.transform(X)
        assert out.shape == X.shape
        assert out.max() < binner.total_bins
