"""Round-trip tests for model serialization."""

import json

import numpy as np
import pytest

from repro.core.selection import EstimatorSelector
from repro.learning.mart import MARTParams, MARTRegressor
from repro.learning.serialize import (
    load_selector,
    mart_from_dict,
    mart_to_dict,
    save_selector,
    selector_from_dict,
    selector_to_dict,
    tree_from_dict,
    tree_to_dict,
)

FAST = MARTParams(n_trees=6, max_leaves=4)


@pytest.fixture()
def fitted_mart(rng):
    X = rng.normal(size=(150, 5))
    y = X[:, 0] + 0.5 * (X[:, 1] > 0)
    return MARTRegressor(FAST).fit(X, y), X


@pytest.fixture()
def fitted_selector(rng):
    X = rng.uniform(size=(120, 4))
    errors = np.column_stack([X[:, 0], 1 - X[:, 0], np.full(120, 0.5)])
    selector = EstimatorSelector(["a", "b", "c"], FAST)
    selector.fit(X, errors)
    return selector, X


class TestTreeRoundTrip:
    def test_predictions_identical(self, fitted_mart):
        model, X = fitted_mart
        tree = model.trees[0]
        Xb = model.binner.transform(X)
        clone = tree_from_dict(tree_to_dict(tree))
        assert np.allclose(clone.predict_binned(Xb), tree.predict_binned(Xb))

    def test_unfitted_tree_rejected(self):
        from repro.learning.tree import RegressionTree
        with pytest.raises(ValueError):
            tree_to_dict(RegressionTree())


class TestMartRoundTrip:
    def test_predictions_identical(self, fitted_mart):
        model, X = fitted_mart
        clone = mart_from_dict(mart_to_dict(model))
        assert np.allclose(clone.predict(X), model.predict(X))

    def test_payload_is_json_safe(self, fitted_mart):
        model, _ = fitted_mart
        text = json.dumps(mart_to_dict(model))
        assert "trees" in text

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            mart_to_dict(MARTRegressor(FAST))

    def test_bad_version_rejected(self, fitted_mart):
        model, _ = fitted_mart
        payload = mart_to_dict(model)
        payload["format_version"] = 999
        with pytest.raises(ValueError):
            mart_from_dict(payload)


class TestSelectorRoundTrip:
    def test_choices_identical(self, fitted_selector):
        selector, X = fitted_selector
        clone = selector_from_dict(selector_to_dict(selector))
        assert clone.select(X) == selector.select(X)
        assert np.allclose(clone.predict_errors(X),
                           selector.predict_errors(X))

    def test_file_round_trip(self, fitted_selector, tmp_path):
        selector, X = fitted_selector
        path = save_selector(selector, tmp_path / "selector.json")
        clone = load_selector(path)
        assert clone.estimator_names == selector.estimator_names
        assert clone.select(X) == selector.select(X)

    def test_unfitted_selector_rejected(self):
        with pytest.raises(ValueError):
            selector_to_dict(EstimatorSelector(["a"], FAST))

    def test_bad_version_rejected(self, fitted_selector):
        selector, _ = fitted_selector
        payload = selector_to_dict(selector)
        payload["format_version"] = 0
        with pytest.raises(ValueError):
            selector_from_dict(payload)
