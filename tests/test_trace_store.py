"""Tests for the trace format and the content-keyed trace store.

The load-bearing guarantee is *bit-identical replay*: record → write →
read yields a QueryRun whose every array, node and pipeline equals the
executed original, so downstream pipelines, features and TrainingData
matrices are indistinguishable from direct execution.
"""

import json
import math
from dataclasses import asdict, fields

import numpy as np
import pytest

from repro.core.training import collect_training_data, runs_to_pipelines
from repro.engine.run import PipelineRun, QueryRun
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scale import ScaleProfile
from repro.features.vector import FeatureExtractor
from repro.progress.registry import all_estimators
from repro.trace import (
    TRACE_FORMAT_VERSION,
    TraceStore,
    content_key,
    read_trace,
    write_trace,
)
from repro.trace.store import MANIFEST_NAME
from repro.workloads.suite import SuiteScale

#: a deliberately tiny profile so harness-integration tests execute in ms
UNIT_SCALE = ScaleProfile(
    name="unit",
    suite=SuiteScale(tpch_rows=1_500, tpcds_rows=1_200, real1_rows=1_000,
                     real2_rows=1_000, tpch_queries=3, tpcds_queries=3,
                     real1_queries=2, real2_queries=2),
    memory_budget_bytes=float(64 << 10),
    batch_size=256,
    target_observations=40,
    mart_trees=8,
    mart_leaves=4,
    min_pipeline_observations=4,
)


def _scalar_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def assert_runs_identical(a: QueryRun, b: QueryRun) -> None:
    """Field-by-field bit-identity (NaN-aware, ``output`` excluded)."""
    for key in ("times", "K", "R", "W", "LB", "UB", "N", "D"):
        assert np.array_equal(getattr(a, key), getattr(b, key)), key
    assert a.query_name == b.query_name
    assert a.db_name == b.db_name
    assert a.total_time == b.total_time
    assert a.output_rows == b.output_rows
    assert a.spill_events == b.spill_events
    assert len(a.nodes) == len(b.nodes)
    for na, nb in zip(a.nodes, b.nodes):
        for f, value in asdict(na).items():
            assert _scalar_equal(value, getattr(nb, f)), (na.node_id, f)
    assert len(a.pipelines) == len(b.pipelines)
    for pa, pb in zip(a.pipelines, b.pipelines):
        for f, value in asdict(pa).items():
            assert _scalar_equal(value, getattr(pb, f)), (pa.pid, f)


def assert_pipeline_runs_identical(a: PipelineRun, b: PipelineRun) -> None:
    for f in fields(PipelineRun):
        if f.name.startswith("_"):
            continue
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb, equal_nan=va.dtype.kind == "f"), f.name
        else:
            assert _scalar_equal(va, vb), f.name


class TestRoundTrip:
    def test_query_run_round_trip_bit_identical(self, join_run, tmp_path):
        join_run.to_trace(tmp_path / "t")
        assert_runs_identical(join_run, QueryRun.from_trace(tmp_path / "t"))

    def test_pipeline_runs_round_trip_bit_identical(self, join_run, scan_run,
                                                    tmp_path):
        write_trace(tmp_path / "t", [join_run, scan_run])
        replayed, _ = read_trace(tmp_path / "t")
        originals = runs_to_pipelines([join_run, scan_run],
                                      min_observations=5)
        clones = runs_to_pipelines(replayed, min_observations=5)
        assert len(originals) == len(clones) > 0
        for pa, pb in zip(originals, clones):
            assert_pipeline_runs_identical(pa, pb)

    def test_training_data_bit_identical_to_direct_execution(
            self, join_run, scan_run, tmp_path):
        """The acceptance criterion: replayed traces produce bit-identical
        TrainingData (X, errors_l1, errors_l2) to direct execution."""
        write_trace(tmp_path / "t", [join_run, scan_run])
        replayed, _ = read_trace(tmp_path / "t")
        estimators = all_estimators(include_worst_case=True)
        extractor = FeatureExtractor("dynamic", estimators=estimators)
        direct = collect_training_data(
            runs_to_pipelines([join_run, scan_run], 5), estimators, extractor)
        from_trace = collect_training_data(
            runs_to_pipelines(replayed, 5), estimators, extractor)
        assert np.array_equal(direct.X, from_trace.X)
        assert np.array_equal(direct.errors_l1, from_trace.errors_l1)
        assert np.array_equal(direct.errors_l2, from_trace.errors_l2)
        assert direct.meta == from_trace.meta

    def test_manifest_is_standard_json(self, join_run, tmp_path):
        path = join_run.to_trace(tmp_path / "t")
        text = (path / MANIFEST_NAME).read_text()
        payload = json.loads(text)  # NaN would raise with a strict parser
        assert "NaN" not in text
        assert payload["format_version"] == TRACE_FORMAT_VERSION

    def test_output_chunk_not_recorded(self, join_run, tmp_path):
        join_run.to_trace(tmp_path / "t")
        assert QueryRun.from_trace(tmp_path / "t").output is None


class TestFormatErrors:
    def test_unknown_format_version_raises(self, join_run, tmp_path):
        path = join_run.to_trace(tmp_path / "t")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format_version"] = 999
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported trace format"):
            read_trace(path)

    def test_missing_format_version_raises(self, join_run, tmp_path):
        path = join_run.to_trace(tmp_path / "t")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        del manifest["format_version"]
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported trace format"):
            read_trace(path)

    def test_run_without_done_matrix_rejected(self, join_run, tmp_path):
        import dataclasses
        stripped = dataclasses.replace(join_run, D=None)
        with pytest.raises(ValueError, match="done-flag"):
            stripped.to_trace(tmp_path / "t")

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty trace"):
            write_trace(tmp_path / "t", [])


class TestTraceStore:
    def test_save_load_exists_keys(self, join_run, tmp_path):
        store = TraceStore(tmp_path / "traces")
        assert not store.exists("k1")
        assert store.keys() == []
        store.save("k1", [join_run], meta={"origin": "unit"})
        assert store.exists("k1")
        assert store.keys() == ["k1"]
        assert store.manifest("k1")["meta"] == {"origin": "unit"}
        assert_runs_identical(join_run, store.load("k1")[0])

    def test_save_replaces_existing(self, join_run, scan_run, tmp_path):
        store = TraceStore(tmp_path)
        store.save("k", [join_run, scan_run])
        store.save("k", [scan_run])
        runs = store.load("k")
        assert len(runs) == 1
        assert runs[0].query_name == scan_run.query_name

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        assert TraceStore.from_env() is None
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        store = TraceStore.from_env()
        assert store is not None and store.root == tmp_path

    def test_content_key_stable_and_sensitive(self):
        a = content_key({"workload": "tpch", "seed": 0})
        b = content_key({"seed": 0, "workload": "tpch"})  # order-insensitive
        c = content_key({"workload": "tpch", "seed": 1})
        assert a == b
        assert a != c
        assert len(a) == 16


class TestHarnessTraceCache:
    def test_miss_records_then_hit_replays(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        cold = ExperimentHarness(UNIT_SCALE, seed=3, trace_store=store)
        cold_runs = cold.runs("real1")
        assert store.exists(cold.trace_key("real1"))

        warm = ExperimentHarness(UNIT_SCALE, seed=3, trace_store=store)
        warm_runs = warm.runs("real1")
        # the warm harness replayed from disk: no database was ever built
        assert warm.suite._bundles == {}
        assert len(warm_runs) == len(cold_runs)
        for a, b in zip(cold_runs, warm_runs):
            assert_runs_identical(a, b)

    def test_training_data_identical_across_processes(self, tmp_path):
        """Simulates the cross-process benchmark warm start: a second
        harness with only the trace directory reproduces the exact
        training matrices of the executing one."""
        store = TraceStore(tmp_path / "cache")
        cold = ExperimentHarness(UNIT_SCALE, seed=3, trace_store=store)
        direct = cold.training_data("real1", "dynamic")
        warm = ExperimentHarness(UNIT_SCALE, seed=3, trace_store=store)
        replayed = warm.training_data("real1", "dynamic")
        assert np.array_equal(direct.X, replayed.X)
        assert np.array_equal(direct.errors_l1, replayed.errors_l1)
        assert np.array_equal(direct.errors_l2, replayed.errors_l2)

    def test_key_distinguishes_seed_scale_workload(self):
        h1 = ExperimentHarness(UNIT_SCALE, seed=3, trace_store=None)
        h2 = ExperimentHarness(UNIT_SCALE, seed=4, trace_store=None)
        assert h1.trace_key("real1") != h2.trace_key("real1")
        assert h1.trace_key("real1") != h1.trace_key("real2")
        assert h1.trace_key("real1").startswith("real1-")

    def test_env_var_activates_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "envcache"))
        harness = ExperimentHarness(UNIT_SCALE, seed=5)
        harness.runs("real2")
        assert TraceStore(tmp_path / "envcache").exists(
            harness.trace_key("real2"))
