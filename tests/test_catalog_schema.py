"""Unit tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import Column, DatabaseSchema, TableSchema


def make_table(name="t", cols=("a", "b")):
    return TableSchema(name, tuple(Column(c) for c in cols), primary_key=(cols[0],))


class TestColumn:
    def test_defaults(self):
        col = Column("x")
        assert col.dtype == "int64"
        assert col.width == 8

    def test_float_column(self):
        assert Column("x", "float64").dtype == "float64"

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="unsupported dtype"):
            Column("x", "utf8")

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="positive width"):
            Column("x", width=0)


class TestTableSchema:
    def test_column_lookup(self):
        table = make_table()
        assert table.column("a").name == "a"
        assert table.has_column("b")
        assert not table.has_column("zzz")

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            make_table().column("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate column"):
            TableSchema("t", (Column("a"), Column("a")))

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError, match="primary key"):
            TableSchema("t", (Column("a"),), primary_key=("b",))

    def test_row_width_sums_columns(self):
        table = TableSchema("t", (Column("a", width=8), Column("b", width=25)))
        assert table.row_width == 33

    def test_column_names_order(self):
        assert make_table(cols=("x", "y", "z")).column_names == ["x", "y", "z"]


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        db = DatabaseSchema("db")
        db.add(make_table("t1"))
        assert db.table("t1").name == "t1"

    def test_duplicate_table_rejected(self):
        db = DatabaseSchema("db")
        db.add(make_table("t1"))
        with pytest.raises(ValueError, match="already"):
            db.add(make_table("t1"))

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            DatabaseSchema("db").table("ghost")

    def test_table_of_column(self):
        db = DatabaseSchema("db")
        db.add(make_table("t1", cols=("a", "b")))
        db.add(make_table("t2", cols=("c", "d")))
        assert db.table_of_column("c").name == "t2"

    def test_table_of_column_ambiguous(self):
        db = DatabaseSchema("db")
        db.add(make_table("t1", cols=("a", "b")))
        db.add(make_table("t2", cols=("a", "c")))
        with pytest.raises(KeyError, match="ambiguous"):
            db.table_of_column("a")

    def test_table_of_column_missing(self):
        with pytest.raises(KeyError, match="no table"):
            DatabaseSchema("db").table_of_column("x")
