"""Tests for the best-first regression tree."""

import numpy as np
import pytest

from repro.learning.binning import QuantileBinner
from repro.learning.tree import RegressionTree, TreeParams


def binned(X, max_bins=32):
    binner = QuantileBinner(max_bins).fit(X)
    return binner.transform(X), binner.total_bins


class TestTreeParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeParams(max_leaves=1)
        with pytest.raises(ValueError):
            TreeParams(min_samples_leaf=0)


class TestRegressionTree:
    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict_binned(np.zeros((2, 2), dtype=np.uint8))

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((0, 2), dtype=np.uint8),
                                 np.zeros(0), 8)

    def test_constant_target_single_leaf(self, rng):
        X = rng.normal(size=(100, 3))
        Xb, n_bins = binned(X)
        tree = RegressionTree().fit(Xb, np.full(100, 5.0), n_bins)
        assert tree.n_leaves == 1
        assert np.allclose(tree.predict_binned(Xb), 5.0)

    def test_perfect_binary_split(self, rng):
        X = rng.normal(size=(200, 2))
        y = np.where(X[:, 0] > 0, 10.0, -10.0)
        Xb, n_bins = binned(X)
        tree = RegressionTree(TreeParams(max_leaves=2, min_samples_leaf=1))
        tree.fit(Xb, y, n_bins)
        pred = tree.predict_binned(Xb)
        assert np.abs(pred - y).mean() < 1.0

    def test_leaf_budget_respected(self, rng):
        X = rng.normal(size=(500, 5))
        y = rng.normal(size=500)
        Xb, n_bins = binned(X)
        for budget in (2, 5, 30):
            tree = RegressionTree(TreeParams(max_leaves=budget,
                                             min_samples_leaf=1))
            tree.fit(Xb, y, n_bins)
            assert 1 <= tree.n_leaves <= budget

    def test_min_samples_leaf_respected(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        Xb, n_bins = binned(X)
        tree = RegressionTree(TreeParams(max_leaves=30, min_samples_leaf=20))
        tree.fit(Xb, y, n_bins)
        # Count samples per leaf via prediction grouping.
        pred = tree.predict_binned(Xb)
        _, counts = np.unique(pred, return_counts=True)
        assert counts.min() >= 20

    def test_more_leaves_never_hurt_training_error(self, rng):
        X = rng.normal(size=(400, 4))
        y = np.sin(X[:, 0] * 2) + 0.5 * X[:, 1]
        Xb, n_bins = binned(X)
        errors = []
        for leaves in (2, 8, 30):
            tree = RegressionTree(TreeParams(max_leaves=leaves,
                                             min_samples_leaf=2))
            tree.fit(Xb, y, n_bins)
            errors.append(np.mean((tree.predict_binned(Xb) - y) ** 2))
        assert errors[0] >= errors[1] >= errors[2]

    def test_prediction_is_leaf_mean(self, rng):
        X = rng.normal(size=(200, 2))
        y = rng.normal(size=200)
        Xb, n_bins = binned(X)
        tree = RegressionTree(TreeParams(max_leaves=4, min_samples_leaf=5))
        tree.fit(Xb, y, n_bins)
        pred = tree.predict_binned(Xb)
        for value in np.unique(pred):
            group = pred == value
            assert y[group].mean() == pytest.approx(value)

    def test_unseen_bins_route_somewhere(self, rng):
        X = rng.uniform(0, 1, size=(100, 2))
        y = X[:, 0]
        Xb, n_bins = binned(X)
        tree = RegressionTree().fit(Xb, y, n_bins)
        extreme = np.full((3, 2), n_bins - 1, dtype=np.uint8)
        assert tree.predict_binned(extreme).shape == (3,)
