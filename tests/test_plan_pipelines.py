"""Unit tests for pipeline decomposition and driver-node rules (§3.2)."""

import pytest

from repro.plan.nodes import Op, PlanNode
from repro.plan.pipelines import decompose_pipelines, node_to_pipeline


def scan(table="t"):
    return PlanNode(Op.INDEX_SCAN, table=table)


def test_requires_finalized_plan():
    with pytest.raises(ValueError, match="finalized"):
        decompose_pipelines(scan())


class TestSimpleShapes:
    def test_scan_filter_is_one_pipeline(self):
        root = PlanNode(Op.FILTER, [scan()], predicates=[]).finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 1
        assert [n.op for n in pipes[0].driver_nodes] == [Op.INDEX_SCAN]

    def test_sort_splits_two_pipelines(self):
        root = PlanNode(Op.SORT, [scan()], keys=["k"]).finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 2
        # build pipeline first (the scan), then the sort-output pipeline
        assert pipes[0].nodes[0].op == Op.INDEX_SCAN
        assert pipes[1].nodes[0].op == Op.SORT
        assert pipes[1].driver_nodes[0].op == Op.SORT

    def test_hash_agg_splits_like_sort(self):
        root = PlanNode(Op.HASH_AGG, [scan()], group_cols=["g"],
                        aggs=[]).finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 2
        assert pipes[1].driver_nodes[0].op == Op.HASH_AGG

    def test_stream_agg_stays_in_pipeline(self):
        root = PlanNode(Op.STREAM_AGG, [scan()], group_cols=[],
                        aggs=[]).finalize()
        assert len(decompose_pipelines(root)) == 1

    def test_batch_sort_stays_in_pipeline(self):
        root = PlanNode(Op.BATCH_SORT, [scan()], keys=["k"]).finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 1
        # batch sort is NOT a driver (only BATCHDNE treats it as one)
        assert [n.op for n in pipes[0].driver_nodes] == [Op.INDEX_SCAN]


class TestJoins:
    def test_hash_join_build_pipeline_runs_first(self):
        probe, build = scan("probe"), scan("build")
        root = PlanNode(Op.HASH_JOIN, [probe, build],
                        probe_key="a", build_key="b").finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 2
        assert pipes[0].nodes[0].table == "build"
        assert {n.op for n in pipes[1].nodes} == {Op.HASH_JOIN, Op.INDEX_SCAN}
        assert pipes[1].driver_nodes[0].table == "probe"

    def test_merge_join_both_sides_drive(self):
        root = PlanNode(Op.MERGE_JOIN, [scan("l"), scan("r")],
                        outer_key="a", inner_key="b").finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 1
        assert {n.table for n in pipes[0].driver_nodes} == {"l", "r"}

    def test_nlj_inner_not_a_driver(self):
        seek = PlanNode(Op.INDEX_SEEK, table="inner", column="k")
        root = PlanNode(Op.NESTED_LOOP_JOIN, [scan("outer"), seek],
                        outer_key="k").finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 1
        assert [n.table for n in pipes[0].driver_nodes] == ["outer"]
        assert seek in pipes[0].nodes

    def test_nested_blocking_order(self):
        """sort(HJ(probe=HJ2(p2, b2), build=b1)) orders builds before probes."""
        b1, b2, p2 = scan("b1"), scan("b2"), scan("p2")
        hj2 = PlanNode(Op.HASH_JOIN, [p2, b2], probe_key="x", build_key="y")
        hj1 = PlanNode(Op.HASH_JOIN, [hj2, b1], probe_key="x", build_key="y")
        root = PlanNode(Op.SORT, [hj1], keys=["k"]).finalize()
        pipes = decompose_pipelines(root)
        assert len(pipes) == 4
        assert pipes[0].nodes[0].table == "b1"      # hj1's build opens first
        assert pipes[1].nodes[0].table == "b2"      # then hj2's build
        assert pipes[2].nodes[0].op == Op.HASH_JOIN  # probe pipeline
        assert pipes[3].nodes[0].op == Op.SORT       # sort output last


class TestNodeToPipeline:
    def test_every_node_assigned_once(self):
        probe, build = scan("p"), scan("b")
        join = PlanNode(Op.HASH_JOIN, [probe, build], probe_key="a",
                        build_key="b")
        root = PlanNode(Op.SORT, [join], keys=["k"]).finalize()
        pipes = decompose_pipelines(root)
        mapping = node_to_pipeline(pipes)
        assert set(mapping) == {n.node_id for n in root.walk()}

    def test_pids_are_dense(self):
        root = PlanNode(Op.SORT, [scan()], keys=["k"]).finalize()
        pipes = decompose_pipelines(root)
        assert [p.pid for p in pipes] == [0, 1]
