"""Tests for the online progress monitor."""

import numpy as np
import pytest

from repro.core.monitor import ProgressMonitor
from repro.core.training import collect_training_data, train_selector
from repro.engine.executor import ExecutorConfig
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.registry import all_estimators

FAST_MART = MARTParams(n_trees=8, max_leaves=4)


@pytest.fixture(scope="module")
def trained_selectors(pipeline_runs):
    estimators = all_estimators()
    static_data = collect_training_data(
        pipeline_runs, estimators, FeatureExtractor("static"))
    dynamic_data = collect_training_data(
        pipeline_runs, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    return (train_selector(static_data, FAST_MART),
            train_selector(dynamic_data, FAST_MART))


@pytest.fixture(scope="module")
def monitored(tpch_db, tpch_planner, join_query, trained_selectors):
    static_sel, dynamic_sel = trained_selectors
    monitor = ProgressMonitor(static_selector=static_sel,
                              dynamic_selector=dynamic_sel,
                              refresh_every=3)
    plan = tpch_planner.plan(join_query)
    config = ExecutorConfig(batch_size=256, target_observations=60, seed=2)
    return monitor.run(tpch_db, plan, config=config)


class TestProgressMonitor:
    def test_fallback_validation(self):
        with pytest.raises(ValueError):
            ProgressMonitor(fallback="nonexistent")

    def test_produces_reports(self, monitored):
        _, reports = monitored
        assert len(reports) >= 5

    def test_reports_causal_and_ordered(self, monitored):
        _, reports = monitored
        times = [r.time for r in reports]
        assert times == sorted(times)

    def test_progress_in_range(self, monitored):
        _, reports = monitored
        for report in reports:
            assert 0.0 <= report.progress <= 1.0
            for value in report.pipeline_progress.values():
                assert 0.0 <= value <= 1.0

    def test_progress_reaches_near_completion(self, monitored):
        _, reports = monitored
        assert reports[-1].progress >= 0.8

    def test_active_pipeline_advances(self, monitored):
        _, reports = monitored
        pids = [r.active_pid for r in reports if r.active_pid >= 0]
        assert pids == sorted(pids) or len(set(pids)) <= 2

    def test_estimator_choices_from_pool(self, monitored):
        _, reports = monitored
        pool = {e.name for e in all_estimators()}
        for report in reports:
            for name in report.pipeline_estimator.values():
                assert name in pool

    def test_without_selectors_uses_fallback(self, tpch_db, tpch_planner,
                                             join_query):
        monitor = ProgressMonitor(fallback="tgn", refresh_every=4)
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, target_observations=40, seed=3)
        run, reports = monitor.run(tpch_db, plan, config=config)
        assert reports
        names = {n for r in reports for n in r.pipeline_estimator.values()}
        assert names == {"tgn"}

    def test_on_report_hook_called(self, tpch_db, tpch_planner, join_query):
        seen = []
        monitor = ProgressMonitor(on_report=seen.append, refresh_every=5)
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, target_observations=40, seed=3)
        _, reports = monitor.run(tpch_db, plan, config=config)
        assert len(seen) == len(reports)

    def test_run_returns_standard_queryrun(self, monitored):
        run, _ = monitored
        assert run.total_time > 0
        assert np.allclose(run.K[-1], run.N)
