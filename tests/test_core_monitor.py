"""Tests for the online progress monitor."""

import numpy as np
import pytest

from repro.core.monitor import MonitorState, ProgressMonitor
from repro.core.training import collect_training_data, train_selector
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.registry import all_estimators

FAST_MART = MARTParams(n_trees=8, max_leaves=4)


@pytest.fixture(scope="module")
def trained_selectors(pipeline_runs):
    estimators = all_estimators()
    static_data = collect_training_data(
        pipeline_runs, estimators, FeatureExtractor("static"))
    dynamic_data = collect_training_data(
        pipeline_runs, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    return (train_selector(static_data, FAST_MART),
            train_selector(dynamic_data, FAST_MART))


@pytest.fixture(scope="module")
def monitored(tpch_db, tpch_planner, join_query, trained_selectors):
    static_sel, dynamic_sel = trained_selectors
    monitor = ProgressMonitor(static_selector=static_sel,
                              dynamic_selector=dynamic_sel,
                              refresh_every=3)
    plan = tpch_planner.plan(join_query)
    config = ExecutorConfig(batch_size=256, target_observations=60, seed=2)
    return monitor.run(tpch_db, plan, config=config)


class TestProgressMonitor:
    def test_fallback_validation(self):
        with pytest.raises(ValueError):
            ProgressMonitor(fallback="nonexistent")

    def test_produces_reports(self, monitored):
        _, reports = monitored
        assert len(reports) >= 5

    def test_reports_causal_and_ordered(self, monitored):
        _, reports = monitored
        times = [r.time for r in reports]
        assert times == sorted(times)

    def test_progress_in_range(self, monitored):
        _, reports = monitored
        for report in reports:
            assert 0.0 <= report.progress <= 1.0
            for value in report.pipeline_progress.values():
                assert 0.0 <= value <= 1.0

    def test_progress_reaches_near_completion(self, monitored):
        _, reports = monitored
        assert reports[-1].progress >= 0.8

    def test_active_pipeline_advances(self, monitored):
        _, reports = monitored
        pids = [r.active_pid for r in reports if r.active_pid >= 0]
        assert pids == sorted(pids) or len(set(pids)) <= 2

    def test_estimator_choices_from_pool(self, monitored):
        _, reports = monitored
        pool = {e.name for e in all_estimators()}
        for report in reports:
            for name in report.pipeline_estimator.values():
                assert name in pool

    def test_without_selectors_uses_fallback(self, tpch_db, tpch_planner,
                                             join_query):
        monitor = ProgressMonitor(fallback="tgn", refresh_every=4)
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, target_observations=40, seed=3)
        run, reports = monitor.run(tpch_db, plan, config=config)
        assert reports
        names = {n for r in reports for n in r.pipeline_estimator.values()}
        assert names == {"tgn"}

    def test_on_report_hook_called(self, tpch_db, tpch_planner, join_query):
        seen = []
        monitor = ProgressMonitor(on_report=seen.append, refresh_every=5)
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, target_observations=40, seed=3)
        _, reports = monitor.run(tpch_db, plan, config=config)
        assert len(seen) == len(reports)

    def test_run_returns_standard_queryrun(self, monitored):
        run, _ = monitored
        assert np.allclose(run.K[-1], run.N)
        assert run.total_time > 0


def _reports_equal(a, b):
    return len(a) == len(b) and all(
        x.time == y.time and x.progress == y.progress
        and x.active_pid == y.active_pid
        and x.active_estimator == y.active_estimator
        and x.pipeline_progress == y.pipeline_progress
        and x.pipeline_estimator == y.pipeline_estimator
        for x, y in zip(a, b))


class TestIncrementalMonitor:
    """The streaming report path against the batch-recompute oracle."""

    @pytest.mark.parametrize("refresh_every", [1, 3])
    def test_reports_bit_identical_to_batch_path(
            self, tpch_db, tpch_planner, join_query, trained_selectors,
            refresh_every):
        static_sel, dynamic_sel = trained_selectors
        config = ExecutorConfig(batch_size=256, target_observations=60,
                                seed=2)
        streams = {}
        for incremental in (True, False):
            monitor = ProgressMonitor(static_selector=static_sel,
                                      dynamic_selector=dynamic_sel,
                                      refresh_every=refresh_every,
                                      incremental=incremental)
            plan = tpch_planner.plan(join_query)
            _, reports = monitor.run(tpch_db, plan, config=config)
            streams[incremental] = reports
        assert streams[True], "incremental monitor produced no reports"
        assert _reports_equal(streams[True], streams[False])

    def test_fallback_only_pool_matches_batch(self, tpch_db, tpch_planner,
                                              join_query):
        config = ExecutorConfig(batch_size=256, target_observations=40,
                                seed=3)
        results = []
        for incremental in (True, False):
            monitor = ProgressMonitor(fallback="luo", refresh_every=2,
                                      incremental=incremental)
            _, reports = monitor.run(tpch_db, tpch_planner.plan(join_query),
                                     config=config)
            results.append(reports)
        assert results[0] and _reports_equal(results[0], results[1])

    def test_drafts_are_constant_sized(self, tpch_db, tpch_planner,
                                       join_query):
        """Regression for the hot-path allocation: an incremental draft
        never holds a PipelineRun trajectory copy — only per-tick counter
        deltas bounded by the refresh cadence, however old the query."""
        refresh_every = 4
        monitor = ProgressMonitor(refresh_every=refresh_every)
        state = MonitorState()
        drafts = []

        def observe(ctx):
            state.ticks += 1
            if state.ticks % refresh_every:
                return
            draft = monitor.snapshot(ctx, state)
            drafts.append(draft)
            monitor.finalize(draft, state)

        executor = QueryExecutor(
            tpch_db, ExecutorConfig(batch_size=256, target_observations=80,
                                    seed=4),
            on_observation=observe)
        executor.execute(tpch_planner.plan(join_query), "draft_size")
        running = 0
        for draft in drafts:
            for snap in draft.pipes:
                assert snap.pr is None, "incremental draft holds a PipelineRun"
                if snap.status != "running":
                    assert snap.ticks is None
                    continue
                running += 1
                # bounded by the refresh cadence (+ the short-status rows
                # a pipeline's first capture may carry), not by query age
                assert len(snap.ticks) <= refresh_every + 2
                for tick in snap.ticks:
                    # one O(nodes) row per tick, nothing trajectory-shaped
                    assert tick.K.ndim == 1
                    assert (tick.K.shape == tick.N.shape == tick.LB.shape
                            == tick.UB.shape == tick.W.shape)
        assert running >= 5

    def test_streams_released_when_pipelines_finish(self, tpch_db,
                                                    tpch_planner, join_query):
        monitor = ProgressMonitor(refresh_every=1)
        state = MonitorState()

        def observe(ctx):
            state.ticks += 1
            monitor.finalize(monitor.snapshot(ctx, state), state)

        executor = QueryExecutor(
            tpch_db, ExecutorConfig(batch_size=256, target_observations=40,
                                    seed=5),
            on_observation=observe)
        executor.execute(tpch_planner.plan(join_query), "stream_release")
        # the final forced observation reports every pipeline done and
        # releases its streaming state + capture bookkeeping
        assert state.streams == {}
        assert state.metas == {}
        assert state.cursors == {}
