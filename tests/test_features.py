"""Tests for static (§4.3) and dynamic (§4.4) features."""

import numpy as np
import pytest

from repro.features.dynamic import (
    MISSING,
    dynamic_feature_names,
    dynamic_features,
)
from repro.features.static import (
    OPS_UNIVERSE,
    _ancestor_matrix,
    static_feature_names,
    static_features,
)
from repro.features.vector import FeatureExtractor
from repro.plan.nodes import Op
from repro.progress.registry import all_estimators

from helpers import make_pipeline_run


@pytest.fixture(scope="module")
def nlj_pipeline():
    """filter(0) <- nlj(1) <- [scan(2), seek(3)] with known estimates."""
    ramp = np.linspace(0, 1, 21)
    K = np.column_stack([ramp * 50, ramp * 100, ramp * 100, ramp * 200])
    return make_pipeline_run(
        [Op.FILTER, Op.NESTED_LOOP_JOIN, Op.INDEX_SCAN, Op.INDEX_SEEK], K,
        parents=[-1, 0, 1, 1],
        drivers=[2],
        E0=np.array([50.0, 100.0, 100.0, 200.0]),
        table_rows=np.array([np.nan, np.nan, 100.0, 1000.0]),
    )


class TestAncestorMatrix:
    def test_chain(self):
        anc = _ancestor_matrix(np.array([-1, 0, 1]))
        assert anc[0, 1] and anc[0, 2] and anc[1, 2]
        assert not anc[1, 0] and not anc[2, 2]

    def test_branching(self):
        anc = _ancestor_matrix(np.array([-1, 0, 0]))
        assert anc[0, 1] and anc[0, 2]
        assert not anc[1, 2]


class TestStaticFeatures:
    def test_names_match_values(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        assert set(values) == set(static_feature_names())

    def test_counts(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        assert values["count_nested_loop_join"] == 1.0
        assert values["count_index_seek"] == 1.0
        assert values["count_sort"] == 0.0

    def test_sel_at_is_relative_cardinality(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        total = 50 + 100 + 100 + 200
        assert values["sel_at_index_seek"] == pytest.approx(200 / total)

    def test_sel_above_below_nlj(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        total = 450.0
        # Nodes above an NLJ node: the filter (50).
        assert values["sel_above_nested_loop_join"] == pytest.approx(50 / total)
        # Nodes below: scan + seek (300).
        assert values["sel_below_nested_loop_join"] == pytest.approx(300 / total)

    def test_sel_at_dn(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        assert values["sel_at_dn"] == pytest.approx(100 / 450.0)

    def test_expansion(self, nlj_pipeline):
        values = static_features(nlj_pipeline)
        assert values["expansion"] == pytest.approx(450.0 / 100.0)

    def test_all_ops_in_universe_have_features(self):
        names = static_feature_names()
        for op in OPS_UNIVERSE:
            assert f"count_{op.value}" in names
            assert f"sel_below_{op.value}" in names


class TestDynamicFeatures:
    @pytest.fixture(scope="class")
    def estimators(self):
        return {e.name: e for e in all_estimators()}

    def test_names_match_values(self, nlj_pipeline, estimators):
        values = dynamic_features(nlj_pipeline, estimators)
        assert set(values) == set(dynamic_feature_names())

    def test_pairwise_disagreement_definition(self, nlj_pipeline, estimators):
        values = dynamic_features(nlj_pipeline, estimators)
        t = nlj_pipeline.observation_at_driver_fraction(10.0)
        dne = estimators["dne"].estimate(nlj_pipeline)[t]
        tgn = estimators["tgn"].estimate(nlj_pipeline)[t]
        assert values["dne_vs_tgn_at_10"] == pytest.approx(abs(dne - tgn))

    def test_missing_markers_are_sentinels(self, estimators):
        # Driver never reaches 1%: all dynamic features are MISSING.
        K = np.zeros((5, 1))
        pr = make_pipeline_run([Op.INDEX_SCAN], K, drivers=[0],
                               E0=np.array([100.0]), N=np.array([100.0]),
                               table_rows=np.array([100.0]))
        values = dynamic_features(pr, estimators)
        assert all(v == MISSING for v in values.values())

    def test_uses_precomputed_estimates(self, nlj_pipeline, estimators):
        estimates = {name: est.estimate(nlj_pipeline)
                     for name, est in estimators.items()}
        a = dynamic_features(nlj_pipeline, estimators, estimates)
        b = dynamic_features(nlj_pipeline, estimators)
        assert a == b


class TestFeatureExtractor:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            FeatureExtractor("hybrid")

    def test_static_vector_length(self, nlj_pipeline):
        extractor = FeatureExtractor("static")
        vec = extractor.extract(nlj_pipeline)
        assert vec.shape == (extractor.n_features,)
        assert extractor.n_features == len(static_feature_names())

    def test_dynamic_extends_static(self, nlj_pipeline):
        static = FeatureExtractor("static")
        dynamic = FeatureExtractor("dynamic")
        assert dynamic.n_features > static.n_features
        assert dynamic.feature_names[:static.n_features] == static.feature_names

    def test_paper_scale_feature_count(self):
        """The paper stores ~200 doubles per training record."""
        n = FeatureExtractor("dynamic").n_features
        assert 150 <= n <= 260

    def test_matrix_stacking(self, pipeline_runs):
        extractor = FeatureExtractor("static")
        matrix = extractor.extract_matrix(pipeline_runs)
        assert matrix.shape == (len(pipeline_runs), extractor.n_features)

    def test_empty_matrix(self):
        extractor = FeatureExtractor("static")
        assert extractor.extract_matrix([]).shape == (0, extractor.n_features)
