"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_components(self):
        db, planner, executor = repro.quickstart_components(
            lineitem_rows=1000, z=0.5, seed=1)
        assert db.table("lineitem").n_rows == 1000
        assert planner.db is db
        assert executor.db is db

    @pytest.mark.parametrize("module", [
        "repro.catalog", "repro.datagen", "repro.query", "repro.plan",
        "repro.engine", "repro.optimizer", "repro.progress",
        "repro.features", "repro.learning", "repro.core",
        "repro.workloads", "repro.experiments", "repro.trace",
        "repro.service", "repro.fuzz", "repro.runtime",
    ])
    def test_subpackages_importable(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a package docstring"

    @pytest.mark.parametrize("module", [
        "repro.catalog", "repro.engine", "repro.progress", "repro.core",
        "repro.learning", "repro.features", "repro.workloads",
        "repro.fuzz", "repro.runtime",
    ])
    def test_subpackage_all_resolvable(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_estimator_pool_exported(self):
        assert len(repro.all_estimators()) == 6
        assert len(repro.original_estimators()) == 3
