"""Incremental-vs-batch estimator parity (the streaming protocol).

The contract of :mod:`repro.progress.streaming`: for every estimator,
``advance``-accumulated estimates over a run's ticks equal the batch
``estimate(pr)`` trajectory *bit-for-bit* — on Hypothesis-generated
monotone trajectories, on executed fixture pipelines, and on fuzz-seeded
ad-hoc workloads (the same property the fuzz oracle's ``incremental``
layer sweeps at scale).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.engine.counters import UNBOUNDED
from repro.progress.base import BatchReplayState, ProgressEstimator
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.luo import LuoEstimator
from repro.progress.registry import all_estimators
from repro.progress.streaming import (
    PipelineMeta,
    iter_ticks,
    stream_estimates,
    tick_known_totals,
)

from helpers import linear_two_node_run
from strategies import random_pipeline

REGISTRY_ESTIMATORS = all_estimators(include_worst_case=True,
                                     include_extensions=True)
GOLD_ESTIMATORS = [GetNextOracle(), BytesProcessedOracle()]


def assert_streams_match_batch(pr, estimators=None):
    for est in estimators or REGISTRY_ESTIMATORS + GOLD_ESTIMATORS:
        batch = est.estimate(pr)
        streamed = stream_estimates(est, pr)
        assert streamed.shape == batch.shape, est.name
        assert np.array_equal(batch, streamed), (
            f"{est.name}: max |delta| = "
            f"{np.abs(batch - streamed).max():.3e}")


@given(random_pipeline())
@settings(max_examples=50, deadline=None)
def test_streaming_parity_on_random_pipelines(pr):
    """Bit-for-bit parity for every registry estimator (plus the §6.7
    oracles) on arbitrary monotone trajectories."""
    assert_streams_match_batch(pr)


def test_streaming_parity_on_executed_pipelines(join_run, scan_run):
    prs = (join_run.pipeline_runs(min_observations=5)
           + scan_run.pipeline_runs(min_observations=5))
    assert prs
    for pr in prs:
        assert_streams_match_batch(pr)


@pytest.mark.parametrize("seed", [11, 47, 203])
def test_streaming_parity_on_fuzzed_workloads(seed):
    """Fuzz-seeded ad-hoc pipelines (spill-prone knobs included) stream
    to the bit-identical trajectories."""
    from repro.catalog.statistics import build_statistics
    from repro.engine.executor import ExecutorConfig, QueryExecutor
    from repro.fuzz.generate import generate_fuzz_database, generate_fuzz_queries
    from repro.optimizer.planner import Planner

    db, info = generate_fuzz_database(seed, rows=300)
    queries = generate_fuzz_queries(info, 2, seed + 1)
    planner = Planner(db, build_statistics(db))
    scored = 0
    for i, query in enumerate(queries):
        run = QueryExecutor(db, ExecutorConfig(
            batch_size=128, memory_budget_bytes=float(16 << 10),
            target_observations=40, seed=seed * 100 + i,
        )).execute(planner.plan(query), query.name)
        for pr in run.pipeline_runs(min_observations=3):
            assert_streams_match_batch(pr)
            scored += 1
    assert scored, "fuzz seeds produced no scorable pipelines"


def test_tick_known_totals_matches_batch():
    pr = linear_two_node_run()
    meta = PipelineMeta.from_pipeline_run(pr)
    expected = pr.known_totals()
    for tick in iter_ticks(pr):
        assert np.array_equal(tick_known_totals(meta, tick), expected)


def test_meta_from_pipeline_run_carries_oracle_bytes():
    pr = linear_two_node_run()
    meta = PipelineMeta.from_pipeline_run(pr)
    from repro.progress.luo import bytes_done
    assert meta.oracle_bytes_total == float(bytes_done(pr)[-1])
    assert meta.n_nodes == pr.n_nodes
    assert meta.t_start == pr.t_start


def test_bytes_oracle_without_recorded_total_is_causal():
    """Streamed live (no oracle total) the bytes model degrades to the
    batch value on each causal prefix: bytes so far over bytes so far."""
    pr = linear_two_node_run()
    meta = PipelineMeta.from_pipeline_run(pr)
    meta.oracle_bytes_total = None
    est = BytesProcessedOracle()
    state = est.begin(meta)
    for t, tick in enumerate(iter_ticks(pr)):
        value = est.advance(state, tick)
        assert value == (1.0 if t > 0 else 0.0)


def test_luo_window_state_is_bounded_and_stateful():
    est = LuoEstimator(speed_window=5.0)
    pr = linear_two_node_run(n_obs=51)  # 2s tick spacing over 100s
    meta = PipelineMeta.from_pipeline_run(pr)
    state = est.begin(meta)
    assert state.stateful
    for tick in iter_ticks(pr):
        est.advance(state, tick)
        # entries stay within the trailing speed window (+1 boundary row)
        assert len(state.window) <= int(5.0 / 2.0) + 2


def test_default_batch_replay_fallback_matches_estimate():
    """A subclass without a native incremental path still satisfies the
    streaming contract through the accumulate-and-replay fallback."""

    class UnevenSplit(ProgressEstimator):
        name = "uneven"

        def estimate(self, pr):
            # deliberately history-dependent: normalize by the max K sum
            work = pr.K.sum(axis=1)
            peak = np.maximum.accumulate(np.maximum(work, 1e-9))
            return np.clip(work / (2.0 * peak), 0.0, 1.0)

    est = UnevenSplit()
    pr = linear_two_node_run(n_obs=9)
    state = est.begin(PipelineMeta.from_pipeline_run(pr))
    assert isinstance(state, BatchReplayState)
    assert state.stateful
    streamed = stream_estimates(est, pr)
    assert np.array_equal(streamed, est.estimate(pr))


def test_rebuilt_pipeline_run_roundtrips_fields():
    """The fallback state's rebuilt PipelineRun mirrors the original."""
    pr = linear_two_node_run(n_obs=7)
    est_state = BatchReplayState(PipelineMeta.from_pipeline_run(pr))
    for tick in iter_ticks(pr):
        est_state.push(tick)
    rebuilt = est_state.as_pipeline_run()
    for name in ("times", "K", "R", "W", "LB", "UB", "E0", "N", "widths"):
        assert np.array_equal(getattr(rebuilt, name), getattr(pr, name)), name
    assert rebuilt.ops == pr.ops
    assert rebuilt.t_start == pr.t_start
    assert rebuilt.t_end == pr.times[-1]


def test_streaming_handles_unbounded_sentinels():
    """Bound-interval estimators stream exactly through UNBOUNDED caps."""
    pr = linear_two_node_run(n_obs=11)
    pr.UB = np.full_like(pr.UB, UNBOUNDED)
    assert_streams_match_batch(pr)
