"""Unit tests for the logical query DSL."""

import pytest

from repro.query.logical import (
    JOIN_KINDS,
    Aggregate,
    JoinEdge,
    QuerySpec,
    valid_start_tables,
)
from repro.query.predicates import FilterSpec


def two_table_query(**kwargs):
    defaults = dict(
        name="q",
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )
    defaults.update(kwargs)
    return QuerySpec(**defaults)


class TestJoinEdge:
    def test_touches_and_other(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.touches("a") and edge.touches("b")
        assert not edge.touches("c")
        assert edge.other("a") == "b"
        assert edge.column_for("b") == "y"

    def test_other_rejects_foreign_table(self):
        with pytest.raises(ValueError):
            JoinEdge("a", "x", "b", "y").other("c")


class TestAggregate:
    def test_output_names(self):
        assert Aggregate("sum", "l_quantity").output_name == "sum_l_quantity"
        assert Aggregate("count").output_name == "count_star"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Aggregate("median", "x")

    def test_non_count_requires_column(self):
        with pytest.raises(ValueError):
            Aggregate("sum")


class TestQuerySpecValidation:
    def test_valid_join_query(self):
        q = two_table_query()
        assert q.joins_touching("orders") == q.joins

    def test_no_tables_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", tables=[])

    def test_self_join_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            QuerySpec(name="q", tables=["orders", "orders"])

    def test_join_outside_tables_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            two_table_query(joins=[JoinEdge("orders", "o", "ghost", "g")])

    def test_filter_outside_tables_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            two_table_query(filters=[FilterSpec("ghost", "x", "==", 1)])

    def test_group_without_aggregates_rejected(self):
        with pytest.raises(ValueError, match="groups without"):
            two_table_query(group_by=["o_orderdate"])

    def test_nonpositive_top_rejected(self):
        with pytest.raises(ValueError, match="TOP"):
            two_table_query(top=0)

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            QuerySpec(name="q", tables=["orders", "lineitem"], joins=[])

    def test_filters_on(self):
        q = two_table_query(filters=[FilterSpec("orders", "o_orderdate", "<=", 9)])
        assert len(q.filters_on("orders")) == 1
        assert q.filters_on("lineitem") == []

    def test_describe_mentions_parts(self):
        q = two_table_query(
            filters=[FilterSpec("orders", "o_orderdate", "<=", 9)],
            group_by=["o_orderstatus"],
            aggregates=[Aggregate("count")],
            top=5,
        )
        text = q.describe()
        for fragment in ("WHERE", "GROUP BY", "TOP 5"):
            assert fragment in text

    def test_is_aggregate(self):
        assert not two_table_query().is_aggregate
        assert two_table_query(aggregates=[Aggregate("count")]).is_aggregate


class TestJoinKinds:
    def test_default_kind_is_inner(self):
        assert JoinEdge("a", "x", "b", "y").kind == "inner"
        assert set(JOIN_KINDS) == {"inner", "left", "semi", "anti"}

    @pytest.mark.parametrize("kind", JOIN_KINDS)
    def test_every_kind_accepted(self, kind):
        edge = JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey",
                        kind)
        q = two_table_query(joins=[edge])
        assert q.joins[0].kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            JoinEdge("a", "x", "b", "y", "full")

    def test_non_inner_cyclic_graph_rejected(self):
        # three tables, three edges: a cycle can cover a non-preserved
        # side from two directions, so non-inner kinds require a tree
        edges = [JoinEdge("a", "x", "b", "y"),
                 JoinEdge("b", "x", "c", "y"),
                 JoinEdge("a", "x", "c", "y", "semi")]
        with pytest.raises(ValueError, match="cyclic"):
            QuerySpec(name="q", tables=["a", "b", "c"], joins=edges)

    def test_semi_target_must_be_leaf(self):
        # b is the semi join's hidden side but also joins on to c:
        # its columns would be referenced after being filtered away
        edges = [JoinEdge("a", "x", "b", "y", "semi"),
                 JoinEdge("b", "x", "c", "y")]
        with pytest.raises(ValueError, match="leaf"):
            QuerySpec(name="q", tables=["a", "b", "c"], joins=edges)

    def test_unreachable_preserved_side_rejected(self):
        # both left joins preserve their own side and target b, so no
        # join order reaches either preserved side first
        edges = [JoinEdge("a", "x", "b", "y", "left"),
                 JoinEdge("c", "x", "b", "y", "left")]
        with pytest.raises(ValueError, match="no join order"):
            QuerySpec(name="q", tables=["a", "b", "c"], joins=edges)

    def test_valid_start_tables_orders_preserved_side_first(self):
        edges = [JoinEdge("a", "x", "b", "y", "left"),
                 JoinEdge("b", "x", "c", "y", "anti")]
        starts = valid_start_tables(["a", "b", "c"], edges)
        assert starts == ["a"]  # only a reaches both preserved sides first
        q = QuerySpec(name="q", tables=["a", "b", "c"], joins=edges)
        assert q.joins[1].kind == "anti"

    def test_inner_joins_keep_every_start(self):
        edges = [JoinEdge("a", "x", "b", "y"),
                 JoinEdge("b", "x", "c", "y")]
        assert valid_start_tables(["a", "b", "c"], edges) == ["a", "b", "c"]
