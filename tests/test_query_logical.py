"""Unit tests for the logical query DSL."""

import pytest

from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec


def two_table_query(**kwargs):
    defaults = dict(
        name="q",
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
    )
    defaults.update(kwargs)
    return QuerySpec(**defaults)


class TestJoinEdge:
    def test_touches_and_other(self):
        edge = JoinEdge("a", "x", "b", "y")
        assert edge.touches("a") and edge.touches("b")
        assert not edge.touches("c")
        assert edge.other("a") == "b"
        assert edge.column_for("b") == "y"

    def test_other_rejects_foreign_table(self):
        with pytest.raises(ValueError):
            JoinEdge("a", "x", "b", "y").other("c")


class TestAggregate:
    def test_output_names(self):
        assert Aggregate("sum", "l_quantity").output_name == "sum_l_quantity"
        assert Aggregate("count").output_name == "count_star"

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Aggregate("median", "x")

    def test_non_count_requires_column(self):
        with pytest.raises(ValueError):
            Aggregate("sum")


class TestQuerySpecValidation:
    def test_valid_join_query(self):
        q = two_table_query()
        assert q.joins_touching("orders") == q.joins

    def test_no_tables_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(name="q", tables=[])

    def test_self_join_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            QuerySpec(name="q", tables=["orders", "orders"])

    def test_join_outside_tables_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            two_table_query(joins=[JoinEdge("orders", "o", "ghost", "g")])

    def test_filter_outside_tables_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            two_table_query(filters=[FilterSpec("ghost", "x", "==", 1)])

    def test_group_without_aggregates_rejected(self):
        with pytest.raises(ValueError, match="groups without"):
            two_table_query(group_by=["o_orderdate"])

    def test_nonpositive_top_rejected(self):
        with pytest.raises(ValueError, match="TOP"):
            two_table_query(top=0)

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(ValueError, match="disconnected"):
            QuerySpec(name="q", tables=["orders", "lineitem"], joins=[])

    def test_filters_on(self):
        q = two_table_query(filters=[FilterSpec("orders", "o_orderdate", "<=", 9)])
        assert len(q.filters_on("orders")) == 1
        assert q.filters_on("lineitem") == []

    def test_describe_mentions_parts(self):
        q = two_table_query(
            filters=[FilterSpec("orders", "o_orderdate", "<=", 9)],
            group_by=["o_orderstatus"],
            aggregates=[Aggregate("count")],
            top=5,
        )
        text = q.describe()
        for fragment in ("WHERE", "GROUP BY", "TOP 5"):
            assert fragment in text

    def test_is_aggregate(self):
        assert not two_table_query().is_aggregate
        assert two_table_query(aggregates=[Aggregate("count")]).is_aggregate
