"""Smoke test: the quickstart example must run end to end.

The heavier examples (train_and_monitor, adhoc_generalization) exercise
code paths already covered by the integration tests; quickstart is the
user's first contact and must never rot.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # execution-backed: runs an example end to end

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def _env_with_src():
    """Examples import ``repro`` from the src/ layout even when the
    package is not installed (pytest's own pythonpath does not reach
    subprocesses)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p)
    return env


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300, env=_env_with_src())
    assert result.returncode == 0, result.stderr
    assert "Physical plan" in result.stdout
    assert "Done:" in result.stdout
    assert "pipeline" in result.stdout


def test_examples_present_and_importable():
    expected = {"quickstart.py", "train_and_monitor.py",
                "adhoc_generalization.py", "estimator_gallery.py"}
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= found
    for name in expected:
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")  # syntax-checks without running
        assert '"""' in source  # every example is documented
