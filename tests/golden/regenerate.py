"""Regenerate the committed golden traces and their expectation files.

Run from the repo root after any *intentional* change to the engine, the
trace format or an estimator::

    PYTHONPATH=src python tests/golden/regenerate.py --all

or name the families to refresh selectively::

    PYTHONPATH=src python tests/golden/regenerate.py fuzz outer_semi

One tiny recorded trace per workload family (TPC-H, TPC-DS, skewed
"real", one fixed-seed ``adhoc_fuzz`` bundle, and the non-inner-join
``outer_semi`` bundle), each a real execution of two generated queries at
miniature scale, plus an ``expected_<family>.npz`` holding the replayed
estimator trajectories and TrainingData matrices.
``tests/test_trace_golden.py`` asserts exact (bitwise) equality against
these files — so an accidental behaviour change in the engine, the trace
codec or any estimator fails the suite with a pointer here, while an
intentional one is a one-command regeneration whose diff code review can
see.  A ``TRACE_FORMAT_VERSION`` bump always implies ``--all``: partial
refreshes would leave sibling families unreadable.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.core.training import collect_training_data, runs_to_pipelines
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.features.vector import FeatureExtractor
from repro.progress.registry import all_estimators
from repro.trace import TRACE_FORMAT_VERSION, write_trace
from repro.workloads.suite import SuiteScale, WorkloadSuite

GOLDEN_DIR = Path(__file__).resolve().parent

#: family label -> suite workload recorded for it
FAMILIES = {"tpch": "tpch_untuned", "tpcds": "tpcds", "real": "real1",
            "fuzz": "adhoc_fuzz", "outer_semi": "outer_semi"}

#: miniature scale: two queries per family over ~1k-row databases keeps
#: each committed trace in the tens of kilobytes
SCALE = SuiteScale(
    tpch_rows=1_200, tpcds_rows=1_000, real1_rows=900, real2_rows=900,
    tpch_queries=2, tpcds_queries=2, real1_queries=2, real2_queries=2,
    fuzz_rows=900, fuzz_queries=2, outer_rows=900, outer_queries=3,
)
SEED = 17
EXECUTOR = dict(batch_size=256, memory_budget_bytes=float(64 << 10),
                target_observations=50)
MIN_OBSERVATIONS = 4


def record_family(suite: WorkloadSuite, family: str, workload: str,
                  out_dir: Path = GOLDEN_DIR) -> None:
    bundle = suite.bundle(workload)
    runs = []
    for i, query in enumerate(bundle.queries):
        config = ExecutorConfig(**EXECUTOR, seed=SEED * 1_000 + i)
        executor = QueryExecutor(bundle.db, config)
        runs.append(executor.execute(bundle.planner.plan(query), query.name))
    write_trace(out_dir / family, runs, meta={
        "family": family,
        "workload": workload,
        "seed": SEED,
        "min_observations": MIN_OBSERVATIONS,
        "note": "golden regression trace — regenerate with "
                "tests/golden/regenerate.py",
    })

    estimators = all_estimators(include_worst_case=True)
    pipelines = runs_to_pipelines(runs, min_observations=MIN_OBSERVATIONS)
    if not pipelines:
        raise RuntimeError(f"family {family!r} produced no scorable "
                           f"pipelines; enlarge SCALE")
    expected: dict[str, np.ndarray] = {
        "n_pipelines": np.array(len(pipelines)),
        "format_version": np.array(TRACE_FORMAT_VERSION),
    }
    for i, pr in enumerate(pipelines):
        expected[f"p{i}_true"] = pr.true_progress()
        for est in estimators:
            expected[f"p{i}_{est.name}"] = est.estimate(pr)
    data = collect_training_data(
        pipelines, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    expected["X"] = data.X
    expected["errors_l1"] = data.errors_l1
    expected["errors_l2"] = data.errors_l2
    np.savez_compressed(out_dir / f"expected_{family}.npz", **expected)
    print(f"{family:6s} <- {workload:13s}  runs={len(runs)}  "
          f"pipelines={len(pipelines)}  "
          f"observations={[len(r.times) for r in runs]}")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate committed golden traces")
    parser.add_argument("families", nargs="*", metavar="family",
                        help=f"families to refresh, from {list(FAMILIES)} "
                             f"(default: all)")
    parser.add_argument("--all", action="store_true", dest="all_families",
                        help="regenerate every family (explicit form of "
                             "the no-argument default)")
    parser.add_argument("--out-dir", type=Path, default=GOLDEN_DIR,
                        help="write traces and expectation files here "
                             "instead of the committed golden directory "
                             "(used by the staleness check to regenerate "
                             "into a scratch dir and diff)")
    args = parser.parse_args(argv)
    unknown = [f for f in args.families if f not in FAMILIES]
    if unknown:
        parser.error(f"unknown families {unknown}; choose from "
                     f"{list(FAMILIES)}")
    wanted = list(FAMILIES) if (args.all_families or not args.families) \
        else list(dict.fromkeys(args.families))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    suite = WorkloadSuite(SCALE, seed=SEED)
    for family in wanted:
        record_family(suite, family, FAMILIES[family], out_dir=args.out_dir)


if __name__ == "__main__":
    main()
