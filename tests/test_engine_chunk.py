"""Unit tests for the columnar Chunk."""

import numpy as np
import pytest

from repro.engine.chunk import Chunk


def make(n=5):
    return Chunk({"a": np.arange(n), "b": np.arange(n) * 2.0})


class TestChunk:
    def test_len_and_columns(self):
        chunk = make(4)
        assert len(chunk) == 4
        assert chunk.columns == ["a", "b"]
        assert "a" in chunk and "z" not in chunk

    def test_empty_dict_chunk(self):
        chunk = Chunk({})
        assert len(chunk) == 0
        assert chunk.columns == []
        assert "a" not in chunk

    def test_empty_dict_chunk_ops(self):
        empty = Chunk({})
        assert len(empty.select(np.empty(0, dtype=bool))) == 0
        assert len(empty.take(np.empty(0, dtype=np.int64))) == 0
        assert len(empty.slice(0, 10)) == 0

    def test_select(self):
        out = make().select(np.array([True, False, True, False, True]))
        assert out.column("a").tolist() == [0, 2, 4]

    def test_select_all_false_mask(self):
        out = make().select(np.zeros(5, dtype=bool))
        assert len(out) == 0
        assert out.columns == ["a", "b"]  # schema survives an empty result
        assert out.column("a").dtype == make().column("a").dtype

    def test_take_with_repeats(self):
        out = make().take(np.array([1, 1, 3]))
        assert out.column("b").tolist() == [2.0, 2.0, 6.0]

    def test_take_repeats_out_of_order(self):
        # join fan-out: duplicates and arbitrary order must both survive
        out = make().take(np.array([4, 0, 0, 2, 4, 4]))
        assert out.column("a").tolist() == [4, 0, 0, 2, 4, 4]
        assert len(out) == 6

    def test_take_nothing(self):
        out = make().take(np.empty(0, dtype=np.int64))
        assert len(out) == 0
        assert out.columns == ["a", "b"]

    def test_slice(self):
        assert make().slice(1, 3).column("a").tolist() == [1, 2]

    def test_merge(self):
        left = Chunk({"x": np.arange(3)})
        right = Chunk({"y": np.arange(3) + 10})
        merged = left.merge(right)
        assert merged.columns == ["x", "y"]

    def test_merge_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            Chunk({"x": np.arange(3)}).merge(Chunk({"y": np.arange(2)}))

    def test_merge_collision(self):
        with pytest.raises(ValueError, match="collision"):
            Chunk({"x": np.arange(3)}).merge(Chunk({"x": np.arange(3)}))

    def test_concat(self):
        out = Chunk.concat([make(2), make(3)])
        assert len(out) == 5
        assert out.column("a").tolist() == [0, 1, 0, 1, 2]

    def test_concat_skips_empty(self):
        out = Chunk.concat([make(0), make(2)])
        assert len(out) == 2

    def test_concat_nothing(self):
        assert len(Chunk.concat([])) == 0

    def test_empty_constructor(self):
        chunk = Chunk.empty(["a", "b"])
        assert len(chunk) == 0
        assert chunk.columns == ["a", "b"]

    def test_repr(self):
        assert "2 rows" in repr(make(2))
