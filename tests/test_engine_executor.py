"""Invariant tests for executed query runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import ExecutorConfig, QueryExecutor


class TestExecutorConfig:
    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            ExecutorConfig(batch_size=0)

    def test_rejects_too_few_observations(self):
        with pytest.raises(ValueError):
            ExecutorConfig(target_observations=3)


class TestRunInvariants:
    def test_final_counters_equal_true_totals(self, join_run):
        assert np.allclose(join_run.K[-1], join_run.N)

    def test_times_strictly_ordered(self, join_run):
        assert (np.diff(join_run.times) >= 0).all()
        assert join_run.times[-1] == pytest.approx(join_run.total_time)

    def test_counters_monotone(self, join_run):
        for matrix in (join_run.K, join_run.R, join_run.W):
            assert (np.diff(matrix, axis=0) >= -1e-9).all()

    def test_lower_bounds_below_true_totals(self, join_run):
        assert (join_run.LB <= join_run.N[None, :] + 1e-9).all()

    def test_upper_bounds_bracket_totals_without_spills(
            self, tpch_db, tpch_planner, join_query):
        """With ample memory (no spill GetNexts) the [6]-style bounds hold.

        Spill-induced GetNext calls are deliberately *outside* the bounds —
        they are unpredictable extra work (see engine docs) — so strict
        bracketing is only guaranteed for spill-free executions.
        """
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, seed=5,
                                memory_budget_bytes=float(1 << 28),
                                target_observations=80)
        run = QueryExecutor(tpch_db, config).execute(plan)
        assert run.spill_events == 0
        assert (run.LB <= run.N[None, :] + 1e-9).all()
        assert (run.N[None, :] <= run.UB + 1e-9).all()

    def test_bounds_sandwich_current_counters(self, join_run):
        assert (join_run.LB <= join_run.K + 1e-9).all()
        assert (join_run.K <= join_run.UB + 1e-9).all()

    def test_true_progress_normalized(self, join_run):
        progress = join_run.true_progress()
        assert progress[0] == pytest.approx(0.0, abs=1e-6)
        assert progress[-1] == pytest.approx(1.0)
        assert ((0 <= progress) & (progress <= 1)).all()

    def test_pipeline_windows_cover_execution(self, join_run):
        executed = [p for p in join_run.pipelines if p.executed]
        assert executed
        assert min(p.t_start for p in executed) >= 0.0
        assert max(p.t_end for p in executed) <= join_run.total_time + 1e-9

    def test_observation_counts_bounded(self, join_run, executor_config):
        assert len(join_run.times) <= executor_config.max_observations + 2

    def test_every_node_described(self, join_run):
        assert len(join_run.nodes) == join_run.K.shape[1]
        ids = [n.node_id for n in join_run.nodes]
        assert ids == sorted(ids)

    def test_driver_flags_match_pipelines(self, join_run):
        driver_ids = {i for p in join_run.pipelines for i in p.driver_ids}
        for node in join_run.nodes:
            assert node.is_driver == (node.node_id in driver_ids)

    def test_seeded_determinism(self, tpch_db, tpch_planner, join_query):
        plan_a = tpch_planner.plan(join_query)
        plan_b = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, seed=11,
                                target_observations=50)
        run_a = QueryExecutor(tpch_db, config).execute(plan_a)
        run_b = QueryExecutor(tpch_db, config).execute(plan_b)
        assert run_a.total_time == pytest.approx(run_b.total_time)
        assert np.allclose(run_a.N, run_b.N)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=8, deadline=None)
    def test_different_seeds_same_counters(self, tpch_db, tpch_planner,
                                           join_query, seed):
        """Noise perturbs time but never the data-dependent counters."""
        plan = tpch_planner.plan(join_query)
        config = ExecutorConfig(batch_size=256, seed=seed,
                                target_observations=40)
        run = QueryExecutor(tpch_db, config).execute(plan)
        baseline = QueryExecutor(
            tpch_db, ExecutorConfig(batch_size=256, seed=0,
                                    target_observations=40)
        ).execute(tpch_planner.plan(join_query))
        assert np.allclose(run.N, baseline.N)
