"""Test helpers: hand-built PipelineRun trajectories.

Building synthetic :class:`PipelineRun` objects lets estimator and feature
tests assert exact values without going through the executor.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.plan.nodes import Op


def make_pipeline_run(
    ops: list[Op],
    K: np.ndarray,
    *,
    parents: list[int] | None = None,
    drivers: list[int] | None = None,
    E0: np.ndarray | None = None,
    N: np.ndarray | None = None,
    times: np.ndarray | None = None,
    table_rows: np.ndarray | None = None,
    widths: np.ndarray | None = None,
    LB: np.ndarray | None = None,
    UB: np.ndarray | None = None,
    W: np.ndarray | None = None,
    materialized_bytes_est: float = 0.0,
) -> PipelineRun:
    """Construct a PipelineRun from explicit counter trajectories.

    ``K`` is ``(T, m)``; everything else defaults to something consistent:
    linear times, final K as true totals, exact estimates, K-based bounds.
    """
    K = np.asarray(K, dtype=np.float64)
    T, m = K.shape
    if len(ops) != m:
        raise ValueError("ops length must match K columns")
    if times is None:
        times = np.linspace(0.0, 100.0, T)
    if N is None:
        N = K[-1].copy()
    if E0 is None:
        E0 = N.copy()
    if parents is None:
        # default: a simple chain, node 0 on top
        parents = [-1] + list(range(m - 1))
    if drivers is None:
        drivers = [m - 1]  # bottom of the chain
    driver_mask = np.zeros(m, dtype=bool)
    driver_mask[list(drivers)] = True
    if widths is None:
        widths = np.full(m, 8.0)
    if table_rows is None:
        table_rows = np.full(m, np.nan)
    if LB is None:
        LB = K.copy()
    if UB is None:
        UB = np.maximum(np.broadcast_to(N, K.shape), K)
    if W is None:
        W = np.zeros_like(K)
    return PipelineRun(
        pid=0,
        query_name="synthetic",
        db_name="synthetic",
        times=np.asarray(times, dtype=np.float64),
        t_start=float(times[0]),
        t_end=float(times[-1]),
        K=K,
        R=np.zeros_like(K),
        W=np.asarray(W, dtype=np.float64),
        LB=np.asarray(LB, dtype=np.float64),
        UB=np.asarray(UB, dtype=np.float64),
        E0=np.asarray(E0, dtype=np.float64),
        N=np.asarray(N, dtype=np.float64),
        widths=np.asarray(widths, dtype=np.float64),
        table_rows=np.asarray(table_rows, dtype=np.float64),
        ops=list(ops),
        driver_mask=driver_mask,
        parent_local=np.asarray(parents, dtype=np.int64),
        node_ids=np.arange(m),
        materialized_bytes_est=materialized_bytes_est,
    )


def linear_two_node_run(n_obs: int = 11, total: float = 100.0) -> PipelineRun:
    """Scan -> filter chain where everything progresses linearly."""
    ramp = np.linspace(0.0, total, n_obs)
    K = np.column_stack([ramp * 0.5, ramp])  # filter on top, scan below
    return make_pipeline_run(
        [Op.FILTER, Op.INDEX_SCAN], K,
        parents=[-1, 0], drivers=[1],
        table_rows=np.array([np.nan, total]),
    )


def truncate_run(pr: PipelineRun, upto: int) -> PipelineRun:
    """Causal prefix of a pipeline run: observations [0, upto]."""
    stop = upto + 1
    return PipelineRun(
        pid=pr.pid,
        query_name=pr.query_name,
        db_name=pr.db_name,
        times=pr.times[:stop],
        t_start=pr.t_start,
        t_end=float(pr.times[upto]),
        K=pr.K[:stop],
        R=pr.R[:stop],
        W=pr.W[:stop],
        LB=pr.LB[:stop],
        UB=pr.UB[:stop],
        E0=pr.E0,
        N=pr.N,
        widths=pr.widths,
        table_rows=pr.table_rows,
        ops=pr.ops,
        driver_mask=pr.driver_mask,
        parent_local=pr.parent_local,
        node_ids=pr.node_ids,
        materialized_bytes_est=pr.materialized_bytes_est,
    )
