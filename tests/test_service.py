"""Tests for the concurrent multi-query progress service.

The load-bearing property is *pooling transparency*: a query monitored
inside the pooled service — time-sliced against other queries, with its
estimator selections scored in cross-session batches — must produce the
bit-identical ProgressReport sequence a solo ProgressMonitor produces for
the same seed.  Batching may change when scoring happens, never what it
computes.
"""

import numpy as np
import pytest

from repro.core.monitor import ProgressMonitor
from repro.core.training import collect_training_data, train_selector
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.dne import DNEEstimator
from repro.progress.registry import all_estimators
from repro.query.logical import JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec
from repro.service import (
    BatchedSelectorScorer,
    ProgressService,
    RoundRobinScheduler,
    SessionStatus,
    ShardedProgressService,
)

pytestmark = pytest.mark.slow  # execution-backed: live multi-query runs

FAST_MART = MARTParams(n_trees=8, max_leaves=4)
SEEDS = (2, 3, 4, 5)


@pytest.fixture(scope="module")
def trained_selectors(pipeline_runs):
    estimators = all_estimators()
    static_data = collect_training_data(
        pipeline_runs, estimators, FeatureExtractor("static"))
    dynamic_data = collect_training_data(
        pipeline_runs, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    return (train_selector(static_data, FAST_MART),
            train_selector(dynamic_data, FAST_MART))


@pytest.fixture(scope="module")
def monitor(trained_selectors):
    static_sel, dynamic_sel = trained_selectors
    return ProgressMonitor(static_selector=static_sel,
                           dynamic_selector=dynamic_sel,
                           refresh_every=3)


@pytest.fixture(scope="module")
def streaming_query():
    """A join whose root streams chunks (no blocking sort/agg at the top),
    so execution takes many resumable steps and sessions visibly
    interleave."""
    return QuerySpec(
        name="streaming_join",
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("lineitem", "l_quantity", ">=", 2.0)],
    )


def _config(seed):
    return ExecutorConfig(batch_size=256, target_observations=60, seed=seed)


class TestExecutionHandle:
    def test_step_loop_equals_execute(self, tpch_db, tpch_planner, join_query):
        plan_a = tpch_planner.plan(join_query)
        plan_b = tpch_planner.plan(join_query)
        ex = QueryExecutor(tpch_db, _config(7))
        run_a = ex.execute(plan_a, query_name="a")
        handle = QueryExecutor(tpch_db, _config(7)).begin(plan_b, "b")
        steps = 0
        while handle.step():
            steps += 1
        run_b = handle.result
        assert steps >= 2  # open + at least one chunk pull
        assert run_a.total_time == run_b.total_time
        assert np.array_equal(run_a.times, run_b.times)
        assert np.array_equal(run_a.K, run_b.K)
        assert np.array_equal(run_a.N, run_b.N)

    def test_result_before_done_raises(self, tpch_db, tpch_planner,
                                       join_query):
        handle = QueryExecutor(tpch_db, _config(7)).begin(
            tpch_planner.plan(join_query))
        with pytest.raises(RuntimeError):
            handle.result

    def test_step_after_done_is_noop(self, tpch_db, tpch_planner, join_query):
        handle = QueryExecutor(tpch_db, _config(7)).begin(
            tpch_planner.plan(join_query))
        handle.run_to_completion()
        assert handle.done
        assert handle.step() is False


class TestPoolingTransparency:
    @pytest.fixture(scope="class")
    def solo_reports(self, tpch_db, tpch_planner, join_query, monitor):
        out = {}
        for seed in SEEDS:
            _, reports = monitor.run(tpch_db, tpch_planner.plan(join_query),
                                     config=_config(seed))
            out[seed] = reports
        return out

    @pytest.fixture(scope="class")
    def pooled(self, tpch_db, tpch_planner, join_query, monitor):
        service = ProgressService(monitor, slice_steps=4)
        for seed in SEEDS:
            service.submit(tpch_db, tpch_planner.plan(join_query),
                           query_name=f"seed{seed}", config=_config(seed))
        results = service.run_until_complete(max_ticks=10_000)
        return service, results

    def test_identical_report_sequences(self, solo_reports, pooled):
        _, results = pooled
        for sid, seed in enumerate(SEEDS):
            _, pooled_reports = results[sid]
            assert pooled_reports == solo_reports[seed]

    def test_identical_query_runs(self, tpch_db, tpch_planner, join_query,
                                  pooled):
        _, results = pooled
        solo = QueryExecutor(tpch_db, _config(SEEDS[0])).execute(
            tpch_planner.plan(join_query))
        pooled_run, _ = results[0]
        assert pooled_run.total_time == solo.total_time
        assert np.array_equal(pooled_run.K, solo.K)

    def test_selections_were_batched(self, pooled):
        service, results = pooled
        stats = service.scorer.stats
        n_selections = stats.rows
        assert n_selections >= len(SEEDS)  # at least one choice per query
        # Cross-session batching: far fewer scoring passes than selections.
        assert stats.batches < n_selections
        assert stats.rows_per_batch > 1.0

    def test_service_is_deterministic(self, tpch_db, tpch_planner, join_query,
                                      monitor, pooled):
        _, first = pooled
        service = ProgressService(monitor, slice_steps=4)
        for seed in SEEDS:
            service.submit(tpch_db, tpch_planner.plan(join_query),
                           query_name=f"seed{seed}", config=_config(seed))
        second = service.run_until_complete(max_ticks=10_000)
        for sid in range(len(SEEDS)):
            assert second[sid][1] == first[sid][1]


class TestScheduling:
    def test_sessions_interleave(self, tpch_db, tpch_planner, streaming_query,
                                 monitor):
        service = ProgressService(monitor, slice_steps=2)
        for seed in SEEDS:
            service.submit(tpch_db, tpch_planner.plan(streaming_query),
                           query_name=f"s{seed}", config=_config(seed))
        max_live_seen = 0
        ticks = 0
        while service.tick():
            ticks += 1
            live = sum(s.status is SessionStatus.RUNNING
                       for s in service.sessions)
            max_live_seen = max(max_live_seen, live)
            assert ticks < 10_000
        assert ticks >= 2  # work spans several rounds
        assert max_live_seen >= 2  # several queries genuinely in flight

    def test_admission_control(self, tpch_db, tpch_planner, streaming_query,
                               monitor):
        service = ProgressService(monitor, slice_steps=2, max_live=2)
        for seed in SEEDS:
            service.submit(tpch_db, tpch_planner.plan(streaming_query),
                           query_name=f"s{seed}", config=_config(seed))
        while service.tick():
            live = sum(s.status is SessionStatus.RUNNING
                       for s in service.sessions)
            assert live <= 2
        assert service.stats.sessions_completed == len(SEEDS)

    def test_round_robin_rotation(self):
        scheduler = RoundRobinScheduler(slice_steps=3)

        class Stub:
            status = SessionStatus.RUNNING

        a, b, c = Stub(), Stub(), Stub()
        first = scheduler.plan_round([a, b, c])
        second = scheduler.plan_round([a, b, c])
        assert first == [a, b, c]
        assert second == [b, c, a]

    def test_invalid_parameters(self, monitor):
        with pytest.raises(ValueError):
            RoundRobinScheduler(slice_steps=0)
        with pytest.raises(ValueError):
            ProgressService(monitor, max_live=0)


class TestServiceWithoutSelectors:
    def test_fallback_pool_matches_solo(self, tpch_db, tpch_planner,
                                        join_query):
        plain = ProgressMonitor(fallback="tgn", refresh_every=4)
        _, solo = plain.run(tpch_db, tpch_planner.plan(join_query),
                            config=_config(3))
        service = ProgressService(plain, slice_steps=4)
        service.submit(tpch_db, tpch_planner.plan(join_query),
                       config=_config(3))
        results = service.run_until_complete(max_ticks=10_000)
        _, pooled_reports = results[0]
        assert pooled_reports == solo
        names = {n for r in pooled_reports
                 for n in r.pipeline_estimator.values()}
        assert names == {"tgn"}
        assert service.scorer.stats.batches == 0  # nothing to score


class TestBatchedScorer:
    def test_batch_matches_single(self, trained_selectors, pipeline_runs):
        static_sel, _ = trained_selectors
        extractor = FeatureExtractor("static")
        X = [extractor.extract(pr) for pr in pipeline_runs]
        scorer = BatchedSelectorScorer(static_sel, None)
        batched = scorer.resolve([("static", x) for x in X])
        singles = [static_sel.select_one(x) for x in X]
        assert batched == singles
        assert scorer.stats.batches == 1
        assert scorer.stats.rows == len(X)

    def test_missing_selector_raises(self):
        scorer = BatchedSelectorScorer(None, None)
        with pytest.raises(RuntimeError):
            scorer.resolve([("static", np.zeros(4))])

    def test_on_report_hook(self, tpch_db, tpch_planner, join_query, monitor):
        seen = []
        service = ProgressService(
            monitor, slice_steps=4,
            on_report=lambda session, report: seen.append(
                (session.session_id, report)))
        service.submit(tpch_db, tpch_planner.plan(join_query),
                       config=_config(2))
        results = service.run_until_complete(max_ticks=10_000)
        _, reports = results[0]
        assert [r for _, r in seen] == reports


@pytest.fixture(scope="module")
def replay_runs(tpch_db, tpch_planner, join_query):
    """Recorded executions of the join fixture (replay-service inputs)."""
    return [QueryExecutor(tpch_db, _config(seed)).execute(
                tpch_planner.plan(join_query), query_name=f"seed{seed}")
            for seed in SEEDS]


class TestVectorizedFlush:
    """The SoA fast path: engagement rules and scalar-flush parity.

    The fuzz oracle's ``service`` layer sweeps the same parity over
    randomized workloads; these are the deterministic fixture anchors.
    """

    def test_engages_only_for_native_incremental_pools(self, monitor):
        assert ProgressService(monitor).vectorized
        assert not ProgressService(monitor, vectorized=False).vectorized
        # the batch (O(history)) monitor has no streaming states to batch
        batch = ProgressMonitor(incremental=False)
        assert not ProgressService(batch).vectorized
        # a pool member without a native SoA kernel forces the scalar path

        class Tweaked(DNEEstimator):
            name = "tweaked"

        custom = ProgressMonitor(estimators=all_estimators() + [Tweaked()])
        assert not ProgressService(custom).vectorized

    def test_replay_reports_match_scalar_flush(self, replay_runs, monitor):
        def drive(vectorized):
            service = ProgressService(monitor, slice_steps=5, max_live=3,
                                      vectorized=vectorized)
            for run in replay_runs:
                service.submit_replay(run)
            return service, service.run_until_complete(max_ticks=100_000)

        vec_service, vec = drive(True)
        sca_service, sca = drive(False)
        assert vec_service.vectorized and not sca_service.vectorized
        for sid in range(len(replay_runs)):
            assert vec[sid][1], "replay sessions must produce reports"
            assert vec[sid][1] == sca[sid][1]

    def test_untrained_monitor_replay_parity(self, replay_runs):
        plain = ProgressMonitor(refresh_every=2)

        def drive(vectorized):
            service = ProgressService(plain, slice_steps=3,
                                      vectorized=vectorized)
            for run in replay_runs:
                service.submit_replay(run)
            return service.run_until_complete(max_ticks=100_000)

        vec, sca = drive(True), drive(False)
        for sid in range(len(replay_runs)):
            assert vec[sid][1] == sca[sid][1]


class TestServiceAccounting:
    """ServiceStats invariants and per-tick cost scaling (the session
    index regression guards)."""

    def test_drain_invariants(self, replay_runs, monitor):
        service = ProgressService(monitor, slice_steps=4, max_live=2)
        for run in replay_runs + replay_runs:
            service.submit_replay(run)
        prev = (0, 0, 0)
        calls = 0
        while True:
            more = service.tick()
            calls += 1
            s = service.stats
            now = (s.ticks, s.steps, s.reports)
            assert all(a >= b for a, b in zip(now, prev)), "non-monotone"
            prev = now
            assert s.sessions_completed <= s.sessions_submitted
            assert calls < 100_000
            if not more:
                break
        s = service.stats
        assert s.sessions_submitted == 2 * len(replay_runs)
        assert s.sessions_completed == s.sessions_submitted
        assert s.reports == sum(len(x.reports) for x in service.sessions)

    def test_tick_cost_flat_as_sessions_complete(self, replay_runs, monitor):
        """Completed sessions must drop out of the per-tick scan: with
        admission capped at 1, every tick scans at most one session no
        matter how many finished ones have accumulated."""
        service = ProgressService(monitor, slice_steps=6, max_live=1)
        for run in replay_runs + replay_runs:
            service.submit_replay(run)
        calls = 0
        while service.tick():
            calls += 1
            assert service.stats.sessions_scanned <= calls + 1
            assert calls < 100_000
        assert service.stats.sessions_completed == 2 * len(replay_runs)
        # a drained service ticks as a no-op
        scanned = service.stats.sessions_scanned
        assert service.tick() is False
        assert service.stats.sessions_scanned == scanned

    def test_resubmission_after_drain(self, replay_runs, monitor):
        service = ProgressService(monitor, slice_steps=4)
        service.submit_replay(replay_runs[0])
        service.run_until_complete(max_ticks=100_000)
        assert not service.active
        service.submit_replay(replay_runs[1])
        results = service.run_until_complete(max_ticks=100_000)
        assert service.stats.sessions_completed == 2
        assert results[1][1], "second wave produced reports"


class TestShardedChurn:
    """Admission-control churn on the sharded fleet, with the trained
    monitor over live-recorded runs (the heavyweight complement to the
    golden-trace anchors in ``test_service_sharded.py``)."""

    @pytest.fixture(scope="class")
    def solo_streams(self, replay_runs, monitor):
        service = ProgressService(monitor, slice_steps=4)
        for run in replay_runs:
            service.submit_replay(run)
        results = service.run_until_complete(max_ticks=100_000)
        return [results[sid][1] for sid in range(len(replay_runs))]

    def test_submissions_while_others_drain(self, replay_runs, monitor,
                                            solo_streams):
        """A second wave submitted mid-drain (some first-wave sessions
        already retired) must neither disturb in-flight streams nor its
        own — placement stays by global submission index."""
        service = ShardedProgressService(monitor, n_shards=2, slice_steps=3,
                                        max_live=1)
        first = [service.submit_replay(run) for run in replay_runs]
        ticks = 0
        while service.stats.service.sessions_completed < 2:
            assert service.tick(), "fleet drained before the churn point"
            ticks += 1
            assert ticks < 100_000
        second = [service.submit_replay(run) for run in replay_runs]
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        for wave in (first, second):
            for sid, solo in zip(wave, solo_streams):
                assert results[sid][1] == solo
        assert service.stats.service.sessions_completed \
            == 2 * len(replay_runs)

    def test_budget_deferred_admissions_retry_after_retirement(
            self, replay_runs, monitor, solo_streams):
        budget = max(run.nbytes for run in replay_runs)
        service = ShardedProgressService(monitor, n_shards=1, slice_steps=4,
                                        memory_budget_bytes=budget)
        sids = [service.submit_replay(run) for run in replay_runs]
        results = service.run_until_complete(max_ticks=100_000)
        service.close()
        shard = service.stats.shards[0]
        assert shard.deferrals > 0, "budget never bound: no churn exercised"
        assert shard.bytes_peak <= budget
        assert shard.bytes_live == 0
        for sid, solo in zip(sids, solo_streams):
            assert results[sid][1] == solo

    def test_retire_idempotent_under_sharded_drain(self, replay_runs,
                                                   monitor):
        """The drain protocol retires, releases and ships each session
        exactly once; forcing a second retirement must not double-count
        completions, and release stays idempotent on the tombstone."""
        service = ShardedProgressService(monitor, n_shards=2, slice_steps=4)
        for run in replay_runs:
            service.submit_replay(run)
        service.run_until_complete(max_ticks=100_000)
        completed = service.stats.service.sessions_completed
        assert completed == len(replay_runs)
        for shard in service._shards:
            inner = shard.service
            for session in inner.sessions:
                assert session.done and session.released
                inner._retire(session)       # second retirement: no-op
                inner.release_session(session.session_id)  # idempotent
        assert service.stats.service.sessions_completed == completed
        service.close()

    def test_release_refuses_unfinished_sessions(self, replay_runs, monitor):
        service = ProgressService(monitor, slice_steps=4)
        sid = service.submit_replay(replay_runs[0])
        with pytest.raises(RuntimeError, match="pending"):
            service.release_session(sid)
        service.run_until_complete(max_ticks=100_000)
        service.release_session(sid)
        assert service.sessions[sid].released
        assert service.run_until_complete() == {}  # tombstones drop out
