"""Unit tests for the TPC-H / TPC-DS / real-workload database generators."""

import numpy as np
import pytest

from repro.datagen.sales import generate_real1, generate_real2
from repro.datagen.tpch import generate_tpch
from repro.datagen.tpcds import generate_tpcds


class TestTpch:
    def test_table_size_ratios(self):
        db = generate_tpch(lineitem_rows=12_000, seed=1)
        assert db.table("lineitem").n_rows == 12_000
        assert db.table("orders").n_rows == 3_000
        assert db.table("customer").n_rows == 300
        assert db.table("part").n_rows == 400
        assert db.table("partsupp").n_rows == 1_600
        assert db.table("nation").n_rows == 25
        assert db.table("region").n_rows == 5

    def test_foreign_keys_valid(self):
        db = generate_tpch(lineitem_rows=2_000, z=1.0, seed=2)
        li = db.table("lineitem")
        assert li.column("l_orderkey").max() < db.table("orders").n_rows
        assert li.column("l_partkey").max() < db.table("part").n_rows
        assert li.column("l_suppkey").max() < db.table("supplier").n_rows
        orders = db.table("orders")
        assert orders.column("o_custkey").max() < db.table("customer").n_rows

    def test_clustered_order_holds(self):
        db = generate_tpch(lineitem_rows=2_000, z=1.0, seed=2)
        for table in db.tables.values():
            key = table.clustered_on
            assert key is not None
            assert (np.diff(table.column(key)) >= 0).all(), table.name

    def test_deterministic(self):
        a = generate_tpch(lineitem_rows=1_000, z=1.0, seed=5)
        b = generate_tpch(lineitem_rows=1_000, z=1.0, seed=5)
        assert (a.table("lineitem").column("l_partkey")
                == b.table("lineitem").column("l_partkey")).all()

    def test_skew_increases_hot_order_fanout(self):
        flat = generate_tpch(lineitem_rows=8_000, z=0.0, seed=3)
        skew = generate_tpch(lineitem_rows=8_000, z=2.0, seed=3)
        flat_max = np.bincount(flat.table("lineitem").column("l_orderkey")).max()
        skew_max = np.bincount(skew.table("lineitem").column("l_orderkey")).max()
        assert skew_max > 2 * flat_max

    def test_shipdate_after_orderdate(self):
        db = generate_tpch(lineitem_rows=2_000, seed=4)
        li = db.table("lineitem")
        orders = db.table("orders")
        odate = orders.column("o_orderdate")[li.column("l_orderkey")]
        assert (li.column("l_shipdate") > odate).all()

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_tpch(lineitem_rows=10)

    def test_db_name_encodes_skew(self):
        assert generate_tpch(1_000, z=1.0).name == "tpch_z1"


class TestTpcds:
    def test_fact_ratios(self):
        db = generate_tpcds(fact_rows=6_000, seed=1)
        assert db.table("store_sales").n_rows == 6_000
        assert db.table("catalog_sales").n_rows == 4_000
        assert db.table("web_sales").n_rows == 3_000

    def test_foreign_keys_valid(self):
        db = generate_tpcds(fact_rows=3_000, seed=1)
        ss = db.table("store_sales")
        assert ss.column("ss_item_sk").max() < db.table("item").n_rows
        assert ss.column("ss_customer_sk").max() < db.table("customer_dim").n_rows
        assert ss.column("ss_store_sk").max() < db.table("store").n_rows
        cd = db.table("customer_dim")
        assert cd.column("cd_address_sk").max() < db.table("customer_address").n_rows

    def test_facts_clustered_on_date(self):
        db = generate_tpcds(fact_rows=3_000, seed=1)
        for fact in ("store_sales", "catalog_sales", "web_sales"):
            key = db.table(fact).clustered_on
            assert key.endswith("sold_date_sk")
            assert (np.diff(db.table(fact).column(key)) >= 0).all()


class TestRealSchemas:
    def test_real1_tables_present(self):
        db = generate_real1(fact_rows=3_000, seed=1)
        for name in ("sales", "returns", "product", "category", "store",
                     "employee", "customer_r1", "promotion_r1", "calendar"):
            assert name in db.tables

    def test_real1_price_correlates_with_category(self):
        db = generate_real1(fact_rows=3_000, seed=1)
        product = db.table("product")
        cats = product.column("prod_category")
        prices = product.column("prod_price")
        # Per-category price variance should be far below global variance.
        within = np.mean([prices[cats == c].std()
                          for c in np.unique(cats) if (cats == c).sum() > 3])
        assert within < prices.std()

    def test_real1_fk_validity(self):
        db = generate_real1(fact_rows=2_000, seed=2)
        sales = db.table("sales")
        assert sales.column("sale_product").max() < db.table("product").n_rows
        assert sales.column("sale_customer").max() < db.table("customer_r1").n_rows

    def test_real2_supports_12_way_joins(self):
        db = generate_real2(fact_rows=2_000, seed=1)
        assert len(db.tables) >= 12

    def test_real2_fk_validity(self):
        db = generate_real2(fact_rows=2_000, seed=1)
        shp = db.table("shipments")
        assert shp.column("shp_origin_port").max() < db.table("port").n_rows
        assert shp.column("shp_commodity").max() < db.table("commodity").n_rows
        port = db.table("port")
        assert port.column("port_country").max() < db.table("country").n_rows

    def test_real2_value_derived_from_commodity(self):
        db = generate_real2(fact_rows=2_000, seed=1)
        shp = db.table("shipments")
        density = db.table("commodity").column("comm_value_density")
        expected = (shp.column("shp_teu")
                    * density[shp.column("shp_commodity")]).round(2)
        assert np.allclose(shp.column("shp_value"), expected)
