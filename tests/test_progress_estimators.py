"""Tests for all candidate progress estimators (paper §3.4 / §5)."""

import numpy as np
import pytest

from repro.plan.nodes import Op
from repro.progress import all_estimators
from repro.progress.batchdne import BatchDNEEstimator
from repro.progress.dne import DNEEstimator
from repro.progress.dneseek import DNESeekEstimator
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.luo import LuoEstimator
from repro.progress.safe_pmax import PMaxEstimator, SafeEstimator
from repro.progress.tgn import TGNEstimator
from repro.progress.tgnint import TGNIntEstimator

from helpers import linear_two_node_run, make_pipeline_run, truncate_run

ALL = all_estimators(include_worst_case=True)


class TestUniversalProperties:
    @pytest.mark.parametrize("estimator", ALL, ids=lambda e: e.name)
    def test_range_and_shape(self, estimator, pipeline_runs):
        for pr in pipeline_runs:
            est = estimator.estimate(pr)
            assert est.shape == (pr.n_observations,)
            assert ((0.0 <= est) & (est <= 1.0)).all(), estimator.name

    @pytest.mark.parametrize("estimator", ALL, ids=lambda e: e.name)
    def test_causality(self, estimator, pipeline_runs):
        """Estimate at observation t must not change when the future is cut."""
        pr = pipeline_runs[0]
        full = estimator.estimate(pr)
        cut = pr.n_observations // 2
        prefix = estimator.estimate(truncate_run(pr, cut))
        assert np.allclose(prefix, full[:cut + 1], atol=1e-9), estimator.name

    @pytest.mark.parametrize("estimator", ALL, ids=lambda e: e.name)
    def test_names_unique_and_stable(self, estimator):
        names = [e.name for e in ALL]
        assert names.count(estimator.name) == 1


class TestDNE:
    def test_linear_pipeline_tracks_driver(self):
        pr = linear_two_node_run()
        est = DNEEstimator().estimate(pr)
        assert np.allclose(est, np.linspace(0, 1, pr.n_observations))

    def test_exactly_driver_fraction(self, pipeline_runs):
        for pr in pipeline_runs:
            assert np.allclose(DNEEstimator().estimate(pr),
                               np.clip(pr.driver_fraction(), 0, 1))

    def test_zero_driver_totals_give_zero(self):
        pr = make_pipeline_run([Op.INDEX_SCAN], np.zeros((3, 1)),
                               drivers=[0], E0=np.array([0.0]),
                               N=np.array([0.0]))
        assert (DNEEstimator().estimate(pr) == 0).all()


class TestTGN:
    def test_exact_estimates_yield_exact_progress(self):
        # E0 == N and uniform K growth -> TGN == true work fraction
        K = np.outer(np.linspace(0, 1, 6), np.array([50.0, 100.0]))
        pr = make_pipeline_run([Op.FILTER, Op.INDEX_SCAN], K,
                               parents=[-1, 1], drivers=[1])
        est = TGNEstimator().estimate(pr)
        assert np.allclose(est, np.linspace(0, 1, 6))

    def test_underestimated_cardinality_inflates_early_progress(self):
        # N = 100 at node 0 but optimizer thought 10 -> TGN runs ahead.
        K = np.outer(np.linspace(0, 1, 6), np.array([100.0, 100.0]))
        pr = make_pipeline_run(
            [Op.FILTER, Op.INDEX_SCAN], K, parents=[-1, 1], drivers=[1],
            E0=np.array([10.0, 100.0]),
            UB=np.full((6, 2), 1e9),
        )
        est = TGNEstimator().estimate(pr)
        truth = np.linspace(0, 1, 6)
        assert (est[1:-1] > truth[1:-1]).all()

    def test_bound_clamping_repairs_estimate(self):
        # Same, but the LB forces E up to the observed K.
        K = np.outer(np.linspace(0, 1, 6), np.array([100.0, 100.0]))
        pr = make_pipeline_run(
            [Op.FILTER, Op.INDEX_SCAN], K, parents=[-1, 1], drivers=[1],
            E0=np.array([10.0, 100.0]),
        )  # default LB = K
        clamped = TGNEstimator().estimate(pr)
        pr_loose = make_pipeline_run(
            [Op.FILTER, Op.INDEX_SCAN], K, parents=[-1, 1], drivers=[1],
            E0=np.array([10.0, 100.0]),
            LB=np.zeros((6, 2)), UB=np.full((6, 2), 1e9),
        )
        unclamped = TGNEstimator().estimate(pr_loose)
        assert (clamped <= unclamped + 1e-12).all()


class TestVariants:
    def test_batchdne_equals_dne_without_batch_sorts(self, pipeline_runs):
        for pr in pipeline_runs:
            if not any(op == Op.BATCH_SORT for op in pr.ops):
                assert np.allclose(BatchDNEEstimator().estimate(pr),
                                   DNEEstimator().estimate(pr))

    def test_dneseek_equals_dne_without_seeks(self, pipeline_runs):
        for pr in pipeline_runs:
            if not any(op == Op.INDEX_SEEK for op in pr.ops):
                assert np.allclose(DNESeekEstimator().estimate(pr),
                                   DNEEstimator().estimate(pr))

    def test_batchdne_lags_dne_when_batch_sort_buffers(self):
        # scan done, batch sort half-emitted: BATCHDNE < DNE
        K = np.array([[0.0, 0.0], [20.0, 80.0], [50.0, 100.0],
                      [100.0, 100.0]])
        pr = make_pipeline_run([Op.BATCH_SORT, Op.INDEX_SCAN], K,
                               parents=[-1, 0], drivers=[1],
                               table_rows=np.array([np.nan, 100.0]))
        batch = BatchDNEEstimator().estimate(pr)
        dne = DNEEstimator().estimate(pr)
        assert (batch <= dne + 1e-12).all()
        assert batch[1] < dne[1]

    def test_tgnint_matches_formula(self, pipeline_runs):
        pr = pipeline_runs[0]
        est = TGNIntEstimator().estimate(pr)
        k_sum = pr.K.sum(axis=1)
        dne = DNEEstimator().estimate(pr)
        expected = np.clip(
            k_sum / np.maximum(k_sum + (1 - dne) * pr.E0.sum(), 1e-12), 0, 1)
        assert np.allclose(est, expected)

    def test_tgnint_converges_to_one(self, pipeline_runs):
        for pr in pipeline_runs:
            est = TGNIntEstimator().estimate(pr)
            assert est[-1] >= 0.99  # DNE -> 1 collapses the denominator


class TestLuo:
    def test_linear_bytes_reach_high_progress(self):
        pr = linear_two_node_run(n_obs=21)
        est = LuoEstimator().estimate(pr)
        assert est[-1] >= 0.9
        assert (np.diff(est) >= -0.2).all()  # roughly increasing

    def test_window_parameter_respected(self, pipeline_runs):
        pr = pipeline_runs[0]
        short = LuoEstimator(speed_window=1e-3).estimate(pr)
        long = LuoEstimator(speed_window=1e9).estimate(pr)
        assert short.shape == long.shape


class TestWorstCase:
    def test_pmax_is_most_pessimistic(self, pipeline_runs):
        """PMAX sits at (or below) the low end of the feasible interval."""
        for pr in pipeline_runs:
            pmax = PMaxEstimator().estimate(pr)
            safe = SafeEstimator().estimate(pr)
            assert (pmax <= safe + 1e-9).all()

    def test_pmax_matches_bound_formula(self, pipeline_runs):
        for pr in pipeline_runs:
            pmax = PMaxEstimator().estimate(pr)
            expected = np.clip(
                pr.K.sum(axis=1) / np.maximum(pr.UB.sum(axis=1), 1e-12), 0, 1)
            assert np.allclose(pmax, expected)

    def test_safe_between_bound_ratios(self, pipeline_runs):
        for pr in pipeline_runs:
            safe = SafeEstimator().estimate(pr)
            k_sum = pr.K.sum(axis=1)
            hi = np.clip(k_sum / np.maximum(pr.LB.sum(axis=1), 1e-12), 0, 1)
            assert (safe <= hi + 1e-9).all()


class TestOracles:
    def test_getnext_oracle_exact_on_uniform_cost(self):
        pr = linear_two_node_run()
        est = GetNextOracle().estimate(pr)
        assert np.allclose(est, np.linspace(0, 1, pr.n_observations))

    def test_getnext_oracle_close_to_truth_on_real_runs(self, pipeline_runs):
        for pr in pipeline_runs:
            err = np.abs(GetNextOracle().estimate(pr) - pr.true_progress())
            assert err.mean() < 0.25

    def test_bytes_oracle_ends_at_one(self, pipeline_runs):
        for pr in pipeline_runs:
            assert BytesProcessedOracle().estimate(pr)[-1] == pytest.approx(1.0)
