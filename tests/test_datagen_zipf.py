"""Unit tests for the Zipfian sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.zipf import skewed_fanout, zipf_probabilities, zipf_sample


class TestZipfProbabilities:
    def test_sums_to_one(self):
        for z in (0.0, 0.5, 1.0, 2.0):
            probs = zipf_probabilities(100, z)
            assert probs.sum() == pytest.approx(1.0)

    def test_uniform_at_zero(self):
        probs = zipf_probabilities(10, 0.0)
        assert np.allclose(probs, 0.1)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, 1.0)
        assert (np.diff(probs) <= 1e-15).all()

    def test_more_skew_more_head_mass(self):
        head1 = zipf_probabilities(100, 1.0)[:5].sum()
        head2 = zipf_probabilities(100, 2.0)[:5].sum()
        assert head2 > head1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)


class TestZipfSample:
    def test_values_in_domain(self, rng):
        values = zipf_sample(rng, 1000, 50, 1.0)
        assert values.min() >= 0
        assert values.max() < 50

    def test_deterministic_under_seed(self, rng_factory):
        a = zipf_sample(rng_factory(9), 100, 20, 1.0)
        b = zipf_sample(rng_factory(9), 100, 20, 1.0)
        assert (a == b).all()

    def test_zero_size(self, rng):
        assert len(zipf_sample(rng, 0, 10, 1.0)) == 0

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            zipf_sample(rng, -1, 10, 1.0)

    def test_skew_concentrates_mass(self, rng):
        skewed = zipf_sample(rng, 20_000, 100, 1.5)
        uniform = zipf_sample(rng, 20_000, 100, 0.0)
        top_skewed = np.bincount(skewed, minlength=100).max()
        top_uniform = np.bincount(uniform, minlength=100).max()
        assert top_skewed > 3 * top_uniform

    def test_shuffle_ranks_changes_identity_of_head(self, rng_factory):
        plain = zipf_sample(rng_factory(3), 5000, 50, 2.0)
        assert np.bincount(plain).argmax() == 0  # rank 1 maps to value 0
        shuffled = zipf_sample(rng_factory(3), 5000, 50, 2.0,
                               shuffle_ranks=True)
        assert shuffled.min() >= 0 and shuffled.max() < 50

    def test_large_domain_approximation(self, rng):
        values = zipf_sample(rng, 5000, 1 << 24, 1.1)
        assert values.min() >= 0
        assert values.max() < (1 << 24)

    @given(st.integers(1, 200), st.floats(0.0, 3.0))
    @settings(max_examples=40)
    def test_domain_respected(self, rng_factory, n, z):
        values = zipf_sample(rng_factory(0), 50, n, z)
        assert ((0 <= values) & (values < n)).all()


class TestSkewedFanout:
    def test_every_child_has_valid_parent(self, rng):
        fks = skewed_fanout(rng, 40, 1000, 1.0)
        assert ((0 <= fks) & (fks < 40)).all()

    def test_uniform_fanout_balanced(self, rng):
        fks = skewed_fanout(rng, 10, 10_000, 0.0)
        counts = np.bincount(fks, minlength=10)
        assert counts.max() < 2 * counts.min() + 100
