"""SoA batch kernels vs the scalar streaming states (bit parity).

:mod:`repro.progress.soa` re-lays the per-pipeline streaming states out
as structure-of-arrays batches; the contract is that ``advance`` over a
:class:`FlushBatch` row equals the scalar ``estimator.advance(state,
tick)`` on the identical tick inputs *bit-for-bit* — including rows long
enough to hit numpy's pairwise-sum unrolling, the stateful LUO ring
(pops, compaction, unpack round-trip) and the pool's slot recycling.
The end-to-end report-stream parity of the service built on these
kernels is gated separately by tests/test_service.py and the fuzz
oracle's ``service`` layer; this module pins the kernels in isolation.
"""

import numpy as np
from hypothesis import given, settings

from repro.engine.run import PipelineRun
from repro.plan.nodes import Op
from repro.progress.batchdne import BatchDNEEstimator
from repro.progress.dne import DNEEstimator
from repro.progress.dneseek import DNESeekEstimator
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.luo import LuoEstimator
from repro.progress.refined_tgn import RefinedTGNEstimator
from repro.progress.safe_pmax import PMaxEstimator, SafeEstimator
from repro.progress.soa import (
    _PAIRWISE_UNROLL,
    BatchedLuoState,
    FlushBatch,
    SoAPool,
    batched_states,
)
from repro.progress.streaming import (
    ObsTick,
    PipelineMeta,
    tick_driver_consumed,
    tick_driver_fraction,
    tick_known_totals,
)
from repro.progress.tgn import TGNEstimator
from repro.progress.tgnint import TGNIntEstimator

from helpers import linear_two_node_run, make_pipeline_run
from strategies import random_pipeline

NATIVE_ESTIMATORS = [
    DNEEstimator(), BatchDNEEstimator(), DNESeekEstimator(),
    TGNEstimator(), TGNIntEstimator(), RefinedTGNEstimator(),
    PMaxEstimator(), SafeEstimator(),
    GetNextOracle(), BytesProcessedOracle(), LuoEstimator(),
]


def batch_from_runs(pool, prs, metas=None):
    """Pack completed pipeline runs and lay their ticks out as one flush.

    Mirrors the service's ``_gather``: rows grouped per slot in tick
    order, zero-padded to the pool width, per-node done flags raised
    where the counter has reached the (known) final value.
    """
    metas = metas or [PipelineMeta.from_pipeline_run(pr) for pr in prs]
    slots = [pool.pack(meta) for meta in metas]
    total = sum(pr.n_observations for pr in prs)
    w = pool.width
    times = np.zeros(total)
    arrays = {n: np.zeros((total, w)) for n in ("K", "W", "LB", "UB")}
    D = np.zeros((total, w), dtype=bool)
    CK = np.zeros((total, w))
    CD = np.zeros((total, w), dtype=bool)
    slot_rows, lo = {}, 0
    for pr, slot in zip(prs, slots):
        T, m = pr.K.shape
        hi = lo + T
        times[lo:hi] = pr.times
        for name in arrays:
            arrays[name][lo:hi, :m] = getattr(pr, name)
        D[lo:hi, :m] = pr.K >= pr.N[None, :]
        slot_rows[slot] = (lo, hi)
        lo = hi
    depth = max(pr.n_observations for pr in prs)
    ordinals = [np.array([slot_rows[s][0] + t for pr, s in zip(prs, slots)
                          if t < pr.n_observations], dtype=np.int64)
                for t in range(depth)]
    batch = FlushBatch(pool, np.repeat(slots, [pr.n_observations
                                               for pr in prs]),
                       times, arrays["K"], arrays["W"], arrays["LB"],
                       arrays["UB"], D, CK, CD, slot_rows, ordinals)
    return batch, slots, metas


def scalar_trajectory(est, meta, batch, slot):
    """Reference: the scalar streaming state over the batch's own rows."""
    lo, hi = batch.slot_rows[slot]
    m = meta.n_nodes
    state = est.begin(meta)
    out = np.zeros(hi - lo)
    for r in range(lo, hi):
        tick = ObsTick(time=float(batch.times[r]), K=batch.K[r, :m],
                       R=np.zeros(m), W=batch.W[r, :m],
                       LB=batch.LB[r, :m], UB=batch.UB[r, :m],
                       N=batch.N[r, :m])
        out[r - lo] = est.advance(state, tick)
    return out, state


def assert_kernels_match(prs, estimators=None):
    pool = SoAPool()
    batch, slots, metas = batch_from_runs(pool, prs)
    for est in estimators or NATIVE_ESTIMATORS:
        states = batched_states({est.name: est}, pool)
        assert states is not None, est.name
        st = states[est.name]
        for slot in slots:
            st.pack(slot)
        if st.stateful:
            vector = st.advance(batch)
        else:
            vector = st.advance(batch)
        for pr, slot, meta in zip(prs, slots, metas):
            lo, hi = batch.slot_rows[slot]
            scalar, _ = scalar_trajectory(est, meta, batch, slot)
            assert np.array_equal(vector[lo:hi], scalar), (
                f"{est.name}: max |delta| = "
                f"{np.abs(vector[lo:hi] - scalar).max():.3e}")


def test_kernels_match_scalar_on_executed_pipelines(join_run, scan_run):
    prs = (join_run.pipeline_runs(min_observations=5)
           + scan_run.pipeline_runs(min_observations=5))
    assert prs
    assert_kernels_match(prs)


def test_kernels_match_scalar_on_synthetic_chain():
    assert_kernels_match([linear_two_node_run(n_obs=21)])


def test_kernels_match_scalar_past_pairwise_unroll():
    """Rows whose selection reaches numpy's pairwise-sum threshold go
    through the compacted-re-sum fixup and still match bitwise."""
    m = _PAIRWISE_UNROLL + 3
    T = 13
    rng = np.random.default_rng(7)
    K = np.cumsum(rng.uniform(0.0, 9.0, size=(T, m)), axis=0)
    K += rng.uniform(0.1, 0.9, size=m)[None, :]  # irrational-ish sums
    pr = make_pipeline_run([Op.FILTER] * (m - 1) + [Op.INDEX_SCAN], K,
                           drivers=[m - 1, m - 2],
                           table_rows=np.r_[np.full(m - 1, np.nan),
                                            K[-1, -1]])
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr])
    assert slot in pool.big["valid"], "fixture must exercise the fixup"
    assert_kernels_match([pr])


def test_mixed_width_flush_matches_scalar():
    """One flush over pipelines of different widths (zero-padded rows)."""
    wide = _PAIRWISE_UNROLL + 1
    K = np.cumsum(np.ones((9, wide)), axis=0) * np.arange(1, wide + 1)
    prs = [linear_two_node_run(n_obs=7),
           make_pipeline_run([Op.FILTER] * (wide - 1) + [Op.TABLE_SCAN], K,
                             table_rows=np.r_[np.full(wide - 1, np.nan),
                                              K[-1, -1]]),
           linear_two_node_run(n_obs=12, total=40.0)]
    assert_kernels_match(prs)


def test_batch_n_applies_mat_child_override():
    """A blocked source whose out-of-pipeline build finished reports the
    build child's counter as its total (the ``_capture_tick`` N rule)."""
    pr = linear_two_node_run(n_obs=5)
    meta = PipelineMeta.from_pipeline_run(pr)
    meta.mat_idx = np.array([1], dtype=np.int64)
    meta.mat_child_ids = np.array([9], dtype=np.int64)
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    lo, hi = batch.slot_rows[slot]
    batch.D[:, :] = False
    batch.CD[lo + 2:hi, 1] = True
    batch.CK[lo + 2:hi, 1] = 37.0
    N = batch.N
    assert np.array_equal(N[lo:lo + 2, 1], meta.E0[[1, 1]])
    assert np.array_equal(N[lo + 2:hi, 1], np.full(hi - lo - 2, 37.0))
    assert np.array_equal(N[lo:hi, 0], np.full(hi - lo, meta.E0[0]))


def test_luo_ring_matches_deque_and_unpacks():
    """The LUO ring (pops + compaction) mirrors the scalar deque state."""
    est = LuoEstimator(speed_window=5.0)
    prs = [linear_two_node_run(n_obs=51),      # 2s spacing: many pops
           linear_two_node_run(n_obs=26, total=60.0)]
    pool = SoAPool()
    batch, slots, metas = batch_from_runs(pool, prs)
    st = BatchedLuoState(est, pool)
    for slot in slots:
        st.pack(slot)
    vector = st.advance(batch)
    for pr, slot, meta in zip(prs, slots, metas):
        lo, hi = batch.slot_rows[slot]
        scalar, state = scalar_trajectory(est, meta, batch, slot)
        assert np.array_equal(vector[lo:hi], scalar)
        # ring compaction must have triggered (51 appends into cap 8)
        rebuilt = st.unpack(slot)
        assert list(rebuilt.window) == list(state.window)
    # 51 appends through a ring of 8 columns: compaction must have run
    # (the write cursor is monotone between compactions)
    assert st.wpos[slots[0]] < prs[0].n_observations


def test_luo_row_mask_freezes_masked_slots():
    est = LuoEstimator(speed_window=5.0)
    prs = [linear_two_node_run(n_obs=9), linear_two_node_run(n_obs=9)]
    pool = SoAPool()
    batch, slots, metas = batch_from_runs(pool, prs)
    st = BatchedLuoState(est, pool)
    for slot in slots:
        st.pack(slot)
    mask = np.zeros(len(batch), dtype=bool)
    lo, hi = batch.slot_rows[slots[0]]
    mask[lo:hi] = True
    vector = st.advance(batch, row_mask=mask)
    scalar, _ = scalar_trajectory(est, metas[0], batch, slots[0])
    assert np.array_equal(vector[lo:hi], scalar)
    # the masked slot's ring never advanced and its rows stayed zero
    assert st.wpos[slots[1]] == 0
    mlo, mhi = batch.slot_rows[slots[1]]
    assert not vector[mlo:mhi].any()


def test_pool_pack_release_grow_and_widen():
    pool = SoAPool(capacity=2, width=2)
    pr = linear_two_node_run(n_obs=5)
    meta = PipelineMeta.from_pipeline_run(pr)
    a, b = pool.pack(meta), pool.pack(meta)
    assert pool.n_live == 2
    c = pool.pack(meta)  # forces capacity doubling
    assert pool.capacity == 4 and pool.n_live == 3
    pool.release(b)
    assert pool.n_live == 2 and pool.metas[b] is None
    assert pool.pack(meta) == b  # freed slots are recycled
    m = 5
    wide = make_pipeline_run([Op.FILTER] * (m - 1) + [Op.TABLE_SCAN],
                             np.cumsum(np.ones((4, m)), axis=0),
                             table_rows=np.r_[np.full(m - 1, np.nan), 4.0])
    d = pool.pack(PipelineMeta.from_pipeline_run(wide))
    assert pool.width >= m
    assert np.array_equal(pool.E0[a, :2], meta.E0)  # survivors intact
    assert not pool.sel["valid"][a, 2:].any()       # padding stays off
    assert pool.sel["valid"][d, :m].all()
    assert a != b != c != d


# -- tick-helper mirrors (properties + edge cases) ---------------------------


def _empty_run():
    """A pipeline that never produced an observation row."""
    base = linear_two_node_run(n_obs=3)
    z = np.zeros((0, base.n_nodes))
    return PipelineRun(
        pid=0, query_name="empty", db_name="synthetic",
        times=np.zeros(0), t_start=0.0, t_end=0.0,
        K=z, R=z.copy(), W=z.copy(), LB=z.copy(), UB=z.copy(),
        E0=base.E0, N=base.N, widths=base.widths,
        table_rows=base.table_rows, ops=base.ops,
        driver_mask=base.driver_mask, parent_local=base.parent_local,
        node_ids=base.node_ids, materialized_bytes_est=0.0)


@given(random_pipeline())
@settings(max_examples=60, deadline=None)
def test_tick_helpers_match_batch_mirrors(pr):
    """`FlushBatch` derived rows are the per-tick helpers, row for row:
    ``totals`` mirrors :func:`tick_known_totals`, the driver sums mirror
    :func:`tick_driver_consumed` (plain and widened masks), and
    ``driver_value`` mirrors :func:`tick_driver_fraction`."""
    meta = PipelineMeta.from_pipeline_run(pr)
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    lo, hi = batch.slot_rows[slot]
    m = meta.n_nodes
    widened = np.array([op == Op.BATCH_SORT for op in meta.ops])
    totals = batch.totals
    consumed = batch.sums("driver", "K")
    denom = batch.sums("driver", "totals")
    consumed_w = batch.sums("bdrv", "K")
    denom_w = batch.sums("bdrv", "totals")
    fraction = batch.driver_value("driver")
    for r in range(lo, hi):
        tick = ObsTick(time=float(batch.times[r]), K=batch.K[r, :m],
                       R=np.zeros(m), W=batch.W[r, :m],
                       LB=batch.LB[r, :m], UB=batch.UB[r, :m],
                       N=batch.N[r, :m])
        assert np.array_equal(totals[r, :m], tick_known_totals(meta, tick))
        c, d = tick_driver_consumed(meta, tick)
        assert consumed[r] == c and denom[r] == d
        cw, dw = tick_driver_consumed(meta, tick, extra_mask=widened)
        assert consumed_w[r] == cw and denom_w[r] == dw
        assert fraction[r] == tick_driver_fraction(meta, tick)


def test_empty_pipeline_batches_to_zero_rows():
    """A never-observed pipeline packs fine, records the 0.0 oracle-bytes
    no-observation path, and every kernel advances an empty flush."""
    pr = _empty_run()
    meta = PipelineMeta.from_pipeline_run(pr)
    assert meta.oracle_bytes_total == 0.0
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    assert len(batch) == 0
    assert batch.slot_rows[slot] == (0, 0)
    for est in NATIVE_ESTIMATORS:
        st = batched_states({est.name: est}, pool)[est.name]
        st.pack(slot)
        out = st.advance(batch)
        assert out.shape == (0,)


def test_zero_denominator_pipeline_parity():
    """All totals zero: fractions degrade to 0.0, no NaN/inf anywhere,
    and batch == scalar on every kernel."""
    K = np.zeros((6, 2))
    pr = make_pipeline_run([Op.FILTER, Op.INDEX_SCAN], K,
                           N=np.zeros(2), E0=np.zeros(2),
                           LB=np.zeros((6, 2)), UB=np.zeros((6, 2)),
                           table_rows=np.array([np.nan, 0.0]))
    meta = PipelineMeta.from_pipeline_run(pr)
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    assert not batch.driver_value("driver").any()
    for r in range(*batch.slot_rows[slot]):
        tick = ObsTick(time=float(batch.times[r]), K=batch.K[r, :2],
                       R=np.zeros(2), W=batch.W[r, :2], LB=batch.LB[r, :2],
                       UB=batch.UB[r, :2], N=batch.N[r, :2])
        assert tick_driver_fraction(meta, tick) == 0.0
    assert_kernels_match([pr])


def test_all_materialized_source_pipeline_parity():
    """Every member is a blocking materialization: known totals follow
    the per-tick N everywhere, and kernels stay bit-exact."""
    ramp = np.linspace(0.0, 80.0, 9)
    K = np.column_stack([ramp * 0.25, ramp])
    pr = make_pipeline_run([Op.HASH_AGG, Op.SORT], K, drivers=[1])
    meta = PipelineMeta.from_pipeline_run(pr)
    assert len(meta.materialized_idx) == meta.n_nodes
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    assert np.array_equal(batch.totals[:, :2], batch.N[:, :2])
    assert_kernels_match([pr])


def test_bytes_oracle_zero_total_matches_scalar():
    """A recorded-but-empty oracle total (0.0) is still 'has oracle':
    the kernel must not fall back to the causal bytes-done total."""
    pr = linear_two_node_run(n_obs=7)
    meta = PipelineMeta.from_pipeline_run(pr)
    meta.oracle_bytes_total = 0.0
    est = BytesProcessedOracle()
    pool = SoAPool()
    batch, (slot,), _ = batch_from_runs(pool, [pr], metas=[meta])
    st = batched_states({est.name: est}, pool)[est.name]
    vector = st.advance(batch)
    lo, hi = batch.slot_rows[slot]
    scalar, _ = scalar_trajectory(est, meta, batch, slot)
    assert np.array_equal(vector[lo:hi], scalar)


def test_batched_states_requires_native_kernels():
    class Tweaked(DNEEstimator):
        name = "tweaked"

    pool = SoAPool()
    assert batched_states({"dne": DNEEstimator()}, pool) is not None
    # a subclass may override behaviour the kernels cannot mirror
    assert batched_states({"dne": DNEEstimator(),
                           "tweaked": Tweaked()}, pool) is None
