"""Tests for the online cardinality-refinement strategies (§3.3)."""

import numpy as np

from repro.plan.nodes import Op
from repro.progress.refine import (
    bounded_estimates,
    driver_alpha,
    interpolated_estimates,
)

from helpers import make_pipeline_run


def staircase_run():
    """Driver consumes linearly; node 0 produces twice the estimate."""
    ramp = np.linspace(0, 100, 11)
    K = np.column_stack([2 * ramp, ramp])  # N0=200 vs E0=100
    return make_pipeline_run(
        [Op.FILTER, Op.INDEX_SCAN], K, parents=[-1, 1], drivers=[1],
        E0=np.array([100.0, 100.0]),
        N=np.array([200.0, 100.0]),
        table_rows=np.array([np.nan, 100.0]),
        LB=K.copy(),
        UB=np.full((11, 2), 1e9),
    )


class TestBoundedEstimates:
    def test_within_bounds(self, pipeline_runs):
        for pr in pipeline_runs:
            est = bounded_estimates(pr)
            assert (est >= pr.LB - 1e-9).all()
            assert (est <= pr.UB + 1e-9).all()

    def test_clamps_to_lower_bound(self):
        pr = staircase_run()
        est = bounded_estimates(pr)
        # Once K0 exceeds E0=100, the estimate must follow LB=K upward.
        late = pr.K[:, 0] > 100
        assert np.allclose(est[late, 0], pr.K[late, 0])

    def test_keeps_estimate_when_inside(self):
        pr = staircase_run()
        est = bounded_estimates(pr)
        early = pr.K[:, 0] < 100
        assert np.allclose(est[early, 0], 100.0)


class TestInterpolatedEstimates:
    def test_alpha_is_driver_fraction(self, pipeline_runs):
        for pr in pipeline_runs:
            assert np.allclose(driver_alpha(pr), pr.driver_fraction())

    def test_converges_to_true_totals(self):
        pr = staircase_run()
        est = interpolated_estimates(pr)
        # At alpha=1 the extrapolation equals the observed totals.
        assert est[-1, 0] == 200.0
        assert est[-1, 1] == 100.0

    def test_starts_at_optimizer_estimate(self):
        pr = staircase_run()
        est = interpolated_estimates(pr)
        assert est[0, 0] == 100.0

    def test_interpolation_moves_monotonically(self):
        pr = staircase_run()
        est = interpolated_estimates(pr)
        # For a constant 2x extrapolation, refined estimate rises toward 200.
        assert (np.diff(est[:, 0]) >= -1e-9).all()

    def test_never_below_observed(self, pipeline_runs):
        for pr in pipeline_runs:
            est = interpolated_estimates(pr)
            assert (est >= pr.K - 1e-9).all()
