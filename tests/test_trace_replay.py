"""Tests for replay-backed monitoring and replayed service sessions.

Replay transparency is the mirror image of the service's pooling
transparency: feeding a *recording* through the monitor/service stack must
produce the bit-identical ProgressReport streams the live execution
produced — same snapshot cadence, same feature vectors, same selections —
while never touching the engine.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.monitor import ProgressMonitor
from repro.core.training import collect_training_data, train_selector
from repro.engine.executor import ExecutorConfig
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.registry import all_estimators
from repro.service import ProgressService
from repro.trace import ReplayExecutor, ReplayHandle, replay_monitor
from repro.trace.replay import ReplayContext

FAST_MART = MARTParams(n_trees=8, max_leaves=4)
SEEDS = (2, 3, 4)


def _config(seed):
    return ExecutorConfig(batch_size=256, target_observations=60, seed=seed)


@pytest.fixture(scope="module")
def monitor(pipeline_runs):
    estimators = all_estimators()
    static = collect_training_data(
        pipeline_runs, estimators, FeatureExtractor("static"))
    dynamic = collect_training_data(
        pipeline_runs, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    return ProgressMonitor(static_selector=train_selector(static, FAST_MART),
                           dynamic_selector=train_selector(dynamic, FAST_MART),
                           refresh_every=3)


@pytest.fixture(scope="module")
def live(tpch_db, tpch_planner, join_query, monitor):
    """Live monitored executions: seed -> (run, reports)."""
    out = {}
    for seed in SEEDS:
        run, reports = monitor.run(tpch_db, tpch_planner.plan(join_query),
                                   query_name=f"seed{seed}",
                                   config=_config(seed))
        out[seed] = (run, reports)
    return out


class TestReplayHandle:
    def test_steps_through_all_observations(self, live):
        run, _ = live[SEEDS[0]]
        seen = []
        handle = ReplayHandle(run, lambda ctx: seen.append(ctx.clock.now))
        assert not handle.done
        steps = 0
        while handle.step():
            steps += 1
        assert handle.done
        assert steps == len(run.times) - 1  # t=0 fires inside __init__
        assert seen == list(run.times)
        assert handle.result is run

    def test_result_before_done_raises(self, live):
        run, _ = live[SEEDS[0]]
        with pytest.raises(RuntimeError):
            ReplayHandle(run).result

    def test_step_after_done_is_noop(self, live):
        run, _ = live[SEEDS[0]]
        handle = ReplayHandle(run)
        handle.run_to_completion()
        assert handle.step() is False

    def test_run_without_done_matrix_rejected(self, live):
        run, _ = live[SEEDS[0]]
        stripped = dataclasses.replace(run, D=None)
        with pytest.raises(ValueError, match="done-flag"):
            ReplayExecutor(stripped)

    def test_context_tracks_recorded_counters(self, live):
        run, _ = live[SEEDS[0]]
        ctx = ReplayContext(run)
        mid = len(run.times) // 2
        ctx.seek(mid)
        assert ctx.clock.now == run.times[mid]
        assert np.array_equal(ctx.counters.K, run.K[mid])
        assert np.array_equal(ctx.counters.done, run.D[mid])
        arrays = ctx.log.as_arrays()
        assert arrays["K"].shape == (mid + 1, run.n_nodes)
        with pytest.raises(IndexError):
            ctx.seek(len(run.times))


class TestReplayTransparency:
    def test_solo_replay_matches_live_reports(self, live, monitor):
        for seed in SEEDS:
            run, live_reports = live[seed]
            assert replay_monitor(monitor, run) == live_reports

    def test_replay_after_disk_round_trip(self, live, monitor, tmp_path):
        run, live_reports = live[SEEDS[0]]
        path = run.to_trace(tmp_path / "t")
        from repro.engine.run import QueryRun

        assert replay_monitor(monitor, QueryRun.from_trace(path)) \
            == live_reports

    def test_service_replay_sessions_match_live_reports(self, live, monitor):
        service = ProgressService(monitor, slice_steps=4)
        for seed in SEEDS:
            service.submit_replay(live[seed][0])
        results = service.run_until_complete(max_ticks=100_000)
        for sid, seed in enumerate(SEEDS):
            replayed_run, reports = results[sid]
            assert reports == live[seed][1]
            assert replayed_run is live[seed][0]

    def test_mixed_live_and_replayed_sessions(self, tpch_db, tpch_planner,
                                              join_query, live, monitor):
        service = ProgressService(monitor, slice_steps=4)
        live_sid = service.submit(tpch_db, tpch_planner.plan(join_query),
                                  query_name="live",
                                  config=_config(SEEDS[0]))
        replay_sid = service.submit_replay(live[SEEDS[1]][0])
        results = service.run_until_complete(max_ticks=100_000)
        assert results[live_sid][1] == live[SEEDS[0]][1]
        assert results[replay_sid][1] == live[SEEDS[1]][1]

    def test_replayed_selections_still_batched(self, live, monitor):
        service = ProgressService(monitor, slice_steps=4)
        for seed in SEEDS:
            service.submit_replay(live[seed][0])
        service.run_until_complete(max_ticks=100_000)
        stats = service.scorer.stats
        assert stats.rows >= len(SEEDS)
        assert stats.batches < stats.rows
