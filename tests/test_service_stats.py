"""ServiceStats merge: the fleet roll-up is the concatenated-set account.

Two layers of the same claim:

* algebraic (Hypothesis over arbitrary counter values): ``merge`` is the
  component-wise sum — identity on the empty iterable, permutation-
  invariant, associative under chunked partitions;
* behavioural (Hypothesis over shard assignments of a replayed session
  set): for any partition of the sessions across shards, the merged
  per-shard stats report the *session-level* counters (steps, reports,
  submitted, completed) of serving the concatenated set in one pooled
  service.  ``ticks`` / ``sessions_scanned`` are excluded by contract:
  shards tick concurrently, so their sums count per-shard scheduler
  rounds, not wall-clock rounds (see :meth:`ServiceStats.merge`).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import ProgressMonitor
from repro.service import ProgressService, ServiceStats
from repro.trace.store import read_trace

from test_trace_golden import GOLDEN_DIR

FIELDS = [f.name for f in dataclasses.fields(ServiceStats)]

counters = st.integers(min_value=0, max_value=10**9)
stats_objects = st.builds(ServiceStats, *[counters] * len(FIELDS))


class TestMergeAlgebra:
    @given(st.lists(stats_objects, max_size=8))
    def test_merge_is_componentwise_sum(self, parts):
        merged = ServiceStats.merge(parts)
        for name in FIELDS:
            assert getattr(merged, name) == \
                sum(getattr(p, name) for p in parts)

    @given(st.lists(stats_objects, max_size=6), st.randoms())
    def test_merge_is_order_invariant(self, parts, rnd):
        shuffled = list(parts)
        rnd.shuffle(shuffled)
        assert ServiceStats.merge(parts) == ServiceStats.merge(shuffled)

    @given(st.lists(stats_objects, min_size=2, max_size=8),
           st.integers(min_value=1, max_value=7))
    def test_merge_is_associative_under_chunking(self, parts, k):
        cut = k % len(parts)
        rechunked = ServiceStats.merge([
            ServiceStats.merge(parts[:cut]), ServiceStats.merge(parts[cut:])])
        assert rechunked == ServiceStats.merge(parts)

    def test_empty_merge_is_identity(self):
        assert ServiceStats.merge([]) == ServiceStats()

    def test_zero_tick_reports_per_tick_guard(self):
        # a merged roll-up may cover shards that never ticked; the ratio
        # must degrade to 0.0, not divide by zero
        assert ServiceStats().reports_per_tick == 0.0
        assert ServiceStats.merge([ServiceStats(), ServiceStats()]
                                  ).reports_per_tick == 0.0
        assert ServiceStats(ticks=4, reports=6).reports_per_tick == 1.5


@pytest.fixture(scope="module")
def golden_runs():
    runs, _ = read_trace(GOLDEN_DIR / "fuzz")
    return [runs[i % len(runs)] for i in range(6)]


def _serve(runs, slice_steps):
    service = ProgressService(ProgressMonitor(refresh_every=2),
                              slice_steps=slice_steps)
    for run in runs:
        service.submit_replay(run)
    service.run_until_complete(max_ticks=100_000)
    return service.stats


class TestMergeEqualsConcatenatedSet:
    @settings(max_examples=12, deadline=None)
    @given(assignment=st.lists(st.integers(min_value=0, max_value=2),
                               min_size=6, max_size=6),
           slice_steps=st.integers(min_value=1, max_value=8))
    def test_sharded_rollup_matches_single_service(self, golden_runs,
                                                   assignment, slice_steps):
        """Partition the sessions by any shard assignment: the merged
        session-level counters equal one service serving them all."""
        whole = _serve(golden_runs, slice_steps)
        parts = [
            _serve([run for run, shard in zip(golden_runs, assignment)
                    if shard == s], slice_steps)
            for s in range(3)]
        merged = ServiceStats.merge(parts)
        for name in ("steps", "reports", "sessions_submitted",
                     "sessions_completed"):
            assert getattr(merged, name) == getattr(whole, name), name
