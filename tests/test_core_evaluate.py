"""Tests for selection-quality evaluation (§6 metrics)."""

import numpy as np
import pytest

from repro.core.evaluate import (
    evaluate_choices,
    evaluate_fixed,
    evaluate_oracle,
    evaluate_selection,
    ratios_to_optimum,
)
from repro.core.selection import EstimatorSelector
from repro.core.training import TrainingData
from repro.learning.mart import MARTParams


@pytest.fixture()
def crafted_data():
    """Four pipelines with hand-set errors for two estimators."""
    errors = np.array([
        [0.10, 0.50],
        [0.40, 0.10],
        [0.10, 0.11],
        [0.30, 0.90],
    ])
    return TrainingData(
        X=np.arange(8, dtype=float).reshape(4, 2),
        errors_l1=errors,
        errors_l2=errors * 1.5,
        feature_names=["f0", "f1"],
        estimator_names=["a", "b"],
        meta=[{"query": f"q{i}", "db": "d", "pid": 0, "duration": 1.0,
               "total_getnext": 1.0} for i in range(4)],
    )


class TestRatios:
    def test_ratio_one_for_optimal_choice(self, crafted_data):
        ratios = ratios_to_optimum(crafted_data.errors_l1,
                                   np.array([0, 1, 0, 0]))
        assert np.allclose(ratios, 1.0)

    def test_ratio_reflects_suboptimality(self, crafted_data):
        ratios = ratios_to_optimum(crafted_data.errors_l1,
                                   np.array([1, 1, 0, 0]))
        assert ratios[0] == pytest.approx(5.0, rel=0.01)


class TestEvaluateChoices:
    def test_oracle_choice_metrics(self, crafted_data):
        ev = evaluate_oracle(crafted_data)
        assert ev.avg_l1 == pytest.approx(np.array([0.1, 0.1, 0.1, 0.3]).mean())
        assert ev.optimal_rate == 1.0
        assert all(v == 0.0 for v in ev.ratio_tail.values())

    def test_fixed_estimator_metrics(self, crafted_data):
        ev = evaluate_fixed(crafted_data, "a")
        assert ev.avg_l1 == pytest.approx(crafted_data.errors_l1[:, 0].mean())
        # 'a' is optimal on rows 0, 2 (near-tie), 3 -> 3/4
        assert ev.optimal_rate == pytest.approx(0.75)

    def test_ratio_tail_counts(self, crafted_data):
        ev = evaluate_fixed(crafted_data, "b")
        # row 0: 5x ratio; row 3: 3x ratio; rows 1-2 optimal(ish)
        assert ev.ratio_tail[2.0] == pytest.approx(0.5)
        assert ev.ratio_tail[5.0] == pytest.approx(0.0)  # 5.0 not > 5.0

    def test_per_estimator_tables(self, crafted_data):
        ev = evaluate_fixed(crafted_data, "a")
        assert set(ev.per_estimator_l1) == {"a", "b"}
        assert ev.oracle_l1 <= min(ev.per_estimator_l1.values())

    def test_summary_renders(self, crafted_data):
        text = evaluate_fixed(crafted_data, "a").summary()
        assert "avg L1" in text and "oracle" in text


class TestEvaluateSelection:
    def test_trained_selector_evaluation(self, crafted_data):
        selector = EstimatorSelector(["a", "b"],
                                     MARTParams(n_trees=5, max_leaves=2))
        selector.fit(crafted_data.X, crafted_data.errors_l1)
        ev = evaluate_selection(selector, crafted_data)
        assert 0.0 <= ev.optimal_rate <= 1.0
        assert ev.avg_l1 >= ev.oracle_l1 - 1e-12

    def test_estimator_mismatch_rejected(self, crafted_data):
        selector = EstimatorSelector(["x", "y"],
                                     MARTParams(n_trees=2, max_leaves=2))
        selector.fit(crafted_data.X, crafted_data.errors_l1)
        with pytest.raises(ValueError):
            evaluate_selection(selector, crafted_data)

    def test_evaluate_choices_arbitrary_vector(self, crafted_data):
        ev = evaluate_choices("always_b", crafted_data,
                              np.array([1, 1, 1, 1]))
        assert ev.name == "always_b"
        assert ev.avg_l1 == pytest.approx(crafted_data.errors_l1[:, 1].mean())
