"""Tests for the ad-hoc workload fuzzer and its differential oracle.

The fast part *is* the CI fuzz gate: a fixed 25-seed matrix runs through
all six oracle layers on every push (engine output vs. the NumPy
reference, progress invariants, incremental-vs-batch estimation parity,
trace round-trip/replay parity, pooled service parity).  The slow part
widens the matrix, trains per-scenario selectors, and is additionally
sharded across seeds by the dedicated CI fuzz job (``FUZZ_SEED_BASE``).
"""

import multiprocessing
import os

import numpy as np
import pytest

from repro.experiments.harness import ExperimentHarness
from repro.experiments.scale import ScaleProfile
from repro.fuzz import (
    ORACLE_LAYERS,
    OracleContext,
    OracleViolation,
    check_engine_output,
    check_progress_invariants,
    compare_output,
    evaluate_reference,
    generate_fuzz_database,
    generate_fuzz_queries,
    preset,
    repro_command,
    run_fuzz,
    run_scenario,
)
from repro.fuzz.__main__ import main as fuzz_main
from repro.catalog.statistics import build_statistics
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.optimizer.planner import Planner
from repro.trace.store import TraceStore
from repro.workloads.suite import (
    ALL_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    SuiteScale,
    WorkloadSuite,
)

#: the fast CI gate: 25 fixed seeds through all six oracle layers
FAST_SEEDS = range(100, 125)


# ---------------------------------------------------------------------------
# the CI seed matrices
# ---------------------------------------------------------------------------

def test_fast_ci_seed_matrix():
    report = run_fuzz(FAST_SEEDS, preset("ci-fast"))
    assert report.n_scenarios == len(FAST_SEEDS) >= 25
    assert set(report.layer_checks()) == set(ORACLE_LAYERS)
    # every layer on every scenario + spills + all three design levels
    # (the same gate `python -m repro.fuzz --require-hard-regimes` applies
    # when CI runs this matrix as an in-process parallel sweep)
    report.check_hard_regimes()


@pytest.mark.slow
def test_slow_fuzz_seed_matrix():
    """Wider scenarios + per-scenario trained selectors (CI shards this
    across seed blocks via ``FUZZ_SEED_BASE``)."""
    base = int(os.environ.get("FUZZ_SEED_BASE", "2000"))
    report = run_fuzz(range(base, base + 12), preset("ci-slow"))
    assert report.n_scenarios == 12
    # the trained-selector re-checks double up trace/service coverage
    checks = report.layer_checks()
    assert checks["service"] > report.n_scenarios
    assert checks["trace"] > checks["output"]


# ---------------------------------------------------------------------------
# determinism and the repro contract
# ---------------------------------------------------------------------------

def test_scenario_deterministic():
    a = run_scenario(77, preset("ci-fast"))
    b = run_scenario(77, preset("ci-fast"))
    assert a == b
    assert a.preset == "ci-fast"


def test_database_and_queries_deterministic():
    db_a, info_a = generate_fuzz_database(41, rows=300)
    db_b, info_b = generate_fuzz_database(41, rows=300)
    assert sorted(db_a.tables) == sorted(db_b.tables)
    for name, table in db_a.tables.items():
        for col, values in table.data.items():
            assert np.array_equal(values, db_b.table(name).column(col)), col
    qa = generate_fuzz_queries(info_a, 8, seed=42)
    qb = generate_fuzz_queries(info_b, 8, seed=42)
    assert [q.describe() for q in qa] == [q.describe() for q in qb]


def test_generated_queries_plan_and_execute():
    db, info = generate_fuzz_database(13, rows=250)
    queries = generate_fuzz_queries(info, 12, seed=14)
    planner = Planner(db, build_statistics(db))
    shapes = set()
    for query in queries:
        plan = planner.plan(query)
        run = QueryExecutor(db, ExecutorConfig(
            batch_size=128, target_observations=30,
            seed=1)).execute(plan, query.name)
        assert len(run.times) >= 2
        shapes.add((len(query.tables), query.is_aggregate,
                    query.top is not None))
    assert len(shapes) >= 4, "query generator lost its shape diversity"


def test_violation_message_carries_repro_command():
    db, info = generate_fuzz_database(21, rows=200)
    query = generate_fuzz_queries(info, 1, seed=22)[0]
    planner = Planner(db, build_statistics(db))
    run = QueryExecutor(db, ExecutorConfig(
        batch_size=128, target_observations=30, seed=2,
        collect_output=True)).execute(planner.plan(query), query.name)
    ctx = OracleContext(seed=21, repro=repro_command(21, preset("ci-fast")),
                        query=query.name)
    run.K = run.K.copy()
    run.K[-1, 0] += 1.0  # diverge the counters from the recorded bounds
    with pytest.raises(OracleViolation) as exc:
        check_progress_invariants(run, ctx)
    message = str(exc.value)
    assert "python -m repro.fuzz --preset ci-fast --seed 21" in message
    assert "seed=21" in message and "reproduce with" in message


def test_output_oracle_catches_wrong_results():
    db, info = generate_fuzz_database(33, rows=200)
    query = generate_fuzz_queries(info, 1, seed=34)[0]
    planner = Planner(db, build_statistics(db))
    run = QueryExecutor(db, ExecutorConfig(
        batch_size=128, target_observations=30, seed=3,
        collect_output=True)).execute(planner.plan(query), query.name)
    ref = evaluate_reference(db, query)
    assert compare_output(run.output, ref, query) is None
    if ref.expected_rows == 0:  # keep the tampering meaningful
        pytest.skip("scenario produced an empty result")
    tampered = run.output.slice(0, ref.expected_rows - 1)
    assert compare_output(tampered, ref, query) is not None
    run.output = tampered
    run.output_rows -= 1
    ctx = OracleContext(seed=33, repro=repro_command(33, preset("default")))
    with pytest.raises(OracleViolation, match="reproduce with"):
        check_engine_output(run, ref, query, ctx)


def test_cli_runs_and_reports(capsys):
    assert fuzz_main(["--seed", "7", "--scenarios", "2",
                      "--preset", "ci-fast"]) == 0
    out = capsys.readouterr().out
    assert "2 scenarios, 0 violations" in out
    assert out.count("ok ") == 2


def test_preset_lookup():
    assert preset("ci-fast").name == "ci-fast"
    tweaked = preset("ci-fast", rows_hi=300)
    assert tweaked.rows_hi == 300 and tweaked.name == "ci-fast"
    with pytest.raises(KeyError):
        preset("nope")


# ---------------------------------------------------------------------------
# the parallel sweep (--jobs)
# ---------------------------------------------------------------------------

def test_parallel_sweep_matches_serial():
    """A --jobs sweep must report the same scenarios in the same order
    as the serial loop — the fuzz analogue of the harness determinism."""
    seeds = range(300, 306)
    serial_seen, parallel_seen = [], []
    serial = run_fuzz(seeds, preset("ci-fast"), jobs=1,
                      on_scenario=lambda s: serial_seen.append(s.seed))
    parallel = run_fuzz(seeds, preset("ci-fast"), jobs=3,
                        on_scenario=lambda s: parallel_seen.append(s.seed))
    assert serial.scenarios == parallel.scenarios
    assert serial_seen == parallel_seen == list(seeds)
    assert serial.layer_checks() == parallel.layer_checks()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="patched run_scenario reaches workers by fork inheritance")
def test_parallel_sweep_raises_earliest_seed_violation(monkeypatch):
    """A violation surfaces identically from a parallel sweep: same
    exception type, same message (repro command included), and always
    the *earliest* failing seed — later workers may fail too, but the
    sweep reports exactly what the serial loop would."""
    import repro.fuzz.harness as harness_mod

    real_run_scenario = harness_mod.run_scenario

    def sabotaged(seed, config=None):
        if seed >= 402:
            ctx = OracleContext(seed=seed,
                                repro=repro_command(seed, preset("ci-fast")))
            raise OracleViolation("output", ctx, "sabotaged for the test")
        return real_run_scenario(seed, config)

    monkeypatch.setattr(harness_mod, "run_scenario", sabotaged)
    with pytest.raises(OracleViolation, match="seed=402") as serial_exc:
        harness_mod.run_fuzz(range(400, 406), preset("ci-fast"), jobs=1)
    with pytest.raises(OracleViolation, match="seed=402") as parallel_exc:
        harness_mod.run_fuzz(range(400, 406), preset("ci-fast"), jobs=2)
    assert str(serial_exc.value) == str(parallel_exc.value)
    assert serial_exc.value.seed == parallel_exc.value.seed == 402
    assert "reproduce with" in str(parallel_exc.value)


def test_cli_parallel_sweep(capsys):
    assert fuzz_main(["--seed", "210", "--scenarios", "4",
                      "--preset", "ci-fast", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "4 scenarios, 0 violations" in out
    assert out.count("ok ") == 4
    assert "2 worker(s)" in out


def test_cli_defaults_to_preset_seed_matrix(capsys):
    """`python -m repro.fuzz --preset P` with no --seed sweeps the
    preset's own matrix (what the CI gate invokes with --jobs 4)."""
    config = preset("ci-fast")
    assert (config.seed_base, config.seed_count) == (100, 25)
    assert (FAST_SEEDS.start, len(FAST_SEEDS)) == (100, 25), \
        "preset matrix must track FAST_SEEDS"
    # a tiny preset-style sweep through the same code path
    assert fuzz_main(["--preset", "default", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "1 scenarios, 0 violations" in out
    assert "seeds 0..0" in out


def test_check_hard_regimes_catches_soft_matrices():
    """A sweep that quietly loses the hard cases must fail the gate."""
    from repro.fuzz.harness import FuzzReport, ScenarioReport
    from repro.query.logical import JOIN_KINDS

    def scenario(seed, design, spills, checks=None, join_kinds=None):
        return ScenarioReport(
            seed=seed, preset="ci-fast", rows=300, n_queries=2,
            n_pipelines=3, n_reports=10, spill_events=spills, design=design,
            checks=checks or {layer: 1 for layer in ORACLE_LAYERS},
            join_kinds=(join_kinds if join_kinds is not None
                        else {kind: 1 for kind in JOIN_KINDS}))

    good = FuzzReport(scenarios=[scenario(1, "untuned", 2),
                                 scenario(2, "partial", 0),
                                 scenario(3, "full", 1)])
    good.check_hard_regimes()  # spills + designs + layers + kinds: passes

    no_spills = FuzzReport(scenarios=[scenario(1, "untuned", 0),
                                      scenario(2, "partial", 0),
                                      scenario(3, "full", 0)])
    with pytest.raises(AssertionError, match="spill"):
        no_spills.check_hard_regimes()

    one_design = FuzzReport(scenarios=[scenario(1, "full", 2),
                                       scenario(2, "full", 1)])
    with pytest.raises(AssertionError, match="designs"):
        one_design.check_hard_regimes()

    missing_layer = FuzzReport(scenarios=[
        scenario(1, "untuned", 2, {"output": 1}),
        scenario(2, "partial", 1), scenario(3, "full", 1)])
    with pytest.raises(AssertionError, match="every layer"):
        missing_layer.check_hard_regimes()

    # a generator regression that stops drawing some join kind must fail
    inner_only = {"inner": 4, "left": 0, "semi": 0, "anti": 0}
    no_kinds = FuzzReport(scenarios=[
        scenario(1, "untuned", 2, join_kinds=inner_only),
        scenario(2, "partial", 1, join_kinds=inner_only),
        scenario(3, "full", 1, join_kinds=inner_only)])
    with pytest.raises(AssertionError, match="join kind"):
        no_kinds.check_hard_regimes()


def test_scenario_reports_join_kind_histogram():
    """Every scenario reports its drawn join kinds, and the aggregate
    histogram surfaces in the batch description."""
    from repro.query.logical import JOIN_KINDS

    report = run_fuzz(range(100, 104), preset("ci-fast"), jobs=1)
    for s in report.scenarios:
        assert set(s.join_kinds) == set(JOIN_KINDS)
        assert "joins=[" in s.describe()
    totals = report.kind_totals()
    assert sum(totals.values()) > 0
    assert "join kinds" in report.describe()


def test_cli_require_hard_regimes(capsys):
    """The CLI gate mirrors FuzzReport.check_hard_regimes exactly (seeds
    are deterministic, so the library verdict predicts the exit code)."""
    seeds, config = range(210, 216), preset("ci-fast")
    expected = 0
    try:
        run_fuzz(seeds, config).check_hard_regimes()
    except AssertionError:
        expected = 1
    returncode = fuzz_main(["--seed", str(seeds.start),
                            "--scenarios", str(len(seeds)), "--jobs", "2",
                            "--preset", "ci-fast", "--require-hard-regimes"])
    assert returncode == expected
    if expected:
        assert "matrix went soft" in capsys.readouterr().err


def test_violation_payload_round_trip():
    ctx = OracleContext(seed=9, repro=repro_command(9, preset("ci-fast")),
                        query="q")
    original = OracleViolation("invariants", ctx, "k exceeded its bound")
    clone = OracleViolation.from_payload(original.to_payload())
    assert str(clone) == str(original)
    assert clone.layer == "invariants" and clone.seed == 9
    assert isinstance(clone, OracleViolation)


# ---------------------------------------------------------------------------
# the adhoc_fuzz workload family
# ---------------------------------------------------------------------------

_FUZZ_TEST_SCALE = ScaleProfile(
    name="fuzz-test",
    suite=SuiteScale(
        tpch_rows=1_000, tpcds_rows=1_000, real1_rows=900, real2_rows=900,
        tpch_queries=2, tpcds_queries=2, real1_queries=2, real2_queries=2,
        fuzz_rows=500, fuzz_queries=4, outer_rows=500, outer_queries=4,
    ),
    memory_budget_bytes=float(64 << 10),
    batch_size=256,
    target_observations=40,
    mart_trees=8,
    mart_leaves=4,
    min_pipeline_observations=4,
)


def test_suite_exposes_adhoc_fuzz():
    suite = WorkloadSuite(_FUZZ_TEST_SCALE.suite, seed=0)
    assert "adhoc_fuzz" in suite.all_names
    assert "adhoc_fuzz" not in suite.names  # not a §6.2 fold
    assert suite.all_names == ALL_WORKLOAD_NAMES
    assert suite.names == WORKLOAD_NAMES
    bundle = suite.bundle("adhoc_fuzz")
    assert bundle.db.name == "adhoc_fuzz"
    assert len(bundle.queries) == 4
    assert bundle.db.table("t0").n_rows == 500
    for query in bundle.queries:  # plannable with the bundle's own planner
        bundle.planner.plan(query)
    with pytest.raises(KeyError, match="adhoc_fuzz"):
        suite.bundle("not_a_workload")


def test_suite_exposes_outer_semi():
    """The non-inner-heavy family builds, plans, and actually leans on
    LEFT OUTER / SEMI / ANTI joins (that is its reason to exist)."""
    suite = WorkloadSuite(_FUZZ_TEST_SCALE.suite, seed=0)
    assert "outer_semi" in suite.all_names
    assert "outer_semi" not in suite.names  # not a §6.2 fold
    assert suite.query_count("outer_semi") == 4
    bundle = suite.bundle("outer_semi")
    assert bundle.db.name == "outer_semi"
    assert len(bundle.queries) == 4
    kinds = [edge.kind for query in bundle.queries for edge in query.joins]
    assert any(k != "inner" for k in kinds), kinds
    for query in bundle.queries:
        bundle.planner.plan(query)


def test_adhoc_fuzz_warm_starts_from_trace_store(tmp_path):
    store = TraceStore(tmp_path)
    cold = ExperimentHarness(_FUZZ_TEST_SCALE, seed=3, trace_store=store)
    runs = cold.runs("adhoc_fuzz")
    key = cold.trace_key("adhoc_fuzz")
    assert store.exists(key)
    warm = ExperimentHarness(_FUZZ_TEST_SCALE, seed=3, trace_store=store)
    replayed = warm.runs("adhoc_fuzz")
    assert len(replayed) == len(runs) == 4
    for a, b in zip(runs, replayed):
        assert a.query_name == b.query_name
        for member in ("times", "K", "R", "W", "LB", "UB", "N", "D"):
            assert np.array_equal(getattr(a, member), getattr(b, member))
    # and the training path consumes the fuzz bundle like any static family
    data = warm.training_data("adhoc_fuzz", "dynamic")
    assert data.n_examples > 0
    assert data.X.shape[0] == data.n_examples
