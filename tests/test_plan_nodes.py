"""Unit tests for plan nodes and traversal."""

import pytest

from repro.plan.nodes import Op, PlanNode


def small_plan():
    scan1 = PlanNode(Op.INDEX_SCAN, table="orders")
    scan2 = PlanNode(Op.INDEX_SCAN, table="lineitem")
    filt = PlanNode(Op.FILTER, [scan2], predicates=[])
    join = PlanNode(Op.HASH_JOIN, [scan1, filt], probe_key="a", build_key="b")
    agg = PlanNode(Op.HASH_AGG, [join], group_cols=["g"], aggs=[])
    return agg, (scan1, scan2, filt, join)


class TestPlanNode:
    def test_finalize_assigns_preorder_ids(self):
        root, (scan1, scan2, filt, join) = small_plan()
        root.finalize()
        assert root.node_id == 0
        assert join.node_id == 1
        assert scan1.node_id == 2
        assert filt.node_id == 3
        assert scan2.node_id == 4

    def test_walk_counts_nodes(self):
        root, _ = small_plan()
        assert root.n_nodes == 5

    def test_descendants_excludes_self(self):
        root, _ = small_plan()
        ids = [n.op for n in root.descendants()]
        assert Op.HASH_AGG not in ids
        assert len(ids) == 4

    def test_find_all(self):
        root, _ = small_plan()
        assert len(root.find_all(Op.INDEX_SCAN)) == 2
        assert len(root.find_all(Op.SORT)) == 0

    def test_outer_inner_accessors(self):
        root, (scan1, scan2, filt, join) = small_plan()
        assert join.outer is scan1
        assert join.inner is filt

    def test_inner_requires_two_children(self):
        node = PlanNode(Op.FILTER, [PlanNode(Op.INDEX_SCAN, table="t")])
        with pytest.raises(ValueError):
            _ = node.inner

    def test_outer_requires_children(self):
        with pytest.raises(ValueError):
            _ = PlanNode(Op.INDEX_SCAN, table="t").outer

    def test_table_accessor(self):
        root, (scan1, *_rest) = small_plan()
        assert scan1.table == "orders"
        assert root.table is None

    def test_pretty_contains_ops_and_ids(self):
        root, _ = small_plan()
        root.finalize()
        text = root.pretty()
        assert "hash_agg" in text
        assert "orders" in text
        assert "[id=0" in text

    def test_repr(self):
        root, _ = small_plan()
        root.finalize()
        assert "hash_agg" in repr(root)
