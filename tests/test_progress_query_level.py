"""Tests for query-level progress combination (eq. 5) and TGNREF."""

import numpy as np
import pytest

from repro.progress.dne import DNEEstimator
from repro.progress.gold import GetNextOracle
from repro.progress.query_level import (
    pipeline_weights,
    query_level_error,
    query_progress,
    uniform_assignment,
)
from repro.progress.refined_tgn import RefinedTGNEstimator
from repro.progress.registry import estimator_by_name, extension_estimators

from helpers import truncate_run


class TestPipelineWeights:
    def test_weights_sum_to_one(self, join_run):
        weights = pipeline_weights(join_run)
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())

    def test_every_pipeline_weighted(self, join_run):
        weights = pipeline_weights(join_run)
        assert set(weights) == {p.pid for p in join_run.pipelines}


class TestQueryProgress:
    def test_bounds_and_endpoints(self, join_run):
        assignment = uniform_assignment(join_run, DNEEstimator())
        progress = query_progress(join_run, assignment)
        assert progress.shape == join_run.times.shape
        assert ((0 <= progress) & (progress <= 1)).all()
        assert progress[0] <= 0.05
        assert progress[-1] >= 0.95

    def test_roughly_monotone(self, join_run):
        assignment = uniform_assignment(join_run, DNEEstimator())
        progress = query_progress(join_run, assignment)
        # small dips can happen at pipeline handoffs; no large regressions
        assert (np.diff(progress) > -0.1).all()

    def test_oracle_assignment_tracks_truth(self, join_run):
        assignment = uniform_assignment(join_run, GetNextOracle())
        error = query_level_error(join_run, assignment)
        assert error < 0.25

    def test_missing_assignment_falls_back(self, join_run):
        progress = query_progress(join_run, {})
        assert progress[-1] >= 0.95

    def test_error_norms(self, join_run):
        assignment = uniform_assignment(join_run, DNEEstimator())
        l1 = query_level_error(join_run, assignment, norm=1)
        l2 = query_level_error(join_run, assignment, norm=2)
        assert 0 <= l1 <= l2 + 1e-12
        with pytest.raises(ValueError):
            query_level_error(join_run, assignment, norm=3)

    def test_mixed_assignment_differs_from_uniform(self, join_run):
        """Different per-pipeline estimators change the trajectory."""
        dne = uniform_assignment(join_run, DNEEstimator())
        mixed = dict(dne)
        scored = [p.pid for p in join_run.pipelines
                  if join_run.pipeline_run(p.pid, 3) is not None]
        if len(scored) >= 1:
            mixed[scored[-1]] = estimator_by_name("tgn")
        a = query_progress(join_run, dne)
        b = query_progress(join_run, mixed)
        assert a.shape == b.shape


class TestRefinedTGN:
    def test_registered_as_extension(self):
        assert any(e.name == "tgn_ref" for e in extension_estimators())
        assert estimator_by_name("tgn_ref").name == "tgn_ref"

    def test_bounded_and_causal(self, pipeline_runs):
        est = RefinedTGNEstimator()
        for pr in pipeline_runs:
            values = est.estimate(pr)
            assert ((0 <= values) & (values <= 1)).all()
        pr = pipeline_runs[0]
        cut = pr.n_observations // 2
        assert np.allclose(est.estimate(truncate_run(pr, cut)),
                           est.estimate(pr)[:cut + 1])

    def test_converges_to_completion(self, pipeline_runs):
        est = RefinedTGNEstimator()
        for pr in pipeline_runs:
            assert est.estimate(pr)[-1] >= 0.95
