"""Unit tests for histograms and statistics building."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import EquiDepthHistogram, build_statistics
from repro.datagen.tpch import generate_tpch


class TestEquiDepthHistogram:
    def test_empty_column(self):
        hist = EquiDepthHistogram(np.array([]))
        assert hist.n_rows == 0
        assert hist.selectivity_range(0, 10) == 0.0
        assert hist.selectivity_eq(5) == 0.0

    def test_full_range_selectivity_is_one(self):
        hist = EquiDepthHistogram(np.arange(1000))
        assert hist.selectivity_range(0, 999) == pytest.approx(1.0, abs=1e-6)

    def test_half_range_uniform(self):
        hist = EquiDepthHistogram(np.arange(1000), n_buckets=32)
        assert hist.selectivity_range(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_out_of_domain_range(self):
        hist = EquiDepthHistogram(np.arange(100))
        assert hist.selectivity_range(1000, 2000) == 0.0

    def test_reversed_range(self):
        hist = EquiDepthHistogram(np.arange(100))
        assert hist.selectivity_range(50, 10) == 0.0

    def test_eq_selectivity_uniform_ndv(self):
        hist = EquiDepthHistogram(np.repeat(np.arange(10), 10))
        assert hist.selectivity_eq(3) == pytest.approx(0.1)

    def test_eq_selectivity_out_of_domain(self):
        hist = EquiDepthHistogram(np.arange(10))
        assert hist.selectivity_eq(-5) == 0.0
        assert hist.selectivity_eq(100) == 0.0

    def test_distinct_count(self):
        hist = EquiDepthHistogram(np.array([1, 1, 2, 2, 3]))
        assert hist.n_distinct == 3

    def test_min_max(self):
        hist = EquiDepthHistogram(np.array([5.0, -2.0, 9.0]))
        assert hist.min_value == -2.0
        assert hist.max_value == 9.0

    def test_single_value_column(self):
        hist = EquiDepthHistogram(np.full(50, 7))
        assert hist.selectivity_range(7, 7) == pytest.approx(1.0)
        assert hist.selectivity_eq(7) == pytest.approx(1.0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200),
           st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=60)
    def test_range_selectivity_bounded(self, values, a, b):
        low, high = min(a, b), max(a, b)
        hist = EquiDepthHistogram(np.asarray(values), n_buckets=8)
        sel = hist.selectivity_range(low, high)
        assert 0.0 <= sel <= 1.0

    @given(st.lists(st.integers(0, 30), min_size=5, max_size=100))
    @settings(max_examples=60)
    def test_wider_range_never_less_selective(self, values):
        hist = EquiDepthHistogram(np.asarray(values), n_buckets=8)
        narrow = hist.selectivity_range(10, 20)
        wide = hist.selectivity_range(5, 25)
        assert wide >= narrow - 1e-9


class TestBuildStatistics:
    def test_covers_all_tables_and_columns(self):
        db = generate_tpch(lineitem_rows=500, seed=3)
        stats = build_statistics(db, n_buckets=8)
        for name, table in db.tables.items():
            tstats = stats.table(name)
            assert tstats.n_rows == table.n_rows
            for column in table.data:
                assert tstats.column(column).n_distinct >= 1

    def test_missing_lookups_raise(self):
        db = generate_tpch(lineitem_rows=500, seed=3)
        stats = build_statistics(db, n_buckets=8)
        with pytest.raises(KeyError):
            stats.table("ghost")
        with pytest.raises(KeyError):
            stats.table("orders").column("ghost")
