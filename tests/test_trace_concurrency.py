"""Concurrent TraceStore access: rename-race safety and single-flight.

Two properties keep a shared ``REPRO_TRACE_DIR`` safe under parallel
orchestration (``run_all --jobs``, fleets of benchmark processes):

* ``save``/``load``/``exists`` on the same key never corrupt each other
  — writers stage + rename, so readers only ever see complete traces;
* a *contended cold start* is single-flight: of N processes asking
  ``load_or_compute`` for the same missing key, exactly one executes the
  compute callable; the rest wait and replay its recording.

The workers run under the ``fork`` start method so engine objects and
closures cross into children by inheritance, not pickling (the
production runtime never ships engine objects either — it uses the trace
transport).
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.trace.store import TraceStore
from test_trace_store import assert_runs_identical

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="inheritance-based workers need the fork start method")

_CTX = (multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods() else None)


def _run_workers(target, args_per_worker):
    procs = [_CTX.Process(target=target, args=args) for args in args_per_worker]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0, f"worker died with exit code {p.exitcode}"


def _singleflight_worker(root, key, runs, log_path, out_path, barrier):
    store = TraceStore(root)

    def compute():
        # O_APPEND single write: atomic on POSIX, one line per execution
        with open(log_path, "a") as log:
            log.write(f"{os.getpid()}\n")
        time.sleep(0.1)  # hold the claim long enough for real contention
        return runs

    barrier.wait()
    got, source = store.load_or_compute(key, compute, timeout=30.0)
    Path(out_path).write_text(json.dumps(
        {"source": source, "n_runs": len(got),
         "names": [r.query_name for r in got]}))


@fork_only
class TestSingleFlight:
    def test_contended_cold_start_executes_exactly_once(
            self, join_run, scan_run, tmp_path):
        n_workers = 4
        log_path = tmp_path / "executions.log"
        barrier = _CTX.Barrier(n_workers)
        outs = [tmp_path / f"out{i}.json" for i in range(n_workers)]
        _run_workers(_singleflight_worker, [
            (str(tmp_path / "store"), "contended", [join_run, scan_run],
             str(log_path), str(out), barrier)
            for out in outs])

        executions = log_path.read_text().splitlines()
        assert len(executions) == 1, \
            f"cold start ran {len(executions)} times, want exactly 1"
        reports = [json.loads(out.read_text()) for out in outs]
        assert sorted(r["source"] for r in reports) == \
            ["computed"] + ["hit"] * (n_workers - 1)
        for report in reports:
            assert report["n_runs"] == 2
            assert report["names"] == [join_run.query_name,
                                       scan_run.query_name]
        # the winner recorded; no claim survives
        store = TraceStore(tmp_path / "store")
        assert store.exists("contended")
        assert store.claims() == []

    def test_stale_claim_is_stolen(self, join_run, tmp_path):
        store = TraceStore(tmp_path)
        store.root.mkdir(exist_ok=True)
        claim = store.claim_path("k")
        claim.write_text("{}")
        os.utime(claim, (time.time() - 7200, time.time() - 7200))
        runs, source = store.load_or_compute(
            "k", lambda: [join_run], stale_after=600.0)
        assert source == "computed"
        assert_runs_identical(join_run, runs[0])
        assert store.claims() == []

    def test_fresh_claim_makes_waiters_time_out(self, tmp_path):
        store = TraceStore(tmp_path)
        store.root.mkdir(exist_ok=True)
        store.claim_path("k").write_text("{}")
        with pytest.raises(TimeoutError, match="waiting for another"):
            store.load_or_compute("k", lambda: pytest.fail("must not run"),
                                  timeout=0.2, poll_interval=0.01)

    def test_failed_compute_releases_claim(self, join_run, tmp_path):
        store = TraceStore(tmp_path)
        with pytest.raises(RuntimeError, match="engine exploded"):
            store.load_or_compute(
                "k", lambda: (_ for _ in ()).throw(
                    RuntimeError("engine exploded")))
        assert store.claims() == []
        # the key is retryable afterwards
        runs, source = store.load_or_compute("k", lambda: [join_run])
        assert source == "computed"
        assert store.exists("k")

    def test_hit_never_claims(self, join_run, tmp_path):
        store = TraceStore(tmp_path)
        store.save("k", [join_run])
        runs, source = store.load_or_compute(
            "k", lambda: pytest.fail("cache hit must not recompute"))
        assert source == "hit"
        assert_runs_identical(join_run, runs[0])


def _stress_worker(root, key, runs, seconds, error_path):
    """Hammer save/load/exists on one key; record any anomaly."""
    store = TraceStore(root)
    errors = []
    deadline = time.monotonic() + seconds
    i = 0
    while time.monotonic() < deadline:
        try:
            op = i % 3
            if op == 0:
                store.save(key, runs)
            elif op == 1:
                if store.exists(key):
                    got = store.load(key)
                    if [r.query_name for r in got] != \
                            [r.query_name for r in runs]:
                        errors.append(f"iteration {i}: wrong run set")
            else:
                store.exists(key)
            i += 1
        except Exception as exc:  # noqa: BLE001 — the test asserts none occur
            errors.append(f"iteration {i}: {type(exc).__name__}: {exc}")
            break
    Path(error_path).write_text(json.dumps({"iterations": i,
                                            "errors": errors}))


@fork_only
class TestConcurrentStress:
    def test_save_load_exists_hammering_same_key(self, join_run, scan_run,
                                                 tmp_path):
        n_workers = 3
        outs = [tmp_path / f"stress{i}.json" for i in range(n_workers)]
        _run_workers(_stress_worker, [
            (str(tmp_path / "store"), "hot", [join_run, scan_run], 1.0,
             str(out))
            for out in outs])
        reports = [json.loads(out.read_text()) for out in outs]
        for report in reports:
            assert report["errors"] == []
            assert report["iterations"] > 0
        # the surviving trace is complete and bit-exact
        store = TraceStore(tmp_path / "store")
        got = store.load("hot")
        assert_runs_identical(join_run, got[0])
        assert_runs_identical(scan_run, got[1])
        # rename losers' staging dirs were discarded, not leaked
        assert store.staging_dirs() == []
