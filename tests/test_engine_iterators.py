"""Correctness tests for the batch Volcano operators.

Every operator's output is checked against a straightforward NumPy
reference over hand-built tables, executed through the real engine (so
counters, costs and spills are exercised too).
"""

import numpy as np
import pytest

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.plan.nodes import Op, PlanNode
from repro.query.logical import NULL_INT, Aggregate
from repro.query.predicates import FilterSpec


@pytest.fixture(scope="module")
def db(rng_factory):
    """Two small joinable tables with controlled contents."""
    rng = rng_factory(0)
    n_dim, n_fact = 40, 1200
    dim = Table(
        TableSchema("dim", (Column("d_key"), Column("d_group"))),
        {"d_key": np.arange(n_dim), "d_group": rng.integers(0, 5, n_dim)},
        clustered_on="d_key")
    fact_fk = np.sort(rng.integers(0, n_dim, n_fact))
    fact = Table(
        TableSchema("fact", (Column("f_key"), Column("f_dim"),
                             Column("f_value", "float64"))),
        {"f_key": np.arange(n_fact), "f_dim": fact_fk,
         "f_value": rng.uniform(0, 100, n_fact)},
        clustered_on="f_key")
    fact.create_index("f_dim")
    database = Database(schema=DatabaseSchema(name="unit"))
    database.add(dim)
    database.add(fact)
    return database


def execute(db, plan, **config):
    defaults = dict(batch_size=128, collect_output=True,
                    target_observations=30, seed=1)
    defaults.update(config)
    plan.finalize()
    for node in plan.walk():
        if node.est_rows == 0.0:
            node.est_rows = 100.0
    run = QueryExecutor(db, ExecutorConfig(**defaults)).execute(plan)
    return run


def scan(table):
    return PlanNode(Op.INDEX_SCAN, table=table)


class TestScansAndFilters:
    def test_table_scan_returns_all_rows(self, db):
        run = execute(db, scan("fact"))
        assert run.output_rows == 1200
        assert (run.output.column("f_key") == np.arange(1200)).all()

    def test_filter_matches_reference(self, db):
        pred = FilterSpec("fact", "f_value", "<=", 50.0)
        plan = PlanNode(Op.FILTER, [scan("fact")], predicates=[pred])
        run = execute(db, plan)
        expected = (db.table("fact").column("f_value") <= 50.0).sum()
        assert run.output_rows == int(expected)

    def test_index_seek_source_range(self, db):
        plan = PlanNode(Op.INDEX_SEEK, table="fact", column="f_dim",
                        low=5, high=9)
        run = execute(db, plan)
        col = db.table("fact").column("f_dim")
        assert run.output_rows == int(((col >= 5) & (col <= 9)).sum())
        assert ((run.output.column("f_dim") >= 5)
                & (run.output.column("f_dim") <= 9)).all()

    def test_top_terminates_early(self, db):
        plan = PlanNode(Op.TOP, [scan("fact")], k=17)
        run = execute(db, plan)
        assert run.output_rows == 17
        scan_id = plan.children[0].node_id
        assert run.N[scan_id] < 1200  # early termination visible in N

    def test_top_close_propagates_through_filter(self, db):
        # TOP's early close() must walk the whole child chain: the filter
        # *and* the scan below it stop producing once k rows are out.
        pred = FilterSpec("fact", "f_value", "<=", 50.0)
        plan = PlanNode(Op.TOP,
                        [PlanNode(Op.FILTER, [scan("fact")],
                                  predicates=[pred])], k=5)
        run = execute(db, plan)
        assert run.output_rows == 5
        filter_id = plan.children[0].node_id
        scan_id = plan.children[0].children[0].node_id
        assert run.N[filter_id] >= 5
        assert run.N[scan_id] < 1200
        assert (run.output.column("f_value") <= 50.0).all()

    def test_close_is_sticky(self, db):
        # BatchIterator.close marks the subtree exhausted: no further
        # chunks, no further counter movement.
        from repro.engine.executor import ExecContext
        from repro.engine.iterators import build_iterator

        plan = scan("fact").finalize()
        executor = QueryExecutor(db, ExecutorConfig(
            batch_size=128, target_observations=30, seed=1))
        ctx = ExecContext(db, plan, executor.config, executor.cost_model)
        iterator = build_iterator(plan, ctx)
        iterator.open()
        first = iterator.next_chunk()
        assert len(first) == 128
        iterator.close()
        assert iterator.next_chunk() is None
        assert ctx.counters.K[plan.node_id] == 128.0


class TestSorts:
    def test_sort_orders_rows(self, db):
        plan = PlanNode(Op.SORT, [scan("fact")], keys=["f_value"])
        run = execute(db, plan)
        values = run.output.column("f_value")
        assert (np.diff(values) >= 0).all()
        assert run.output_rows == 1200

    def test_sort_spills_with_tiny_budget(self, db):
        plan = PlanNode(Op.SORT, [scan("fact")], keys=["f_value"])
        run = execute(db, plan, memory_budget_bytes=1024.0)
        assert run.spill_events >= 1
        # spilled rows surface as extra GetNext calls at the sort's input
        scan_id = plan.children[0].node_id
        assert run.N[scan_id] > 1200

    def test_batch_sort_preserves_multiset(self, db):
        plan = PlanNode(Op.BATCH_SORT, [scan("fact")], keys=["f_dim"],
                        initial_batch=100, growth=2.0, max_batch=400)
        run = execute(db, plan)
        assert run.output_rows == 1200
        assert sorted(run.output.column("f_key").tolist()) == list(range(1200))

    def test_batch_sort_sorts_within_batches(self, db):
        plan = PlanNode(Op.BATCH_SORT, [scan("fact")], keys=["f_dim"],
                        initial_batch=300, growth=1.0, max_batch=300)
        run = execute(db, plan, batch_size=300)
        first_batch = run.output.column("f_dim")[:300]
        assert (np.diff(first_batch) >= 0).all()


def reference_join(db):
    dim = db.table("dim")
    fact = db.table("fact")
    return int(np.isin(fact.column("f_dim"), dim.column("d_key")).sum())


class TestJoins:
    def test_hash_join_matches_reference(self, db):
        plan = PlanNode(Op.HASH_JOIN, [scan("fact"), scan("dim")],
                        probe_key="f_dim", build_key="d_key")
        run = execute(db, plan)
        assert run.output_rows == reference_join(db)
        joined = run.output
        assert (joined.column("f_dim") == joined.column("d_key")).all()

    def test_hash_join_spill_adds_getnexts(self, db):
        plan = PlanNode(Op.HASH_JOIN, [scan("dim"), scan("fact")],
                        probe_key="d_key", build_key="f_dim")
        run = execute(db, plan, memory_budget_bytes=512.0)
        assert run.spill_events >= 1

    def test_merge_join_matches_reference(self, db):
        # fact clustered on f_key; dim clustered on d_key -> join first 40
        plan = PlanNode(Op.MERGE_JOIN, [scan("fact"), scan("dim")],
                        outer_key="f_key", inner_key="d_key")
        run = execute(db, plan)
        assert run.output_rows == 40  # f_key 0..39 match d_key 0..39

    def test_merge_join_with_duplicates(self, db):
        # fact.f_dim is sorted? no - use dim as outer and seek-sorted side
        plan = PlanNode(Op.MERGE_JOIN, [scan("dim"),
                                        PlanNode(Op.SORT, [scan("fact")],
                                                 keys=["f_dim"])],
                        outer_key="d_key", inner_key="f_dim")
        run = execute(db, plan)
        assert run.output_rows == reference_join(db)

    def test_nlj_with_seek_matches_reference(self, db):
        seek = PlanNode(Op.INDEX_SEEK, table="fact", column="f_dim")
        plan = PlanNode(Op.NESTED_LOOP_JOIN, [scan("dim"), seek],
                        outer_key="d_key")
        run = execute(db, plan)
        assert run.output_rows == reference_join(db)

    def test_nlj_with_inner_filter(self, db):
        seek = PlanNode(Op.INDEX_SEEK, table="fact", column="f_dim")
        filt = PlanNode(Op.FILTER, [seek],
                        predicates=[FilterSpec("fact", "f_value", "<=", 25.0)])
        plan = PlanNode(Op.NESTED_LOOP_JOIN, [scan("dim"), filt],
                        outer_key="d_key")
        run = execute(db, plan)
        fact = db.table("fact")
        expected = int((fact.column("f_value") <= 25.0).sum())
        assert run.output_rows == expected


def _half_dim_filter():
    """Build side restricted to d_key < 20 so probe rows can miss."""
    return PlanNode(Op.FILTER, [scan("dim")],
                    predicates=[FilterSpec("dim", "d_key", "<", 20)])


class TestJoinKinds:
    """LEFT OUTER / SEMI / ANTI semantics on the hash- and merge-join
    paths, each against a direct NumPy reference over the base tables."""

    def _matched(self, db, cutoff=20):
        fact = db.table("fact")
        keys = db.table("dim").column("d_key")
        return np.isin(fact.column("f_dim"), keys[keys < cutoff])

    def test_hash_left_outer_pads_unmatched_probe_rows(self, db):
        plan = PlanNode(Op.HASH_JOIN, [scan("fact"), _half_dim_filter()],
                        probe_key="f_dim", build_key="d_key",
                        join_kind="left")
        run = execute(db, plan)
        matched = self._matched(db)
        assert run.output_rows == 1200  # every probe row survives
        out = run.output
        # probe order is preserved, so rows line up with the base table
        assert (out.column("f_key") == np.arange(1200)).all()
        assert (out.column("d_key")[matched]
                == out.column("f_dim")[matched]).all()
        assert (out.column("d_key")[~matched] == NULL_INT).all()

    def test_hash_semi_keeps_matched_probe_rows_once(self, db):
        plan = PlanNode(Op.HASH_JOIN, [scan("fact"), _half_dim_filter()],
                        probe_key="f_dim", build_key="d_key",
                        join_kind="semi")
        run = execute(db, plan)
        matched = self._matched(db)
        assert run.output_rows == int(matched.sum())
        assert "d_key" not in run.output.columns  # build side stays hidden
        assert (run.output.column("f_dim") < 20).all()

    def test_hash_anti_keeps_unmatched_probe_rows(self, db):
        plan = PlanNode(Op.HASH_JOIN, [scan("fact"), _half_dim_filter()],
                        probe_key="f_dim", build_key="d_key",
                        join_kind="anti")
        run = execute(db, plan)
        matched = self._matched(db)
        assert run.output_rows == int((~matched).sum())
        assert "d_key" not in run.output.columns
        assert (run.output.column("f_dim") >= 20).all()

    def test_semi_plus_anti_partition_the_probe_side(self, db):
        totals = []
        for kind in ("semi", "anti"):
            plan = PlanNode(Op.HASH_JOIN, [scan("fact"), _half_dim_filter()],
                            probe_key="f_dim", build_key="d_key",
                            join_kind=kind)
            totals.append(execute(db, plan).output_rows)
        assert sum(totals) == 1200

    def test_merge_left_outer_pads_unmatched(self, db):
        # f_key 0..39 match d_key 0..39; 40..1199 are padded
        plan = PlanNode(Op.MERGE_JOIN, [scan("fact"), scan("dim")],
                        outer_key="f_key", inner_key="d_key",
                        join_kind="left")
        run = execute(db, plan)
        assert run.output_rows == 1200
        out = run.output
        assert (out.column("d_key")[:40] == np.arange(40)).all()
        assert (out.column("d_key")[40:] == NULL_INT).all()

    @pytest.mark.parametrize("kind,expected",
                             [("inner", 0), ("left", 1200),
                              ("semi", 0), ("anti", 1200)])
    def test_hash_join_empty_build_side(self, db, kind, expected):
        empty = PlanNode(Op.FILTER, [scan("dim")],
                         predicates=[FilterSpec("dim", "d_key", "<", 0)])
        plan = PlanNode(Op.HASH_JOIN, [scan("fact"), empty],
                        probe_key="f_dim", build_key="d_key",
                        join_kind=kind)
        run = execute(db, plan)
        assert run.output_rows == expected
        if kind == "left":
            assert (run.output.column("d_key") == NULL_INT).all()

    @pytest.mark.parametrize("kind,expected", [("inner", 0), ("left", 1200)])
    def test_merge_join_empty_inner_side(self, db, kind, expected):
        empty = PlanNode(Op.FILTER, [scan("dim")],
                         predicates=[FilterSpec("dim", "d_key", "<", 0)])
        plan = PlanNode(Op.MERGE_JOIN, [scan("fact"), empty],
                        outer_key="f_key", inner_key="d_key",
                        join_kind=kind)
        run = execute(db, plan)
        assert run.output_rows == expected
        if kind == "left":
            assert (run.output.column("d_key") == NULL_INT).all()

    @pytest.fixture()
    def dup_db(self):
        """All-duplicate join keys on both sides: a 6x4 cross per key."""
        left = Table(
            TableSchema("lhs", (Column("l_key"), Column("l_id"))),
            {"l_key": np.full(6, 5), "l_id": np.arange(6)},
            clustered_on="l_key")
        right = Table(
            TableSchema("rhs", (Column("r_key"), Column("r_id"))),
            {"r_key": np.full(4, 5), "r_id": np.arange(4)},
            clustered_on="r_key")
        database = Database(schema=DatabaseSchema(name="dup"))
        database.add(left)
        database.add(right)
        return database

    @pytest.mark.parametrize("op", [Op.HASH_JOIN, Op.MERGE_JOIN])
    @pytest.mark.parametrize("kind,expected",
                             [("inner", 24), ("left", 24)])
    def test_all_duplicate_keys_both_sides(self, dup_db, op, kind, expected):
        if op is Op.HASH_JOIN:
            plan = PlanNode(op, [scan("lhs"), scan("rhs")],
                            probe_key="l_key", build_key="r_key",
                            join_kind=kind)
        else:
            plan = PlanNode(op, [scan("lhs"), scan("rhs")],
                            outer_key="l_key", inner_key="r_key",
                            join_kind=kind)
        run = execute(dup_db, plan)
        assert run.output_rows == expected
        # every lhs row pairs with every rhs row exactly once
        pairs = set(zip(run.output.column("l_id").tolist(),
                        run.output.column("r_id").tolist()))
        assert len(pairs) == expected

    @pytest.mark.parametrize("kind,expected", [("semi", 6), ("anti", 0)])
    def test_all_duplicate_keys_semi_anti(self, dup_db, kind, expected):
        plan = PlanNode(Op.HASH_JOIN, [scan("lhs"), scan("rhs")],
                        probe_key="l_key", build_key="r_key",
                        join_kind=kind)
        run = execute(dup_db, plan)
        assert run.output_rows == expected  # no duplication from the 4 matches

    @pytest.mark.parametrize("kind", ["inner", "left"])
    def test_merge_join_close_mid_stream(self, db, kind):
        from repro.engine.executor import ExecContext
        from repro.engine.iterators import build_iterator

        plan = PlanNode(Op.MERGE_JOIN, [scan("fact"), scan("dim")],
                        outer_key="f_key", inner_key="d_key",
                        join_kind=kind).finalize()
        for node in plan.walk():
            if node.est_rows == 0.0:
                node.est_rows = 100.0
        executor = QueryExecutor(db, ExecutorConfig(
            batch_size=16, target_observations=30, seed=1))
        ctx = ExecContext(db, plan, executor.config, executor.cost_model)
        iterator = build_iterator(plan, ctx)
        iterator.open()
        first = iterator.next_chunk()
        assert first is not None and len(first) > 0
        iterator.close()
        assert iterator.next_chunk() is None  # close is sticky mid-stream

    def test_merge_join_rejects_unsupported_kind(self, db):
        plan = PlanNode(Op.MERGE_JOIN, [scan("fact"), scan("dim")],
                        outer_key="f_key", inner_key="d_key",
                        join_kind="semi")
        with pytest.raises(ValueError, match="semi"):
            execute(db, plan)


class TestAggregates:
    def test_hash_agg_matches_reference(self, db):
        plan = PlanNode(Op.HASH_AGG, [scan("fact")], group_cols=["f_dim"],
                        aggs=[Aggregate("sum", "f_value"), Aggregate("count")])
        run = execute(db, plan)
        fact = db.table("fact")
        groups = np.unique(fact.column("f_dim"))
        assert run.output_rows == len(groups)
        out = run.output
        order = np.argsort(out.column("f_dim"))
        for i, g in enumerate(groups):
            mask = fact.column("f_dim") == g
            row = order[i]
            assert out.column("sum_f_value")[row] == pytest.approx(
                fact.column("f_value")[mask].sum())
            assert out.column("count_star")[row] == mask.sum()

    def test_stream_agg_grouped_matches_hash_agg(self, db):
        stream = PlanNode(Op.STREAM_AGG,
                          [PlanNode(Op.SORT, [scan("fact")], keys=["f_dim"])],
                          group_cols=["f_dim"],
                          aggs=[Aggregate("sum", "f_value")])
        hashed = PlanNode(Op.HASH_AGG, [scan("fact")], group_cols=["f_dim"],
                          aggs=[Aggregate("sum", "f_value")])
        run_s = execute(db, stream)
        run_h = execute(db, hashed)
        assert run_s.output_rows == run_h.output_rows
        s = run_s.output
        h = run_h.output
        so, ho = np.argsort(s.column("f_dim")), np.argsort(h.column("f_dim"))
        assert np.allclose(s.column("sum_f_value")[so],
                           h.column("sum_f_value")[ho])

    def test_scalar_stream_agg(self, db):
        plan = PlanNode(Op.STREAM_AGG, [scan("fact")], group_cols=[],
                        aggs=[Aggregate("sum", "f_value"),
                              Aggregate("count"),
                              Aggregate("min", "f_value"),
                              Aggregate("max", "f_value"),
                              Aggregate("avg", "f_value")])
        run = execute(db, plan)
        assert run.output_rows == 1
        values = db.table("fact").column("f_value")
        out = run.output
        assert out.column("sum_f_value")[0] == pytest.approx(values.sum())
        assert out.column("count_star")[0] == len(values)
        assert out.column("min_f_value")[0] == pytest.approx(values.min())
        assert out.column("max_f_value")[0] == pytest.approx(values.max())
        assert out.column("avg_f_value")[0] == pytest.approx(values.mean())

    def test_scalar_agg_on_empty_input_counts_zero(self, db):
        filt = PlanNode(Op.FILTER, [scan("fact")],
                        predicates=[FilterSpec("fact", "f_value", ">", 1e9)])
        plan = PlanNode(Op.STREAM_AGG, [filt], group_cols=[],
                        aggs=[Aggregate("count")])
        run = execute(db, plan)
        assert run.output_rows == 1
        assert run.output.column("count_star")[0] == 0.0
