"""Tests for the MART gradient-boosting ensemble."""

import numpy as np
import pytest

from repro.learning.mart import MARTParams, MARTRegressor


def toy_problem(rng, n=400, f=8):
    X = rng.normal(size=(n, f))
    y = np.sin(X[:, 0]) + 0.5 * (X[:, 1] > 0) + 0.1 * rng.normal(size=n)
    return X, y


class TestMARTParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MARTParams(n_trees=0)
        with pytest.raises(ValueError):
            MARTParams(learning_rate=0.0)
        with pytest.raises(ValueError):
            MARTParams(subsample=1.5)

    def test_paper_defaults(self):
        params = MARTParams()
        assert params.n_trees == 200
        assert params.max_leaves == 30


class TestMARTRegressor:
    def test_predict_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            MARTRegressor().predict(rng.normal(size=(3, 2)))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            MARTRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            MARTRegressor().fit(rng.normal(size=(10, 2)), np.zeros(9))

    def test_beats_mean_baseline(self, rng):
        X, y = toy_problem(rng)
        model = MARTRegressor(MARTParams(n_trees=40, max_leaves=8)).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        baseline = y.std()
        assert rmse < 0.5 * baseline

    def test_training_error_decreases_with_boosting(self, rng):
        X, y = toy_problem(rng)
        model = MARTRegressor(MARTParams(n_trees=60, max_leaves=8)).fit(X, y)
        curve = model.staged_training_error(X, y, every=10)
        rmses = [r for _, r in curve]
        assert rmses[-1] < rmses[0]
        # mostly decreasing
        assert sum(b <= a + 1e-9 for a, b in zip(rmses, rmses[1:])) >= len(rmses) - 2

    def test_deterministic_given_seed(self, rng):
        X, y = toy_problem(rng)
        params = MARTParams(n_trees=15, max_leaves=6, subsample=0.7,
                            random_state=3)
        a = MARTRegressor(params).fit(X, y).predict(X)
        b = MARTRegressor(params).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_subsample_still_learns(self, rng):
        X, y = toy_problem(rng)
        model = MARTRegressor(MARTParams(n_trees=60, max_leaves=8,
                                         subsample=0.5)).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.7 * y.std()

    def test_fit_seconds_recorded(self, rng):
        X, y = toy_problem(rng, n=100)
        model = MARTRegressor(MARTParams(n_trees=5, max_leaves=4)).fit(X, y)
        assert model.fit_seconds_ > 0

    def test_generalizes_to_holdout(self, rng):
        X, y = toy_problem(rng, n=800)
        Xt, yt = toy_problem(rng, n=200)
        model = MARTRegressor(MARTParams(n_trees=80, max_leaves=10)).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(Xt) - yt) ** 2))
        assert rmse < 0.7 * yt.std()

    def test_single_feature(self, rng):
        X = rng.uniform(-2, 2, size=(300, 1))
        y = X[:, 0] ** 2
        model = MARTRegressor(MARTParams(n_trees=50, max_leaves=8)).fit(X, y)
        assert np.mean(np.abs(model.predict(X) - y)) < 0.3
