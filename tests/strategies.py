"""Shared Hypothesis strategies for progress-estimation properties.

Used by ``test_progress_properties.py`` (and available to any other
property suite): randomized monotone counter trajectories over a small
operator zoo, both as directly constructed :class:`PipelineRun` objects
and as trajectories recorded through the real :class:`ObservationLog`
snapshot path.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.engine.counters import UNBOUNDED, CounterStore, ObservationLog
from repro.plan.nodes import Op

from helpers import make_pipeline_run

#: (ops, parents, drivers) plan shapes the pipeline strategy samples from
PIPELINE_SHAPES = (
    ([Op.FILTER, Op.INDEX_SCAN], [-1, 0], [1]),
    ([Op.NESTED_LOOP_JOIN, Op.INDEX_SCAN, Op.INDEX_SEEK],
     [-1, 0, 0], [1]),
    ([Op.HASH_JOIN, Op.BATCH_SORT, Op.INDEX_SCAN], [-1, 0, 1], [2]),
    ([Op.STREAM_AGG, Op.MERGE_JOIN, Op.INDEX_SCAN, Op.INDEX_SCAN],
     [-1, 0, 1, 1], [2, 3]),
)


@st.composite
def random_pipeline(draw):
    """A random monotone :class:`PipelineRun` over a small operator zoo."""
    n_obs = draw(st.integers(3, 25))
    ops, parents, drivers = draw(st.sampled_from(PIPELINE_SHAPES))
    m = len(ops)
    totals = np.array([draw(st.floats(1.0, 1e5)) for _ in range(m)])
    # random monotone trajectories from 0 to the totals
    fractions = np.sort(np.array(
        [[draw(st.floats(0.0, 1.0)) for _ in range(m)]
         for _ in range(n_obs)]), axis=0)
    fractions[0] = 0.0
    fractions[-1] = 1.0
    K = fractions * totals
    e0 = totals * np.array([draw(st.floats(0.1, 10.0)) for _ in range(m)])
    times = np.cumsum(np.array([draw(st.floats(0.01, 10.0))
                                for _ in range(n_obs)]))
    return make_pipeline_run(ops, K, parents=parents, drivers=drivers,
                             E0=e0, times=times)


@st.composite
def random_observation_log(draw):
    """Random monotone trajectories recorded through the real log path.

    Returns ``(log, totals)``; per node and snapshot the upper bound is
    either finite (counter plus random slack — possibly tight) or the
    unbounded sentinel, so bound-interval estimators see both regimes.
    """
    ops = [Op.FILTER, Op.INDEX_SCAN]
    m = len(ops)
    n_obs = draw(st.integers(2, 15))
    store = CounterStore(m)
    log = ObservationLog(m)
    now = 0.0
    totals = np.array([draw(st.floats(1.0, 1e4)) for _ in range(m)])
    for _ in range(n_obs):
        now += draw(st.floats(0.01, 5.0))
        store.K += np.array([draw(st.floats(0.0, 1e3)) for _ in range(m)])
        store.R += np.array([draw(st.floats(0.0, 1e5)) for _ in range(m)])
        slack = np.array([
            draw(st.one_of(st.floats(0.0, 1e4), st.just(UNBOUNDED)))
            for _ in range(m)])
        log.snapshot(now, store, store.K.copy(),
                     np.minimum(store.K + slack, UNBOUNDED))
    return log, totals
