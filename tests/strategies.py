"""Shared Hypothesis strategies for progress-estimation properties.

Used by ``test_progress_properties.py`` (and available to any other
property suite): randomized monotone counter trajectories over a small
operator zoo, both as directly constructed :class:`PipelineRun` objects
and as trajectories recorded through the real :class:`ObservationLog`
snapshot path — plus :func:`executed_join_run`, which runs a randomly
drawn tiny join of a chosen kind (inner / left / semi / anti) through
the *real* engine so per-kind bound soundness can be property-tested.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.engine.counters import UNBOUNDED, CounterStore, ObservationLog
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.plan.nodes import Op, PlanNode

from helpers import make_pipeline_run

#: (ops, parents, drivers) plan shapes the pipeline strategy samples from
PIPELINE_SHAPES = (
    ([Op.FILTER, Op.INDEX_SCAN], [-1, 0], [1]),
    ([Op.NESTED_LOOP_JOIN, Op.INDEX_SCAN, Op.INDEX_SEEK],
     [-1, 0, 0], [1]),
    ([Op.HASH_JOIN, Op.BATCH_SORT, Op.INDEX_SCAN], [-1, 0, 1], [2]),
    ([Op.STREAM_AGG, Op.MERGE_JOIN, Op.INDEX_SCAN, Op.INDEX_SCAN],
     [-1, 0, 1, 1], [2, 3]),
)


@st.composite
def random_pipeline(draw):
    """A random monotone :class:`PipelineRun` over a small operator zoo."""
    n_obs = draw(st.integers(3, 25))
    ops, parents, drivers = draw(st.sampled_from(PIPELINE_SHAPES))
    m = len(ops)
    totals = np.array([draw(st.floats(1.0, 1e5)) for _ in range(m)])
    # random monotone trajectories from 0 to the totals
    fractions = np.sort(np.array(
        [[draw(st.floats(0.0, 1.0)) for _ in range(m)]
         for _ in range(n_obs)]), axis=0)
    fractions[0] = 0.0
    fractions[-1] = 1.0
    K = fractions * totals
    e0 = totals * np.array([draw(st.floats(0.1, 10.0)) for _ in range(m)])
    times = np.cumsum(np.array([draw(st.floats(0.01, 10.0))
                                for _ in range(n_obs)]))
    return make_pipeline_run(ops, K, parents=parents, drivers=drivers,
                             E0=e0, times=times)


@st.composite
def random_observation_log(draw):
    """Random monotone trajectories recorded through the real log path.

    Returns ``(log, totals)``; per node and snapshot the upper bound is
    either finite (counter plus random slack — possibly tight) or the
    unbounded sentinel, so bound-interval estimators see both regimes.
    """
    ops = [Op.FILTER, Op.INDEX_SCAN]
    m = len(ops)
    n_obs = draw(st.integers(2, 15))
    store = CounterStore(m)
    log = ObservationLog(m)
    now = 0.0
    totals = np.array([draw(st.floats(1.0, 1e4)) for _ in range(m)])
    for _ in range(n_obs):
        now += draw(st.floats(0.01, 5.0))
        store.K += np.array([draw(st.floats(0.0, 1e3)) for _ in range(m)])
        store.R += np.array([draw(st.floats(0.0, 1e5)) for _ in range(m)])
        slack = np.array([
            draw(st.one_of(st.floats(0.0, 1e4), st.just(UNBOUNDED)))
            for _ in range(m)])
        log.snapshot(now, store, store.K.copy(),
                     np.minimum(store.K + slack, UNBOUNDED))
    return log, totals


@st.composite
def executed_join_run(draw, kind: str):
    """A real :class:`QueryRun` of a random tiny hash join of ``kind``.

    The probe side's key domain is twice the build side's, so roughly
    half the probe rows miss — exercising the pad path of LEFT OUTER,
    the drop path of SEMI and the keep path of ANTI.  Engine knobs
    (batch size, memory grant, estimates) are drawn too, so spilling and
    estimate-error regimes both occur.
    """
    seed = draw(st.integers(0, 2**16))
    n_dim = draw(st.integers(6, 16))
    n_fact = draw(st.integers(40, 160))
    batch = draw(st.sampled_from([16, 32, 64]))
    budget = float(draw(st.sampled_from([2_048, 8_192, 64 << 10])))
    est = float(draw(st.sampled_from([5, 50, 500])))
    rng = np.random.default_rng(seed)
    dim = Table(
        TableSchema("dim", (Column("d_key"), Column("d_val", "float64"))),
        {"d_key": np.arange(n_dim), "d_val": rng.uniform(0, 1, n_dim)},
        clustered_on="d_key")
    fact = Table(
        TableSchema("fact", (Column("f_key"), Column("f_dim"),
                             Column("f_val", "float64"))),
        {"f_key": np.arange(n_fact),
         "f_dim": np.sort(rng.integers(0, 2 * n_dim, n_fact)),
         "f_val": rng.uniform(0, 100, n_fact)},
        clustered_on="f_key")
    db = Database(schema=DatabaseSchema(name="prop"))
    db.add(dim)
    db.add(fact)
    params = {} if kind == "inner" else {"join_kind": kind}
    plan = PlanNode(Op.HASH_JOIN,
                    [PlanNode(Op.INDEX_SCAN, table="fact"),
                     PlanNode(Op.INDEX_SCAN, table="dim")],
                    probe_key="f_dim", build_key="d_key", **params)
    plan.finalize()
    for node in plan.walk():
        if node.est_rows == 0.0:
            node.est_rows = est
    config = ExecutorConfig(batch_size=batch, memory_budget_bytes=budget,
                            target_observations=25, seed=seed)
    return QueryExecutor(db, config).execute(plan, f"prop_{kind}_{seed}")
