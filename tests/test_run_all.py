"""Tests for the run_all orchestrator: coverage, filters, timing table.

The expensive path (actually dispatching pytest subprocesses) belongs to
the benchmarks; these tests pin the orchestration logic — most
importantly that ORDER covers *every* benchmark file, so a new
``bench_*.py`` cannot silently fall out of full reproductions again
(bench_refinement_study et al. once did).
"""

import json
from pathlib import Path

from repro.experiments.run_all import (
    BENCH_DIR,
    BENCH_SUMMARY,
    ORDER,
    TIMING_SENSITIVE,
    Timings,
    git_sha,
    select_benchmarks,
    write_bench_summary,
)


class TestOrderCoverage:
    def test_order_covers_every_benchmark_file(self):
        on_disk = {p.name for p in Path(BENCH_DIR).glob("bench_*.py")}
        assert on_disk == set(ORDER), (
            "benchmarks/ and run_all.ORDER diverged; add the missing "
            f"file(s) to ORDER: {sorted(on_disk ^ set(ORDER))}")

    def test_order_has_no_duplicates(self):
        assert len(ORDER) == len(set(ORDER))

    def test_previously_omitted_benchmarks_are_back(self):
        for name in ("bench_refinement_study.py",
                     "bench_fuzz_generalization.py",
                     "bench_service_throughput.py",
                     "bench_trace_warmstart.py"):
            assert name in ORDER, name

    def test_timing_sensitive_is_a_subset_of_order(self):
        assert TIMING_SENSITIVE <= set(ORDER)


class TestFilters:
    def test_no_filters_keeps_everything(self):
        assert select_benchmarks(ORDER, [], []) == ORDER

    def test_only_filters_by_substring(self):
        got = select_benchmarks(ORDER, ["table"], [])
        assert got and all("table" in name for name in got)
        assert got == [n for n in ORDER if "table" in n]  # order preserved

    def test_skip_filters_by_substring(self):
        got = select_benchmarks(ORDER, [], ["fuzz"])
        assert got and all("fuzz" not in name for name in got)

    def test_only_and_skip_compose(self):
        got = select_benchmarks(ORDER, ["table"], ["table7"])
        assert "bench_table7_training_times.py" not in got
        assert "bench_table1_operator_mix.py" in got

    def test_multiple_only_patterns_union(self):
        got = select_benchmarks(ORDER, ["fig1", "fig4"], [])
        assert got == ["bench_fig1_error_ratios.py", "bench_fig4_adhoc.py"]


class TestTimings:
    def test_slowest_table_ranks_and_caps(self):
        timings = Timings()
        for i, name in enumerate(ORDER[:8]):
            timings.record(name, float(i))
        table = timings.slowest_table(top=5)
        assert "Slowest 5 benchmarks" in table
        assert ORDER[7] in table   # slowest is present
        assert ORDER[0] not in table  # fastest fell off the table
        assert "7.0" in table

    def test_fewer_benchmarks_than_top(self):
        timings = Timings()
        timings.record("bench_x.py", 2.0)
        table = timings.slowest_table(top=5)
        assert "Slowest 1 benchmarks" in table
        assert "100%" in table


class TestBenchSummary:
    """The machine-readable perf artifact (BENCH_summary.json)."""

    def test_summary_name_is_stable(self):
        # CI's upload-artifact steps reference this exact file name
        assert BENCH_SUMMARY == "BENCH_summary.json"

    def test_writes_wall_clock_and_provenance(self, tmp_path):
        timings = Timings()
        timings.record("bench_b.py", 2.5004)
        timings.record("bench_a.py", 0.75)
        out = tmp_path / BENCH_SUMMARY
        write_bench_summary(out, timings, jobs=4, scale="small",
                            failures=["bench_b.py"],
                            phase_seconds={"warm start": 1.25})
        summary = json.loads(out.read_text())
        assert summary["schema"] == 1
        # the exact field set ci/phases.sh::phase_summary_json emits too —
        # schema-1 artifacts must be interchangeable between CI and local
        assert set(summary) == {"schema", "generated_at", "job", "git_sha",
                                "python_version", "jobs", "scale",
                                "benchmarks", "phases", "failures"}
        assert summary["benchmarks"] == {"bench_a.py": 0.75,
                                         "bench_b.py": 2.5}
        assert summary["phases"] == {"warm start": 1.25}
        assert summary["failures"] == ["bench_b.py"]
        assert summary["jobs"] == 4 and summary["scale"] == "small"
        assert summary["python_version"].count(".") == 2
        assert "generated_at" in summary

    def test_git_sha_resolves_in_this_checkout(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40
                               and all(c in "0123456789abcdef" for c in sha))

    def test_main_writes_summary_even_when_nothing_selected(
            self, tmp_path, monkeypatch, capsys):
        import repro.experiments.run_all as run_all_mod

        monkeypatch.setattr(run_all_mod, "BENCH_DIR", tmp_path / "benchmarks")
        (tmp_path / "benchmarks").mkdir()
        assert run_all_mod.main(["--only", "no_such_benchmark"]) == 0
        summary = json.loads((tmp_path / BENCH_SUMMARY).read_text())
        assert summary["benchmarks"] == {}
        assert summary["failures"] == []
        assert BENCH_SUMMARY in capsys.readouterr().out
