"""Tests for the run_all orchestrator: coverage, filters, timing table.

The expensive path (actually dispatching pytest subprocesses) belongs to
the benchmarks; these tests pin the orchestration logic — most
importantly that ORDER covers *every* benchmark file, so a new
``bench_*.py`` cannot silently fall out of full reproductions again
(bench_refinement_study et al. once did).
"""

from pathlib import Path

from repro.experiments.run_all import (
    BENCH_DIR,
    ORDER,
    TIMING_SENSITIVE,
    Timings,
    select_benchmarks,
)


class TestOrderCoverage:
    def test_order_covers_every_benchmark_file(self):
        on_disk = {p.name for p in Path(BENCH_DIR).glob("bench_*.py")}
        assert on_disk == set(ORDER), (
            "benchmarks/ and run_all.ORDER diverged; add the missing "
            f"file(s) to ORDER: {sorted(on_disk ^ set(ORDER))}")

    def test_order_has_no_duplicates(self):
        assert len(ORDER) == len(set(ORDER))

    def test_previously_omitted_benchmarks_are_back(self):
        for name in ("bench_refinement_study.py",
                     "bench_fuzz_generalization.py",
                     "bench_service_throughput.py",
                     "bench_trace_warmstart.py"):
            assert name in ORDER, name

    def test_timing_sensitive_is_a_subset_of_order(self):
        assert TIMING_SENSITIVE <= set(ORDER)


class TestFilters:
    def test_no_filters_keeps_everything(self):
        assert select_benchmarks(ORDER, [], []) == ORDER

    def test_only_filters_by_substring(self):
        got = select_benchmarks(ORDER, ["table"], [])
        assert got and all("table" in name for name in got)
        assert got == [n for n in ORDER if "table" in n]  # order preserved

    def test_skip_filters_by_substring(self):
        got = select_benchmarks(ORDER, [], ["fuzz"])
        assert got and all("fuzz" not in name for name in got)

    def test_only_and_skip_compose(self):
        got = select_benchmarks(ORDER, ["table"], ["table7"])
        assert "bench_table7_training_times.py" not in got
        assert "bench_table1_operator_mix.py" in got

    def test_multiple_only_patterns_union(self):
        got = select_benchmarks(ORDER, ["fig1", "fig4"], [])
        assert got == ["bench_fig1_error_ratios.py", "bench_fig4_adhoc.py"]


class TestTimings:
    def test_slowest_table_ranks_and_caps(self):
        timings = Timings()
        for i, name in enumerate(ORDER[:8]):
            timings.record(name, float(i))
        table = timings.slowest_table(top=5)
        assert "Slowest 5 benchmarks" in table
        assert ORDER[7] in table   # slowest is present
        assert ORDER[0] not in table  # fastest fell off the table
        assert "7.0" in table

    def test_fewer_benchmarks_than_top(self):
        timings = Timings()
        timings.record("bench_x.py", 2.0)
        table = timings.slowest_table(top=5)
        assert "Slowest 1 benchmarks" in table
        assert "100%" in table
