"""Shared fixtures: tiny databases, executed runs and pipelines.

Expensive artifacts (generated databases, executed workloads) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.statistics import build_statistics
from repro.datagen.tpch import generate_tpch
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.optimizer.planner import Planner
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec


@pytest.fixture(scope="session")
def tpch_db():
    """A small skewed TPC-H database (shared, read-only)."""
    return generate_tpch(lineitem_rows=4000, z=1.0, seed=42)


@pytest.fixture(scope="session")
def tpch_stats(tpch_db):
    return build_statistics(tpch_db)


@pytest.fixture(scope="session")
def tpch_planner(tpch_db, tpch_stats):
    return Planner(tpch_db, tpch_stats)


@pytest.fixture(scope="session")
def executor_config():
    return ExecutorConfig(batch_size=256, memory_budget_bytes=float(64 << 10),
                          target_observations=80, seed=5)


@pytest.fixture(scope="session")
def join_query():
    """A 3-way join + aggregation touching most operator kinds."""
    return QuerySpec(
        name="fixture_join",
        tables=["customer", "orders", "lineitem"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("orders", "o_orderdate", "<=", 1500),
                 FilterSpec("lineitem", "l_quantity", ">=", 3.0)],
        group_by=["c_nationkey"],
        aggregates=[Aggregate("sum", "l_extendedprice"), Aggregate("count")],
        order_by=["c_nationkey"],
    )


@pytest.fixture(scope="session")
def join_run(tpch_db, tpch_planner, executor_config, join_query):
    """The executed join query (shared across estimator/feature tests)."""
    plan = tpch_planner.plan(join_query)
    executor = QueryExecutor(tpch_db, executor_config)
    return executor.execute(plan, query_name=join_query.name)


@pytest.fixture(scope="session")
def scan_run(tpch_db, tpch_planner, executor_config):
    """A single-table scan + aggregation query run."""
    query = QuerySpec(
        name="fixture_scan",
        tables=["lineitem"],
        filters=[FilterSpec("lineitem", "l_shipdate", "<=", 2000)],
        group_by=["l_returnflag"],
        aggregates=[Aggregate("sum", "l_quantity"), Aggregate("count")],
        order_by=["l_returnflag"],
    )
    plan = tpch_planner.plan(query)
    return QueryExecutor(tpch_db, executor_config).execute(plan, query.name)


@pytest.fixture(scope="session")
def pipeline_runs(join_run, scan_run):
    """All scorable pipelines of the two fixture queries."""
    runs = join_run.pipeline_runs(min_observations=5) \
        + scan_run.pipeline_runs(min_observations=5)
    assert runs, "fixture queries must yield scorable pipelines"
    return runs


@pytest.fixture(scope="session")
def rng_factory():
    """Deterministic RNG factory (session-scoped, hypothesis-safe).

    Tests that need seeded randomness draw fresh generators from here —
    ``rng_factory()`` or ``rng_factory(seed)`` — instead of constructing
    ad-hoc ``np.random`` state inline, so every stream in the suite is
    explicitly seeded and greppable in one place.
    """
    def make(seed: int = 1234) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make


@pytest.fixture()
def rng(rng_factory):
    return rng_factory()
