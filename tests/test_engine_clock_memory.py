"""Unit tests for the simulated clock, cost model and memory manager."""

import pytest

from repro.engine.clock import CostModel, SimClock
from repro.engine.memory import MemoryManager
from repro.plan.nodes import Op


def quiet_cost(**overrides):
    params = dict(noise_sigma=0.0, load_sigma=0.0, time_scale=1.0)
    params.update(overrides)
    return CostModel(**params)


class TestCostModel:
    def test_cpu_seconds_linear(self):
        cost = quiet_cost()
        assert cost.cpu_seconds(Op.FILTER, 100) == pytest.approx(
            100 * cost.cpu_per_row[Op.FILTER])

    def test_sort_cost_superlinear(self):
        cost = quiet_cost()
        small = cost.sort_cpu_seconds(1000, 1000)
        big = cost.sort_cpu_seconds(1000, 1_000_000)
        assert big > small

    def test_sort_cost_zero_rows(self):
        assert quiet_cost().sort_cpu_seconds(0, 100) == 0.0

    def test_every_op_has_a_cost(self):
        cost = quiet_cost()
        for op in Op:
            assert cost.cpu_per_row[op] > 0


class TestSimClock:
    def test_deterministic_advance_without_noise(self, rng_factory):
        clock = SimClock(quiet_cost(), rng_factory(0))
        assert clock.advance(1.5) == pytest.approx(1.5)
        assert clock.now == pytest.approx(1.5)

    def test_time_scale_multiplies(self, rng_factory):
        clock = SimClock(quiet_cost(time_scale=100.0), rng_factory(0))
        clock.advance(1.0)
        assert clock.now == pytest.approx(100.0)

    def test_zero_advance(self, rng_factory):
        clock = SimClock(quiet_cost(), rng_factory(0))
        assert clock.advance(0.0) == 0.0

    def test_negative_advance_rejected(self, rng_factory):
        clock = SimClock(quiet_cost(), rng_factory(0))
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_noise_is_seeded(self, rng_factory):
        a = SimClock(quiet_cost(noise_sigma=0.2), rng_factory(7))
        b = SimClock(quiet_cost(noise_sigma=0.2), rng_factory(7))
        for _ in range(10):
            assert a.advance(1.0) == b.advance(1.0)

    def test_load_drift_keeps_time_positive(self, rng_factory):
        clock = SimClock(quiet_cost(load_sigma=0.5), rng_factory(3))
        for _ in range(500):
            assert clock.advance(0.01) > 0


class TestMemoryManager:
    def test_fits_in_budget(self):
        mem = MemoryManager(budget_bytes=1000.0)
        decision = mem.request(rows=10, row_width=10.0)
        assert not decision.spilled
        assert decision.granted_bytes == 100.0

    def test_spills_excess(self):
        mem = MemoryManager(budget_bytes=100.0)
        decision = mem.request(rows=30, row_width=10.0)
        assert decision.spilled
        assert decision.spilled_rows == 20
        assert decision.spilled_bytes == pytest.approx(200.0)

    def test_spill_accounting_accumulates(self):
        mem = MemoryManager(budget_bytes=50.0)
        mem.request(rows=10, row_width=10.0)
        mem.request(rows=10, row_width=10.0)
        assert mem.spill_events == 2
        assert mem.total_spilled_bytes == pytest.approx(100.0)

    def test_spilled_rows_capped_at_rows(self):
        mem = MemoryManager(budget_bytes=1.0)
        decision = mem.request(rows=5, row_width=100.0)
        assert decision.spilled_rows == 5

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            MemoryManager(budget_bytes=0.0)
