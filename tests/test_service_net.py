"""Tests for the asyncio network front end (`repro.service.net`).

The load-bearing property is wire parity: a session observed over real
sockets — submitted via HTTP, streamed over WebSocket frames — must be
*byte*-identical to what the in-process sharded supervisor merges for the
same submissions.  These tests replay the committed golden traces (a mix
of fuzz and outer/semi-join recordings), so they run in the fast suite;
the randomized sweep lives in the fuzz oracle's ``network`` layer and the
sustained-load numbers in ``benchmarks/bench_service_net.py``.

No pytest-asyncio: each scenario is a coroutine driven by
``asyncio.run`` so the suite needs nothing beyond the stdlib runner.
"""

import asyncio
import base64
import json

import pytest

from repro.core.monitor import ProgressMonitor
from repro.runtime.transport import (
    reports_from_payload,
    reports_to_payload,
    runs_to_payload,
)
from repro.service import ShardedProgressService
from repro.service.net import (
    ROUTES,
    ProgressClient,
    ProgressServer,
    ServiceError,
)
from repro.service.net import http, websocket as ws
from repro.service.net.__main__ import build_parser
from repro.trace.store import read_trace

from test_trace_golden import GOLDEN_DIR


def _monitor():
    return ProgressMonitor(refresh_every=2)


@pytest.fixture(scope="module")
def golden_runs():
    """Mixed static + fuzz replay sessions (both golden families)."""
    fuzz, _ = read_trace(GOLDEN_DIR / "fuzz")
    outer, _ = read_trace(GOLDEN_DIR / "outer_semi")
    pool = fuzz + outer
    assert len(pool) >= 3
    return [pool[i % len(pool)] for i in range(6)]


@pytest.fixture(scope="module")
def sharded_results(golden_runs):
    """The in-process truth: the same submissions through the sharded
    service the server wraps (identical shard count and slice size)."""
    with ShardedProgressService(_monitor, n_shards=2,
                                slice_steps=4) as service:
        for run in golden_runs:
            service.submit_replay(run)
        return service.run_until_complete(max_ticks=100_000)


def _serve(coro_fn, **server_kwargs):
    """Run one scenario against a fresh server on an ephemeral port."""
    server_kwargs.setdefault("n_shards", 2)
    server_kwargs.setdefault("slice_steps", 4)

    async def scenario():
        async with ProgressServer(_monitor, **server_kwargs) as server:
            async with ProgressClient(*server.address) as client:
                return await coro_fn(server, client)

    return asyncio.run(scenario())


# ---------------------------------------------------------------------------
# wire units: RFC 6455 and minimal HTTP
# ---------------------------------------------------------------------------

class TestWebSocketWire:
    def test_accept_key_matches_rfc_vector(self):
        # the worked example from RFC 6455 §1.3
        assert ws.accept_key("dGhlIHNhbXBsZSBub25jZQ==") \
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65_535, 65_536])
    @pytest.mark.parametrize("mask", [False, True])
    def test_frame_roundtrip(self, size, mask):
        payload = bytes(i % 251 for i in range(size))

        async def roundtrip():
            reader = asyncio.StreamReader()
            reader.feed_data(ws.encode_frame(ws.OP_BINARY, payload,
                                             mask=mask))
            return await ws.read_frame(reader)

        opcode, decoded = asyncio.run(roundtrip())
        assert opcode == ws.OP_BINARY
        assert decoded == payload

    def test_fragmented_and_reserved_frames_rejected(self):
        async def read(raw):
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            return await ws.read_frame(reader)

        no_fin = bytes([0x01, 0x00])  # FIN clear
        with pytest.raises(ws.ProtocolError, match="fragmented"):
            asyncio.run(read(no_fin))
        rsv = bytes([0x80 | 0x40 | ws.OP_BINARY, 0x00])
        with pytest.raises(ws.ProtocolError, match="reserved"):
            asyncio.run(read(rsv))

    def test_close_frame_carries_code_and_reason(self):
        async def read():
            reader = asyncio.StreamReader()
            reader.feed_data(ws.close_frame(1001, "bye"))
            return await ws.read_frame(reader)

        opcode, payload = asyncio.run(read())
        assert opcode == ws.OP_CLOSE
        assert payload == b"\x03\xe9bye"


class TestHttpWire:
    def _parse(self, raw, **kwargs):
        async def parse():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await http.read_request(reader, **kwargs)

        return asyncio.run(parse())

    def test_request_parse(self):
        request = self._parse(
            b"POST /v1/t/sessions?name=q%201 HTTP/1.1\r\n"
            b"Host: x\r\nContent-Type: application/json\r\n"
            b"Content-Length: 2\r\n\r\n{}")
        assert request.method == "POST"
        assert request.path == "/v1/t/sessions"
        assert request.query == {"name": "q 1"}
        assert request.content_type() == "application/json"
        assert request.body == b"{}"
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(http.BadRequest):
            self._parse(b"NONSENSE\r\n\r\n")

    def test_transfer_encoding_rejected(self):
        with pytest.raises(http.BadRequest, match="Transfer-Encoding"):
            self._parse(b"GET / HTTP/1.1\r\n"
                        b"Transfer-Encoding: chunked\r\n\r\n")

    def test_oversized_body_is_413(self):
        with pytest.raises(http.BadRequest) as err:
            self._parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
                        max_body_bytes=10)
        assert err.value.status == 413

    def test_response_roundtrip(self):
        raw = http.response_bytes(
            429, http.error_body(429, "busy"),
            headers={"Retry-After": "1"})

        async def read():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            return await http.read_response(reader)

        status, headers, body = asyncio.run(read())
        assert status == 429
        assert headers["retry-after"] == "1"
        assert json.loads(body)["error"]["status"] == 429


# ---------------------------------------------------------------------------
# end-to-end parity: network bytes vs. in-process sharded serving
# ---------------------------------------------------------------------------

class TestNetworkParity:
    def test_streams_byte_identical_to_sharded(self, golden_runs,
                                               sharded_results):
        """N mixed replay sessions over HTTP/WS: every client-observed
        stream re-encodes to exactly the in-process payload bytes."""

        async def scenario(server, client):
            sids = await client.submit_runs("acme", golden_runs)
            streams = await asyncio.gather(*[
                client.stream("acme", sid) for sid in sids])
            payloads = [await client.reports_payload("acme", sid)
                        for sid in sids]
            return sids, streams, payloads

        sids, streams, payloads = _serve(scenario)
        assert sids == sorted(sharded_results)
        for sid, (frames, done), payload in zip(sids, streams, payloads):
            expected_rows = sharded_results[sid][1]
            expected = reports_to_payload(
                [(sid, report) for report in expected_rows])
            rows = [pair for frame in frames
                    for pair in reports_from_payload(frame)]
            assert reports_to_payload(rows) == expected
            assert payload == expected  # the GET route, same bytes
            assert done["reports"] == len(expected_rows)
            assert done["session"] == sid

    def test_json_submission_form_is_equivalent(self, golden_runs,
                                                sharded_results):
        async def scenario(server, client):
            sids = await client.submit_runs_json("acme", golden_runs)
            # streams complete (and hence buffers fill) before snapshotting
            await asyncio.gather(*[client.stream("acme", sid)
                                   for sid in sids])
            return sids, [await client.reports_payload("acme", sid)
                          for sid in sids]

        sids, payloads = _serve(scenario)
        for sid, payload in zip(sids, payloads):
            assert payload == reports_to_payload(
                [(sid, report) for report in sharded_results[sid][1]])

    def test_stream_resume_from_offset(self, golden_runs, sharded_results):
        async def scenario(server, client):
            sid = (await client.submit_runs("acme", golden_runs[:1]))[0]
            await client.stream("acme", sid)  # run to completion
            rows, done = await client.stream_reports("acme", sid, start=3)
            return sid, rows, done

        sid, rows, done = _serve(scenario)
        expected = sharded_results[sid][1][3:]
        assert [pair[1] for pair in rows] == expected
        assert done["reports"] == len(sharded_results[sid][1])

    def test_processes_mode_parity(self, golden_runs, sharded_results):
        async def scenario(server, client):
            sids = await client.submit_runs("acme", golden_runs)
            return sids, await asyncio.gather(*[
                client.stream_reports("acme", sid) for sid in sids])

        sids, streams = _serve(scenario, processes=True)
        for sid, (rows, _) in zip(sids, streams):
            assert [pair[1] for pair in rows] == sharded_results[sid][1]


# ---------------------------------------------------------------------------
# session lifecycle routes
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_create_list_get_delete(self, golden_runs):
        async def scenario(server, client):
            health = await client.healthz()
            assert health["status"] == "ok"
            sids = await client.submit_runs("acme", golden_runs[:2])
            assert (await client.get_session("acme", sids[0]))["status"] \
                in ("active", "done")
            await asyncio.gather(*[client.stream("acme", sid)
                                   for sid in sids])
            listed = await client.list_sessions("acme")
            assert [s["session"] for s in listed] == sids
            assert all(s["status"] == "done" and s["progress"] == 1.0
                       for s in listed)
            stats = await client.stats("acme")
            assert stats["tenant"]["sessions"] == 2
            assert stats["fleet"]["sessions_completed"] == 2
            assert stats["fleet"]["tick_p99_ms"] >= 0.0
            assert (await client.delete_session("acme", sids[0])) \
                == {"deleted": sids[0]}
            assert len(await client.list_sessions("acme")) == 1
            return sids

        _serve(scenario)

    def test_tenants_are_namespaced(self, golden_runs):
        async def scenario(server, client):
            sid = (await client.submit_runs("alpha", golden_runs[:1]))[0]
            with pytest.raises(ServiceError) as err:
                await client.get_session("beta", sid)
            assert err.value.status == 404
            assert (await client.list_sessions("beta")) == []
            await client.stream("alpha", sid)

        _serve(scenario)

    def test_named_submission(self, golden_runs):
        async def scenario(server, client):
            sid = (await client.submit_runs("acme", golden_runs[:1],
                                            name="nightly-etl"))[0]
            session = await client.get_session("acme", sid)
            assert session["name"] == "nightly-etl"
            await client.stream("acme", sid)

        _serve(scenario)


# ---------------------------------------------------------------------------
# error paths and admission control
# ---------------------------------------------------------------------------

class TestErrorPaths:
    def test_malformed_json_submission_is_400(self):
        async def scenario(server, client):
            status, _, body = await client.request(
                "POST", "/v1/t/sessions", b"{not json",
                content_type=http.JSON_TYPE)
            assert status == 400
            assert "malformed JSON" in json.loads(body)["error"]["detail"]
            # runs_b64 that is not base64 is also a 400, not a 500
            status, _, body = await client.request(
                "POST", "/v1/t/sessions",
                json.dumps({"runs_b64": "@@@"}).encode(),
                content_type=http.JSON_TYPE)
            assert status == 400

        _serve(scenario)

    def test_undecodable_runs_payload_is_400(self):
        async def scenario(server, client):
            status, _, body = await client.request(
                "POST", "/v1/t/sessions", b"\x00" * 32,
                content_type=http.RUNS_TYPE)
            assert status == 400
            assert "undecodable" in json.loads(body)["error"]["detail"]

        _serve(scenario)

    def test_wrong_content_type_is_415(self):
        async def scenario(server, client):
            status, _, _ = await client.request(
                "POST", "/v1/t/sessions", b"x", content_type="text/plain")
            assert status == 415

        _serve(scenario)

    def test_unknown_session_and_route_are_404(self):
        async def scenario(server, client):
            for path in ("/v1/t/sessions/7", "/v1/t/sessions/not-an-id",
                         "/nope", "/v1/bad!tenant/sessions"):
                status, _, _ = await client.request("GET", path)
                assert status in (400, 404), path
            with pytest.raises(ServiceError) as err:
                await client.get_session("t", 7)
            assert err.value.status == 404

        _serve(scenario)

    def test_wrong_method_is_405(self):
        async def scenario(server, client):
            status, _, body = await client.request("PUT", "/v1/t/sessions")
            assert status == 405
            status, _, _ = await client.request("DELETE", "/healthz")
            assert status == 405

        _serve(scenario)

    def test_stream_without_upgrade_is_426(self, golden_runs):
        async def scenario(server, client):
            sid = (await client.submit_runs("t", golden_runs[:1]))[0]
            status, _, _ = await client.request(
                "GET", f"/v1/t/sessions/{sid}/stream")
            assert status == 426
            await client.stream("t", sid)

        _serve(scenario)

    def test_delete_active_session_is_409(self, golden_runs):
        async def scenario(server, client):
            # a server that is never ticked keeps the session active
            sid = (await client.submit_runs("t", golden_runs[:1]))[0]
            with pytest.raises(ServiceError) as err:
                await client.delete_session("t", sid)
            assert err.value.status == 409
            await client.stream("t", sid)  # let it finish before teardown

        _serve(scenario)

    def test_over_budget_submit_is_503_with_retry_after(self, golden_runs):
        async def scenario(server, client):
            with pytest.raises(ServiceError) as err:
                await client.submit_runs("t", golden_runs[:1])
            assert err.value.status == 503
            assert err.value.retry_after == 2.5

        _serve(scenario, memory_budget_bytes=8, retry_after=2.5)

    def test_max_inflight_is_429_with_retry_after(self, golden_runs):
        async def scenario(server, client):
            sid = (await client.submit_runs("t", golden_runs[:1]))[0]
            with pytest.raises(ServiceError) as err:
                await client.submit_runs("t", golden_runs[1:2])
            assert err.value.status == 429
            assert err.value.retry_after == 1.0
            await client.stream("t", sid)
            # admission frees as sessions complete
            await client.submit_runs("t", golden_runs[1:2])

        _serve(scenario, max_inflight=1)

    def test_mid_drain_connect(self, golden_runs):
        """Submissions during drain get 503, but already-admitted sessions
        keep streaming to completion (the drain guarantee)."""

        async def scenario():
            server = ProgressServer(_monitor, n_shards=2, slice_steps=4)
            await server.start()
            client = ProgressClient(*server.address)
            sid = (await client.submit_runs("t", golden_runs[:1]))[0]
            server.begin_drain()
            with pytest.raises(ServiceError) as err:
                await client.submit_runs("t", golden_runs[1:2])
            assert err.value.status == 503
            assert (await client.healthz())["status"] == "draining"
            rows, done = await client.stream_reports("t", sid)
            await client.aclose()
            await server.shutdown()
            return sid, rows, done

        sid, rows, done = asyncio.run(scenario())
        assert rows and done["reports"] == len(rows)


# ---------------------------------------------------------------------------
# surface checks
# ---------------------------------------------------------------------------

class TestSurface:
    def test_routes_table_matches_served_paths(self):
        methods = {method for method, _ in ROUTES}
        assert methods == {"GET", "POST", "DELETE"}
        assert ("GET", "/v1/{tenant}/sessions/{sid}/stream") in ROUTES

    def test_cli_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.port == 8765
        assert args.shards == 1
        assert not args.processes

    def test_submission_payload_is_trace_codec(self, golden_runs):
        # the documented wire contract: POST bodies are runs_to_payload
        # bytes and stream frames decode with reports_from_payload
        payload = runs_to_payload(golden_runs[:1])
        assert base64.b64decode(
            base64.b64encode(payload)) == payload
