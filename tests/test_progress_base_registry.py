"""Tests for estimator base helpers and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.nodes import Op
from repro.progress.base import clip_progress, driver_consumed, safe_divide
from repro.progress.registry import (
    all_estimators,
    estimator_by_name,
    novel_estimators,
    original_estimators,
    worst_case_estimators,
)

from helpers import make_pipeline_run


class TestHelpers:
    def test_clip_progress(self):
        out = clip_progress(np.array([-0.5, 0.3, 1.7]))
        assert out.tolist() == [0.0, 0.3, 1.0]

    def test_safe_divide_by_zero(self):
        out = safe_divide(np.array([1.0, 2.0]), 0.0)
        assert out.tolist() == [0.0, 0.0]

    def test_safe_divide_elementwise(self):
        out = safe_divide(np.array([1.0, 4.0]), np.array([2.0, 0.0]))
        assert out.tolist() == [0.5, 0.0]

    def test_driver_consumed_with_extra_mask(self):
        K = np.array([[0.0, 0.0], [5.0, 10.0]])
        pr = make_pipeline_run([Op.FILTER, Op.INDEX_SCAN], K,
                               parents=[-1, 0], drivers=[1],
                               N=np.array([5.0, 10.0]),
                               table_rows=np.array([np.nan, 10.0]))
        consumed, total = driver_consumed(pr)
        assert total == 10.0
        assert consumed.tolist() == [0.0, 10.0]
        extra = np.array([True, False])
        consumed2, total2 = driver_consumed(pr, extra_mask=extra)
        assert total2 == 15.0
        assert consumed2.tolist() == [0.0, 15.0]

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=20),
           st.one_of(st.just(0.0), st.floats(1e-9, 1e6)))
    @settings(max_examples=40)
    def test_safe_divide_never_nan(self, nums, denom):
        out = safe_divide(np.asarray(nums), denom)
        assert np.isfinite(out).all()


class TestRegistry:
    def test_original_three(self):
        assert [e.name for e in original_estimators()] == ["dne", "tgn", "luo"]

    def test_novel_three(self):
        assert [e.name for e in novel_estimators()] == \
            ["batch_dne", "dne_seek", "tgn_int"]

    def test_worst_case_two(self):
        assert [e.name for e in worst_case_estimators()] == ["pmax", "safe"]

    def test_all_estimators_composition(self):
        assert len(all_estimators()) == 6
        assert len(all_estimators(include_worst_case=True)) == 8

    def test_estimator_by_name(self):
        assert estimator_by_name("tgn_int").name == "tgn_int"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            estimator_by_name("perfect_estimator")

    def test_fresh_instances(self):
        assert all_estimators()[0] is not all_estimators()[0]
