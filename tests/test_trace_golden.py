"""Golden-trace regression suite.

One tiny committed trace per workload family (TPC-H, TPC-DS, skewed
"real" — see ``tests/golden/regenerate.py``).  Replaying them must
reproduce the committed estimator trajectories and TrainingData matrices
*exactly*: these tests pin down the engine's recorded semantics, the trace
codec and every estimator's arithmetic at once.  If one fails after an
intentional change, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.training import collect_training_data, runs_to_pipelines
from repro.features.vector import FeatureExtractor
from repro.progress.registry import all_estimators
from repro.trace import TRACE_FORMAT_VERSION, read_trace

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FAMILIES = ("tpch", "tpcds", "real", "fuzz")

ESTIMATORS = all_estimators(include_worst_case=True)


def _load(family):
    runs, manifest = read_trace(GOLDEN_DIR / family)
    expected = np.load(GOLDEN_DIR / f"expected_{family}.npz")
    pipelines = runs_to_pipelines(
        runs, min_observations=manifest["meta"]["min_observations"])
    return runs, manifest, pipelines, expected


def test_all_families_present():
    for family in FAMILIES:
        assert (GOLDEN_DIR / family / "manifest.json").is_file(), family
        assert (GOLDEN_DIR / f"expected_{family}.npz").is_file(), family


@pytest.mark.parametrize("family", FAMILIES)
class TestGoldenTrace:
    def test_trace_loads_and_is_scorable(self, family):
        runs, manifest, pipelines, expected = _load(family)
        assert manifest["format_version"] == TRACE_FORMAT_VERSION
        assert int(expected["format_version"]) == TRACE_FORMAT_VERSION
        assert len(runs) >= 2
        assert len(pipelines) == int(expected["n_pipelines"]) > 0
        for run in runs:
            assert run.D is not None
            assert len(run.times) >= 10

    def test_estimator_trajectories_match_exactly(self, family):
        _, _, pipelines, expected = _load(family)
        for i, pr in enumerate(pipelines):
            assert np.array_equal(pr.true_progress(),
                                  expected[f"p{i}_true"]), (family, i)
            for est in ESTIMATORS:
                got = est.estimate(pr)
                want = expected[f"p{i}_{est.name}"]
                assert np.array_equal(got, want), (
                    f"{family} pipeline {i}: estimator {est.name!r} "
                    f"diverged from the golden trajectory; if intentional, "
                    f"regenerate via tests/golden/regenerate.py")

    def test_training_data_matches_exactly(self, family):
        _, _, pipelines, expected = _load(family)
        data = collect_training_data(
            pipelines, ESTIMATORS,
            FeatureExtractor("dynamic", estimators=ESTIMATORS))
        assert np.array_equal(data.X, expected["X"]), family
        assert np.array_equal(data.errors_l1, expected["errors_l1"]), family
        assert np.array_equal(data.errors_l2, expected["errors_l2"]), family

    def test_expectations_cover_every_estimator(self, family):
        _, _, pipelines, expected = _load(family)
        names = set(expected.files)
        for i in range(len(pipelines)):
            for est in ESTIMATORS:
                assert f"p{i}_{est.name}" in names, (family, i, est.name)
