"""Golden-trace regression suite.

One tiny committed trace per workload family (TPC-H, TPC-DS, skewed
"real" — see ``tests/golden/regenerate.py``).  Replaying them must
reproduce the committed estimator trajectories and TrainingData matrices
*exactly*: these tests pin down the engine's recorded semantics, the trace
codec and every estimator's arithmetic at once.  If one fails after an
intentional change, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.monitor import ProgressMonitor
from repro.core.training import collect_training_data, runs_to_pipelines
from repro.engine.executor import ExecutorConfig
from repro.features.vector import FeatureExtractor
from repro.fuzz.harness import _monitored_execute
from repro.fuzz.oracle import (
    OracleContext,
    check_incremental_parity,
    check_service_parity,
    check_trace_roundtrip,
)
from repro.progress.registry import all_estimators
from repro.trace import TRACE_FORMAT_VERSION, read_trace
from repro.trace.format import run_to_manifest, run_to_members
from repro.workloads.suite import WorkloadSuite

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
FAMILIES = ("tpch", "tpcds", "real", "fuzz", "outer_semi")

ESTIMATORS = all_estimators(include_worst_case=True)


def _load(family):
    runs, manifest = read_trace(GOLDEN_DIR / family)
    expected = np.load(GOLDEN_DIR / f"expected_{family}.npz")
    pipelines = runs_to_pipelines(
        runs, min_observations=manifest["meta"]["min_observations"])
    return runs, manifest, pipelines, expected


def test_all_families_present():
    for family in FAMILIES:
        assert (GOLDEN_DIR / family / "manifest.json").is_file(), family
        assert (GOLDEN_DIR / f"expected_{family}.npz").is_file(), family


@pytest.mark.parametrize("family", FAMILIES)
class TestGoldenTrace:
    def test_trace_loads_and_is_scorable(self, family):
        runs, manifest, pipelines, expected = _load(family)
        assert manifest["format_version"] == TRACE_FORMAT_VERSION
        assert int(expected["format_version"]) == TRACE_FORMAT_VERSION
        assert len(runs) >= 2
        assert len(pipelines) == int(expected["n_pipelines"]) > 0
        for run in runs:
            assert run.D is not None
            assert len(run.times) >= 10

    def test_estimator_trajectories_match_exactly(self, family):
        _, _, pipelines, expected = _load(family)
        for i, pr in enumerate(pipelines):
            assert np.array_equal(pr.true_progress(),
                                  expected[f"p{i}_true"]), (family, i)
            for est in ESTIMATORS:
                got = est.estimate(pr)
                want = expected[f"p{i}_{est.name}"]
                assert np.array_equal(got, want), (
                    f"{family} pipeline {i}: estimator {est.name!r} "
                    f"diverged from the golden trajectory; if intentional, "
                    f"regenerate via tests/golden/regenerate.py")

    def test_training_data_matches_exactly(self, family):
        _, _, pipelines, expected = _load(family)
        data = collect_training_data(
            pipelines, ESTIMATORS,
            FeatureExtractor("dynamic", estimators=ESTIMATORS))
        assert np.array_equal(data.X, expected["X"]), family
        assert np.array_equal(data.errors_l1, expected["errors_l1"]), family
        assert np.array_equal(data.errors_l2, expected["errors_l2"]), family

    def test_expectations_cover_every_estimator(self, family):
        _, _, pipelines, expected = _load(family)
        names = set(expected.files)
        for i in range(len(pipelines)):
            for est in ESTIMATORS:
                assert f"p{i}_{est.name}" in names, (family, i, est.name)


def test_committed_goldens_are_fresh(tmp_path):
    """Regenerate the cheapest family into a scratch dir and diff it
    against the committed files.

    This is the staleness guard: an engine/estimator change that slipped
    in without ``regenerate.py`` being re-run fails here even when every
    replay-based assertion above still passes (e.g. a change that only
    affects *recording*, not replay).  Byte-equality of ``manifest.json``
    plus array-equality of the trace members and expectations pin the
    whole regeneration pipeline.
    """
    import json

    from golden.regenerate import main as regenerate

    family = "fuzz"  # smallest scale, ~seconds to re-record
    regenerate([family, "--out-dir", str(tmp_path)])

    committed = json.loads(
        (GOLDEN_DIR / family / "manifest.json").read_text())
    fresh = json.loads((tmp_path / family / "manifest.json").read_text())
    assert fresh == committed, (
        f"regenerating the {family!r} golden family no longer reproduces "
        f"the committed manifest; if the change is intentional, run "
        f"PYTHONPATH=src python tests/golden/regenerate.py --all")
    with np.load(GOLDEN_DIR / family / "runs.npz") as want, \
            np.load(tmp_path / family / "runs.npz") as got:
        assert set(got.files) == set(want.files)
        for key in want.files:
            assert np.array_equal(got[key], want[key]), (family, key)
    with np.load(GOLDEN_DIR / f"expected_{family}.npz") as want, \
            np.load(tmp_path / f"expected_{family}.npz") as got:
        assert set(got.files) == set(want.files)
        for key in want.files:
            assert np.array_equal(got[key], want[key]), (family, key)


@pytest.fixture(scope="module")
def outer_semi_live():
    """Re-execute the committed ``outer_semi`` bundle live, monitored.

    Deterministic: the suite scale, seed and executor knobs come straight
    from ``tests/golden/regenerate.py``, so the runs must be bit-identical
    to the committed trace.
    """
    from golden.regenerate import EXECUTOR, SCALE, SEED

    suite = WorkloadSuite(SCALE, seed=SEED)
    bundle = suite.bundle("outer_semi")
    monitor = ProgressMonitor(refresh_every=2)
    runs, streams = [], []
    for i, query in enumerate(bundle.queries):
        config = ExecutorConfig(**EXECUTOR, seed=SEED * 1_000 + i)
        run, reports = _monitored_execute(
            bundle.db, bundle.planner.plan(query), query.name,
            config, monitor)
        runs.append(run)
        streams.append(reports)
    return monitor, runs, streams


class TestOuterSemiAcceptance:
    """The ``outer_semi`` family end to end: the committed golden trace
    must replay bit-identically through all four consumption paths —
    live re-execution, batch (incremental-vs-batch estimator parity),
    trace round-trip/replay, and the pooled progress service."""

    def test_committed_trace_exercises_non_inner_joins(self):
        runs, _ = read_trace(GOLDEN_DIR / "outer_semi")
        kinds = {n.join_kind for run in runs for n in run.nodes}
        assert kinds - {"inner"}, (
            f"outer_semi golden trace only contains join kinds {kinds}; "
            f"it exists to pin non-inner semantics")

    def test_live_execution_matches_committed_trace(self, outer_semi_live):
        _, live_runs, _ = outer_semi_live
        committed, _ = read_trace(GOLDEN_DIR / "outer_semi")
        assert len(live_runs) == len(committed)
        for live, gold in zip(live_runs, committed):
            assert run_to_manifest(live) == run_to_manifest(gold)
            live_m = run_to_members(live)
            gold_m = run_to_members(gold)
            for key in live_m:
                assert np.array_equal(live_m[key], gold_m[key]), (
                    live.query_name, key)

    def test_batch_replay_and_service_parity(self, outer_semi_live):
        monitor, runs, streams = outer_semi_live
        repro = "PYTHONPATH=src python tests/golden/regenerate.py outer_semi"
        for run, reports in zip(runs, streams):
            ctx = OracleContext(seed=17, repro=repro, query=run.query_name)
            check_incremental_parity(run, reports, monitor, ctx)
            check_trace_roundtrip(run, reports, monitor, ctx)
        check_service_parity(runs, streams, monitor,
                             OracleContext(seed=17, repro=repro),
                             slice_steps=3, max_live=2)
