"""Tests for the parallel execution runtime (`repro.runtime`).

The load-bearing claim is determinism: partition → execute → merge-in-
order must be *bit-identical* to the serial loop it replaces, whatever
the worker count or scheduling.  The transport tests pin the no-pickle
contract (engine results cross process boundaries through the trace
codec), and the harness tests lock the end-to-end guarantee:
``ExperimentHarness.runs()`` with ``jobs > 1`` equals serial execution
exactly — runs, TrainingData matrices and recorded traces alike.
"""

import numpy as np
import pytest

from repro.core.monitor import ProgressReport
from repro.engine.run import QueryRun
from repro.experiments.harness import NO_TRACE_STORE, ExperimentHarness
from repro.runtime import (
    available_cpus,
    partition_indices,
    reports_from_payload,
    reports_to_payload,
    resolve_jobs,
    run_tasks,
    runs_from_payload,
    runs_to_payload,
)
from repro.runtime import pool as pool_mod
from repro.trace.store import TraceStore
from test_trace_store import UNIT_SCALE, assert_runs_identical


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------

class TestPartition:
    @pytest.mark.parametrize("n,parts", [(0, 1), (1, 1), (5, 2), (7, 3),
                                         (8, 4), (64, 5), (3, 8)])
    def test_concatenation_reproduces_range(self, n, parts):
        slices = partition_indices(n, parts)
        assert [i for part in slices for i in part] == list(range(n))

    def test_balanced_and_contiguous(self):
        slices = partition_indices(10, 3)
        assert slices == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]
        sizes = [len(s) for s in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items_degrades_to_singletons(self):
        assert partition_indices(2, 8) == [[0], [1]]
        assert partition_indices(0, 4) == []

    def test_deterministic(self):
        assert partition_indices(17, 4) == partition_indices(17, 4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="negative"):
            partition_indices(-1, 2)
        with pytest.raises(ValueError, match="at least one part"):
            partition_indices(5, 0)


# ---------------------------------------------------------------------------
# CPU accounting
# ---------------------------------------------------------------------------

class TestAvailableCpus:
    def test_respects_scheduler_affinity(self, monkeypatch):
        """A cgroup/taskset-restricted process must size pools and shard
        fleets by its affinity mask, not the machine's core count."""
        monkeypatch.setattr(pool_mod.os, "sched_getaffinity",
                            lambda pid: {0, 2, 5}, raising=False)
        assert available_cpus() == 3

    def test_empty_affinity_clamps_to_one(self, monkeypatch):
        monkeypatch.setattr(pool_mod.os, "sched_getaffinity",
                            lambda pid: set(), raising=False)
        assert available_cpus() == 1

    def test_fallback_without_affinity_support(self, monkeypatch):
        """Platforms without ``sched_getaffinity`` (e.g. macOS) fall back
        to ``os.cpu_count()``; a None cpu_count degrades to 1."""
        monkeypatch.delattr(pool_mod.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 6)
        assert available_cpus() == 6
        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: None)
        assert available_cpus() == 1


# ---------------------------------------------------------------------------
# job resolution
# ---------------------------------------------------------------------------

class TestResolveJobs:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == 7

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == available_cpus()
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == available_cpus()
        assert resolve_jobs(0) == available_cpus()

    def test_invalid_values_raise(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()
        with pytest.raises(ValueError, match=">= 0"):
            resolve_jobs(-2)


# ---------------------------------------------------------------------------
# the order-preserving pool
# ---------------------------------------------------------------------------

def _square(task: int) -> int:
    """Module-level so worker processes can import it."""
    return task * task


def _fail_on_three(task: int) -> int:
    if task == 3:
        raise RuntimeError("task three exploded")
    return task


class TestRunTasks:
    def test_inline_path_preserves_order_and_streams(self):
        seen = []
        results = run_tasks(_square, [3, 1, 2], jobs=1,
                            on_result=lambda i, r: seen.append((i, r)))
        assert results == [9, 1, 4]
        assert seen == [(0, 9), (1, 1), (2, 4)]

    def test_pool_path_preserves_order_and_streams(self):
        seen = []
        results = run_tasks(_square, list(range(10)), jobs=2,
                            on_result=lambda i, r: seen.append((i, r)))
        assert results == [i * i for i in range(10)]
        assert seen == [(i, i * i) for i in range(10)]

    def test_single_task_runs_inline_even_with_jobs(self):
        assert run_tasks(_square, [6], jobs=4) == [36]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="task three exploded"):
            run_tasks(_fail_on_three, [1, 2, 3, 4], jobs=2)
        with pytest.raises(RuntimeError, match="task three exploded"):
            run_tasks(_fail_on_three, [1, 2, 3, 4], jobs=1)

    def test_on_result_exception_aborts(self):
        def abort(index, result):
            if index == 1:
                raise KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_square, [1, 2, 3, 4], jobs=2, on_result=abort)

    def test_empty_task_list(self):
        assert run_tasks(_square, [], jobs=4) == []


# ---------------------------------------------------------------------------
# trace-format transport
# ---------------------------------------------------------------------------

class TestTransport:
    def test_round_trip_bit_identical(self, join_run, scan_run):
        payload = runs_to_payload([join_run, scan_run])
        assert isinstance(payload, bytes)
        clones = runs_from_payload(payload)
        assert len(clones) == 2
        assert_runs_identical(join_run, clones[0])
        assert_runs_identical(scan_run, clones[1])
        for clone in clones:
            assert isinstance(clone, QueryRun)

    def test_empty_payload_round_trips(self):
        assert runs_from_payload(runs_to_payload([])) == []

    def test_truncated_payload_rejected(self, join_run):
        payload = runs_to_payload([join_run])
        with pytest.raises(ValueError, match="missing header length"):
            runs_from_payload(payload[:4])
        with pytest.raises(ValueError, match="missing header"):
            runs_from_payload(payload[:12])

    def test_foreign_format_version_rejected(self, join_run):
        import json
        payload = runs_to_payload([join_run])
        header_len = int.from_bytes(payload[:8], "little")
        header = json.loads(payload[8:8 + header_len].decode())
        header["format_version"] = 999
        tampered = json.dumps(header).encode()
        payload = (len(tampered).to_bytes(8, "little") + tampered
                   + payload[8 + header_len:])
        with pytest.raises(ValueError, match="unsupported trace format"):
            runs_from_payload(payload)


# ---------------------------------------------------------------------------
# report transport (the sharded service's return leg)
# ---------------------------------------------------------------------------

def _sample_reports():
    """Awkward values on purpose: non-round floats (bit-exactness), a
    None estimator, empty and multi-entry per-pipeline dicts."""
    return [
        (7, ProgressReport(time=0.1 + 0.2, progress=1 / 3, active_pid=0,
                           active_estimator="tgn",
                           pipeline_progress={0: 0.25, 2: 2 / 7},
                           pipeline_estimator={0: "tgn", 2: "dne"})),
        (3, ProgressReport(time=1e-9, progress=0.0, active_pid=-1,
                           active_estimator=None)),
        (7, ProgressReport(time=2.5, progress=1.0, active_pid=1,
                           active_estimator="dne",
                           pipeline_progress={1: 1.0},
                           pipeline_estimator={1: "dne"})),
    ]


class TestReportTransport:
    def test_round_trip_bit_identical(self):
        tagged = _sample_reports()
        payload = reports_to_payload(tagged)
        assert isinstance(payload, bytes)
        clones = reports_from_payload(payload)
        assert len(clones) == len(tagged)
        for (sid, report), (c_sid, clone) in zip(tagged, clones):
            assert c_sid == sid
            assert isinstance(clone, ProgressReport)
            # dataclass equality covers every field, dicts included; the
            # floats crossed as binary float64, so == means bit-identical
            assert clone == report

    def test_empty_batch_round_trips(self):
        assert reports_from_payload(reports_to_payload([])) == []

    def test_truncated_payload_rejected(self):
        payload = reports_to_payload(_sample_reports())
        with pytest.raises(ValueError, match="missing header length"):
            reports_from_payload(payload[:4])
        with pytest.raises(ValueError, match="missing header"):
            reports_from_payload(payload[:12])

    def test_foreign_format_version_rejected(self):
        import json
        payload = reports_to_payload(_sample_reports())
        header_len = int.from_bytes(payload[:8], "little")
        header = json.loads(payload[8:8 + header_len].decode())
        header["format_version"] = 999
        tampered = json.dumps(header).encode()
        payload = (len(tampered).to_bytes(8, "little") + tampered
                   + payload[8 + header_len:])
        with pytest.raises(ValueError, match="unsupported trace format"):
            reports_from_payload(payload)


# ---------------------------------------------------------------------------
# the harness fan-out: parallel == serial, bit for bit
# ---------------------------------------------------------------------------

class TestHarnessParallel:
    def test_parallel_runs_bit_identical_to_serial(self):
        serial = ExperimentHarness(UNIT_SCALE, seed=3, jobs=1,
                                   trace_store=NO_TRACE_STORE)
        parallel = ExperimentHarness(UNIT_SCALE, seed=3, jobs=2,
                                     trace_store=NO_TRACE_STORE)
        serial_runs = serial.runs("real1")
        parallel_runs = parallel.runs("real1")
        assert len(serial_runs) == len(parallel_runs)
        for a, b in zip(serial_runs, parallel_runs):
            assert_runs_identical(a, b)

    def test_parallel_training_data_bit_identical(self):
        serial = ExperimentHarness(UNIT_SCALE, seed=3, jobs=1,
                                   trace_store=NO_TRACE_STORE)
        parallel = ExperimentHarness(UNIT_SCALE, seed=3, jobs=3,
                                     trace_store=NO_TRACE_STORE)
        direct = serial.training_data("tpch_untuned", "dynamic")
        fanned = parallel.training_data("tpch_untuned", "dynamic")
        assert np.array_equal(direct.X, fanned.X)
        assert np.array_equal(direct.errors_l1, fanned.errors_l1)
        assert np.array_equal(direct.errors_l2, fanned.errors_l2)
        assert direct.meta == fanned.meta

    def test_parallel_recorded_trace_bit_identical(self, tmp_path):
        """The trace a parallel cold start records replays into exactly
        the runs a serial cold start records (the golden-trace analogue
        for the runtime layer)."""
        serial_store = TraceStore(tmp_path / "serial")
        parallel_store = TraceStore(tmp_path / "parallel")
        ExperimentHarness(UNIT_SCALE, seed=3, trace_store=serial_store,
                          jobs=1).runs("real2")
        ExperimentHarness(UNIT_SCALE, seed=3, trace_store=parallel_store,
                          jobs=2).runs("real2")
        key = ExperimentHarness(UNIT_SCALE, seed=3,
                                trace_store=NO_TRACE_STORE).trace_key("real2")
        for a, b in zip(serial_store.load(key), parallel_store.load(key)):
            assert_runs_identical(a, b)

    def test_repro_jobs_env_activates_fanout(self, monkeypatch):
        """jobs=None defers to REPRO_JOBS at *execution* time, so the env
        must be set while runs() executes (not just at construction)."""
        from repro.experiments import harness as harness_mod
        fanouts = []
        real_run_tasks = harness_mod.run_tasks

        def spying_run_tasks(worker, tasks, jobs=None, **kwargs):
            fanouts.append((len(tasks), jobs))
            return real_run_tasks(worker, tasks, jobs=jobs, **kwargs)

        monkeypatch.setattr(harness_mod, "run_tasks", spying_run_tasks)
        monkeypatch.setenv("REPRO_JOBS", "2")
        from_env = ExperimentHarness(UNIT_SCALE, seed=3,
                                     trace_store=NO_TRACE_STORE)
        env_runs = from_env.runs("real1")
        monkeypatch.delenv("REPRO_JOBS")
        serial = ExperimentHarness(UNIT_SCALE, seed=3,
                                   trace_store=NO_TRACE_STORE)
        serial_runs = serial.runs("real1")
        for a, b in zip(serial_runs, env_runs):
            assert_runs_identical(a, b)
        assert fanouts == [(2, 2)], \
            "REPRO_JOBS=2 must fan out (and jobs=1 must not touch the pool)"

    def test_jobs_capped_by_query_count(self):
        harness = ExperimentHarness(UNIT_SCALE, seed=3, jobs=64,
                                    trace_store=NO_TRACE_STORE)
        runs = harness.runs("real1")  # 2 queries -> at most 2 workers
        assert len(runs) == UNIT_SCALE.suite.real1_queries

    def test_query_count_matches_bundles(self):
        harness = ExperimentHarness(UNIT_SCALE, seed=3,
                                    trace_store=NO_TRACE_STORE)
        for name in harness.suite.names:
            assert harness.suite.query_count(name) == \
                len(harness.suite.bundle(name).queries), name
        with pytest.raises(KeyError, match="unknown workload"):
            harness.suite.query_count("nope")
