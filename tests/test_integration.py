"""End-to-end integration: the paper's pipeline from data to selection.

These tests run the whole stack at tiny scale: generate databases, plan
and execute workloads, collect features and errors, train MART selectors,
and check the paper's *qualitative* claims (selection at least matches the
best individual estimator; the oracle lower-bounds everything).
"""

import numpy as np
import pytest

from repro.core.evaluate import (
    evaluate_fixed,
    evaluate_oracle,
    evaluate_selection,
)
from repro.core.training import train_selector
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scale import TINY

pytestmark = pytest.mark.slow  # execution-backed: full workloads, training


@pytest.fixture(scope="module")
def harness():
    return ExperimentHarness(TINY, seed=0)


@pytest.fixture(scope="module")
def loo(harness):
    """Leave-one-out: train on five workloads, test on tpch_partial."""
    train, test = harness.leave_one_out("tpch_partial", "dynamic")
    selector = train_selector(train, TINY.mart_params())
    return selector, train, test


class TestEndToEnd:
    def test_training_data_covers_all_workloads(self, harness):
        data = harness.pooled_training_data(list(harness.suite.names),
                                            "static")
        dbs = {m["db"] for m in data.meta}
        assert dbs == set(harness.suite.names)

    def test_selection_not_worse_than_best_fixed(self, loo):
        selector, _, test = loo
        ev_sel = evaluate_selection(selector, test)
        best_fixed = min(
            evaluate_fixed(test, name).avg_l1
            for name in test.estimator_names)
        # Qualitative claim: selection is competitive with (tiny-scale
        # tolerance) or better than the best single estimator.
        assert ev_sel.avg_l1 <= best_fixed * 1.15

    def test_oracle_lower_bounds_selection(self, loo):
        selector, _, test = loo
        ev_sel = evaluate_selection(selector, test)
        ev_oracle = evaluate_oracle(test)
        assert ev_oracle.avg_l1 <= ev_sel.avg_l1 + 1e-12

    def test_selection_beats_worst_fixed_clearly(self, loo):
        selector, _, test = loo
        ev_sel = evaluate_selection(selector, test)
        worst_fixed = max(
            evaluate_fixed(test, name).avg_l1
            for name in test.estimator_names)
        assert ev_sel.avg_l1 < worst_fixed

    def test_in_sample_selection_close_to_oracle(self, loo):
        selector, train, _ = loo
        ev = evaluate_selection(selector, train)
        oracle = evaluate_oracle(train)
        assert ev.avg_l1 <= oracle.avg_l1 * 2.0 + 0.02

    def test_no_single_estimator_dominates(self, harness):
        """Figure 1's premise: every estimator is beaten somewhere."""
        data = harness.pooled_training_data(list(harness.suite.names),
                                            "static")
        best = np.argmin(data.errors_l1[:, :3], axis=1)  # dne/tgn/luo
        counts = np.bincount(best, minlength=3)
        # each of the three classic estimators loses on >20% of pipelines
        assert (counts < 0.8 * len(best)).all()

    def test_errors_reproducible(self, harness):
        fresh = ExperimentHarness(TINY, seed=0)
        a = harness.training_data("real1", "static")
        b = fresh.training_data("real1", "static")
        assert np.allclose(a.errors_l1, b.errors_l1)
        assert np.allclose(a.X, b.X)
