"""Randomly sampled TPC-DS-style queries (paper: >200 random queries).

Each query picks one of the three sales facts, joins a random subset of
its dimensions (sometimes extending into the customer -> address
snowflake), applies randomized dimensional filters, and usually groups or
ranks — the canonical TPC-DS reporting shapes.
"""

from __future__ import annotations

import numpy as np

from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec

_FACTS = {
    "store_sales": "ss",
    "catalog_sales": "cs",
    "web_sales": "ws",
}


def _fact_joins(fact: str, prefix: str, rng: np.random.Generator
                ) -> tuple[list[str], list[JoinEdge], list[FilterSpec], list[str]]:
    """Random dimension subset for a fact, with joins/filters/group options."""
    tables = [fact]
    joins: list[JoinEdge] = []
    filters: list[FilterSpec] = []
    group_options: list[str] = []

    def add_dim(dim: str, fact_col: str, dim_col: str) -> None:
        tables.append(dim)
        joins.append(JoinEdge(fact, fact_col, dim, dim_col))

    if rng.random() < 0.85:
        add_dim("date_dim", f"{prefix}_sold_date_sk", "d_date_sk")
        year = int(rng.integers(1998, 2001))
        if rng.random() < 0.7:
            filters.append(FilterSpec("date_dim", "d_year", "==", year))
        else:
            filters.append(FilterSpec("date_dim", "d_moy", "==",
                                      int(rng.integers(1, 13))))
        group_options.append("d_moy")
    if rng.random() < 0.7:
        add_dim("item", f"{prefix}_item_sk", "i_item_sk")
        if rng.random() < 0.6:
            filters.append(FilterSpec("item", "i_category", "==",
                                      int(rng.integers(0, 10))))
        if rng.random() < 0.3:
            filters.append(FilterSpec("item", "i_current_price", "<=",
                                      float(rng.integers(20, 250))))
        group_options += ["i_brand", "i_class"]
    if rng.random() < 0.45:
        add_dim("customer_dim", f"{prefix}_customer_sk", "cd_customer_sk")
        group_options.append("cd_birth_year")
        if rng.random() < 0.5:
            tables.append("customer_address")
            joins.append(JoinEdge("customer_dim", "cd_address_sk",
                                  "customer_address", "ca_address_sk"))
            filters.append(FilterSpec("customer_address", "ca_state", "in",
                                      tuple(int(s) for s in
                                            rng.choice(50, 3, replace=False))))
            group_options.append("ca_state")
    if prefix == "ss" and rng.random() < 0.4:
        add_dim("store", "ss_store_sk", "st_store_sk")
        group_options.append("st_state")
    if prefix in ("cs", "ws") and rng.random() < 0.4:
        add_dim("warehouse", f"{prefix}_warehouse_sk", "wh_warehouse_sk")
        group_options.append("wh_warehouse_sk")
    if rng.random() < 0.25:
        add_dim("promotion", f"{prefix}_promo_sk", "pr_promo_sk")
        group_options.append("pr_channel")
    return tables, joins, filters, group_options


def generate_tpcds_workload(n_queries: int = 200,
                            seed: int = 1) -> list[QuerySpec]:
    """``n_queries`` random TPC-DS-style specs."""
    rng = np.random.default_rng(seed)
    queries: list[QuerySpec] = []
    fact_names = list(_FACTS)
    while len(queries) < n_queries:
        fact = fact_names[int(rng.integers(0, len(fact_names)))]
        prefix = _FACTS[fact]
        tables, joins, filters, group_options = _fact_joins(fact, prefix, rng)
        if rng.random() < 0.5:
            lo = float(rng.integers(1, 60))
            filters.append(FilterSpec(fact, f"{prefix}_quantity", "between",
                                      (lo, lo + float(rng.integers(10, 50)))))
        aggs = [Aggregate("sum", f"{prefix}_sales_price"), Aggregate("count")]
        if rng.random() < 0.4:
            aggs.append(Aggregate("avg", f"{prefix}_net_profit"))
        group_by: list[str] = []
        order_by: list[str] = []
        top = None
        if group_options and rng.random() < 0.8:
            group_by = [group_options[int(rng.integers(0, len(group_options)))]]
            if rng.random() < 0.6:
                order_by = [aggs[0].output_name]
                if rng.random() < 0.5:
                    top = int(rng.integers(10, 101))
        queries.append(QuerySpec(
            name=f"tpcds_{fact}_{len(queries)}",
            tables=tables,
            joins=joins,
            filters=filters,
            group_by=group_by,
            aggregates=aggs,
            order_by=order_by,
            top=top,
        ))
    return queries
