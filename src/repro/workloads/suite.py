"""Named workload bundles: database + physical design + queries + planner.

The paper evaluates on six workloads (§6): TPC-DS, three TPC-H variants
(z = 1) differing only in physical design, and the two real workloads.
A :class:`WorkloadSuite` materializes them lazily at a chosen scale and
caches the bundles, since several experiments share them.

Beyond the paper's six, the suite exposes two generated families sized by
the same :class:`SuiteScale`: ``adhoc_fuzz`` (:mod:`repro.fuzz`), a seeded
random star/snowflake schema with a batch of ad-hoc inner-join-heavy
queries, and ``outer_semi`` (:mod:`repro.workloads.outer_semi`), the same
generator reweighted so LEFT OUTER / SEMI / ANTI joins dominate.  Both are
deliberately *not* part of :data:`WORKLOAD_NAMES` — the §6.2
leave-one-workload-out protocol iterates the paper's six — but they build,
execute, record and warm-start exactly like the static families, so
train-on-static / test-on-generated experiments can consume them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.statistics import DatabaseStatistics, build_statistics
from repro.catalog.table import Database
from repro.datagen.sales import generate_real1, generate_real2
from repro.datagen.tpch import generate_tpch
from repro.datagen.tpcds import generate_tpcds
from repro.optimizer.physical_design import (
    DesignLevel,
    PhysicalDesign,
    apply_design,
    design_for_workload,
)
from repro.optimizer.planner import Planner
from repro.query.logical import QuerySpec
from repro.workloads.real1 import generate_real1_workload
from repro.workloads.real2 import generate_real2_workload
from repro.workloads.tpch_queries import generate_tpch_workload
from repro.workloads.tpcds_queries import generate_tpcds_workload

WORKLOAD_NAMES = (
    "tpcds",
    "tpch_untuned",
    "tpch_partial",
    "tpch_full",
    "real1",
    "real2",
)

#: generated families beyond the paper's six (excluded from §6.2 folds)
EXTRA_WORKLOAD_NAMES = ("adhoc_fuzz", "outer_semi")
ALL_WORKLOAD_NAMES = WORKLOAD_NAMES + EXTRA_WORKLOAD_NAMES


@dataclass
class WorkloadBundle:
    """Everything needed to run one workload."""

    name: str
    db: Database
    queries: list[QuerySpec]
    design: PhysicalDesign
    stats: DatabaseStatistics
    planner: Planner


@dataclass
class SuiteScale:
    """Row/query counts for building the six workloads."""

    tpch_rows: int = 20_000
    tpcds_rows: int = 12_000
    real1_rows: int = 15_000
    real2_rows: int = 15_000
    tpch_queries: int = 150
    tpcds_queries: int = 60
    real1_queries: int = 60
    real2_queries: int = 60
    tpch_z: float = 1.0  # the paper's default skew for workloads (2)-(4)
    fuzz_rows: int = 10_000      # fact rows of the adhoc_fuzz schema
    fuzz_queries: int = 60
    outer_rows: int = 10_000     # fact rows of the outer_semi schema
    outer_queries: int = 60


class WorkloadSuite:
    """Lazily builds and caches the six evaluation workloads."""

    def __init__(self, scale: SuiteScale | None = None, seed: int = 0):
        self.scale = scale or SuiteScale()
        self.seed = seed
        self._bundles: dict[str, WorkloadBundle] = {}

    @property
    def names(self) -> tuple[str, ...]:
        """The paper's six workloads (the §6.2 fold set)."""
        return WORKLOAD_NAMES

    @property
    def all_names(self) -> tuple[str, ...]:
        """Every buildable family, including generated extras."""
        return ALL_WORKLOAD_NAMES

    def bundle(self, name: str) -> WorkloadBundle:
        if name not in ALL_WORKLOAD_NAMES:
            raise KeyError(f"unknown workload {name!r}; "
                           f"choose from {ALL_WORKLOAD_NAMES}")
        if name not in self._bundles:
            self._bundles[name] = self._build(name)
        return self._bundles[name]

    def bundles(self, names: list[str] | None = None) -> list[WorkloadBundle]:
        return [self.bundle(n) for n in (names or WORKLOAD_NAMES)]

    def query_count(self, name: str) -> int:
        """How many queries :meth:`bundle` would build for ``name``.

        Known without materializing anything — the parallel runtime uses
        this to partition a workload across workers before any worker
        has built the (deterministic) bundle.
        """
        if name not in ALL_WORKLOAD_NAMES:
            raise KeyError(f"unknown workload {name!r}; "
                           f"choose from {ALL_WORKLOAD_NAMES}")
        scale = self.scale
        if name.startswith("tpch"):
            return scale.tpch_queries
        return {"tpcds": scale.tpcds_queries,
                "adhoc_fuzz": scale.fuzz_queries,
                "outer_semi": scale.outer_queries,
                "real1": scale.real1_queries,
                "real2": scale.real2_queries}[name]

    # -- construction -----------------------------------------------------

    def _build(self, name: str) -> WorkloadBundle:
        scale = self.scale
        if name.startswith("tpch"):
            level = {"tpch_untuned": DesignLevel.UNTUNED,
                     "tpch_partial": DesignLevel.PARTIAL,
                     "tpch_full": DesignLevel.FULL}[name]
            db = generate_tpch(scale.tpch_rows, z=scale.tpch_z,
                               seed=7 + self.seed)
            db.schema.name = name
            queries = generate_tpch_workload(scale.tpch_queries,
                                             seed=10 + self.seed)
            design = design_for_workload(db, queries, level)
        elif name == "tpcds":
            db = generate_tpcds(scale.tpcds_rows, seed=11 + self.seed)
            queries = generate_tpcds_workload(scale.tpcds_queries,
                                              seed=20 + self.seed)
            design = design_for_workload(db, queries, DesignLevel.PARTIAL)
        elif name == "adhoc_fuzz":
            # lazy import: only suites that actually build this family
            # pay for loading the fuzz package
            from repro.fuzz.generate import generate_fuzz_workload

            db, _, queries = generate_fuzz_workload(
                scale.fuzz_rows, scale.fuzz_queries, seed=61 + self.seed)
            db.schema.name = name
            level = (DesignLevel.UNTUNED, DesignLevel.PARTIAL,
                     DesignLevel.FULL)[(61 + self.seed) % 3]
            design = design_for_workload(db, queries, level)
        elif name == "outer_semi":
            from repro.workloads.outer_semi import generate_outer_semi_workload

            db, _, queries = generate_outer_semi_workload(
                scale.outer_rows, scale.outer_queries, seed=72 + self.seed)
            db.schema.name = name
            level = (DesignLevel.UNTUNED, DesignLevel.PARTIAL,
                     DesignLevel.FULL)[(72 + self.seed) % 3]
            design = design_for_workload(db, queries, level)
        elif name == "real1":
            db = generate_real1(scale.real1_rows, seed=23 + self.seed)
            queries = generate_real1_workload(scale.real1_queries,
                                              seed=30 + self.seed)
            design = design_for_workload(db, queries, DesignLevel.FULL)
        else:  # real2
            db = generate_real2(scale.real2_rows, seed=29 + self.seed)
            queries = generate_real2_workload(scale.real2_queries,
                                              seed=40 + self.seed)
            design = design_for_workload(db, queries, DesignLevel.PARTIAL)
        apply_design(db, design)
        stats = build_statistics(db)
        planner = Planner(db, stats)
        return WorkloadBundle(name=name, db=db, queries=queries,
                              design=design, stats=stats, planner=planner)
