"""Synthetic "Real-1" workload: 477 reporting queries, 5-8-way joins.

The paper describes Real-1 as a decision-support and reporting workload
over a Sales database where "most of the queries involve joins of 5-8
tables as well as nested sub-queries".  The generator samples from a set
of reporting patterns over the Real-1 schema, always joining 5-8 of the
star's tables and mixing fine- and coarse-grained aggregations.
"""

from __future__ import annotations

import numpy as np

from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec

#: dimension joins available for the ``sales`` fact
_SALES_DIMS: tuple[tuple[str, str, str], ...] = (
    ("product", "sale_product", "prod_key"),
    ("store", "sale_store", "store_key"),
    ("employee", "sale_employee", "emp_key"),
    ("customer_r1", "sale_customer", "cust_key"),
    ("promotion_r1", "sale_promo", "promo_key"),
    ("calendar", "sale_day", "day_key"),
)

_GROUP_COLUMNS = {
    "product": "prod_category",
    "store": "store_region",
    "employee": "emp_level",
    "customer_r1": "cust_segment",
    "promotion_r1": "promo_kind",
    "calendar": "day_month",
    "category": "cat_department",
}


def _sales_query(rng: np.random.Generator, name: str) -> QuerySpec:
    n_dims = int(rng.integers(4, 7))  # 5-8 tables incl. fact (+category)
    picks = rng.choice(len(_SALES_DIMS), size=n_dims, replace=False)
    tables = ["sales"]
    joins: list[JoinEdge] = []
    filters: list[FilterSpec] = []
    group_candidates: list[str] = []
    for p in sorted(picks):
        dim, fact_col, dim_key = _SALES_DIMS[p]
        tables.append(dim)
        joins.append(JoinEdge("sales", fact_col, dim, dim_key))
        group_candidates.append(_GROUP_COLUMNS[dim])
    if "product" in tables and rng.random() < 0.6:
        tables.append("category")
        joins.append(JoinEdge("product", "prod_category", "category", "cat_key"))
        group_candidates.append(_GROUP_COLUMNS["category"])
    if "calendar" in tables:
        month = int(rng.integers(1, 13))
        filters.append(FilterSpec("calendar", "day_month", "==", month))
    if "customer_r1" in tables and rng.random() < 0.5:
        filters.append(FilterSpec("customer_r1", "cust_segment", "==",
                                  int(rng.integers(0, 8))))
    if "product" in tables and rng.random() < 0.4:
        filters.append(FilterSpec("product", "prod_price", "<=",
                                  float(rng.integers(10, 80))))
    if rng.random() < 0.4:
        filters.append(FilterSpec("sales", "sale_quantity", ">=",
                                  int(rng.integers(2, 10))))
    aggs = [Aggregate("sum", "sale_amount"), Aggregate("count")]
    if rng.random() < 0.3:
        aggs.append(Aggregate("avg", "sale_discount"))
    group_by = [group_candidates[int(rng.integers(0, len(group_candidates)))]]
    order_by = [aggs[0].output_name] if rng.random() < 0.5 else list(group_by)
    return QuerySpec(
        name=name,
        tables=tables,
        joins=joins,
        filters=filters,
        group_by=group_by,
        aggregates=aggs,
        order_by=order_by,
        top=int(rng.integers(10, 51)) if rng.random() < 0.3 else None,
    )


def _returns_query(rng: np.random.Generator, name: str) -> QuerySpec:
    tables = ["returns", "product", "customer_r1", "calendar", "category"]
    joins = [
        JoinEdge("returns", "ret_product", "product", "prod_key"),
        JoinEdge("returns", "ret_customer", "customer_r1", "cust_key"),
        JoinEdge("returns", "ret_day", "calendar", "day_key"),
        JoinEdge("product", "prod_category", "category", "cat_key"),
    ]
    filters = [FilterSpec("calendar", "day_quarter", "==", int(rng.integers(1, 5)))]
    if rng.random() < 0.5:
        filters.append(FilterSpec("returns", "ret_reason", "==",
                                  int(rng.integers(0, 12))))
    if rng.random() < 0.4:
        tables.append("store")
        joins.append(JoinEdge("returns", "ret_store", "store", "store_key"))
    return QuerySpec(
        name=name,
        tables=tables,
        joins=joins,
        filters=filters,
        group_by=["cat_department"],
        aggregates=[Aggregate("sum", "ret_quantity"), Aggregate("count")],
        order_by=["sum_ret_quantity"],
    )


def generate_real1_workload(n_queries: int = 477,
                            seed: int = 2) -> list[QuerySpec]:
    """``n_queries`` Real-1-style specs (paper: 477 distinct queries)."""
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(n_queries):
        if rng.random() < 0.8:
            queries.append(_sales_query(rng, f"real1_sales_{i}"))
        else:
            queries.append(_returns_query(rng, f"real1_returns_{i}"))
    return queries
