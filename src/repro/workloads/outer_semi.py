"""The ``outer_semi`` workload family: non-inner-join-heavy ad-hoc queries.

The paper's six workloads (§6) and the ``adhoc_fuzz`` extra are dominated
by inner equi-joins.  This family reuses the fuzzer's star/snowflake
generator but inverts the join-kind distribution so LEFT OUTER, SEMI and
ANTI joins carry most of the plans — the regime where progress bounds
differ structurally from the inner case (semi/anti are capped by the
preserved side, outer joins pad unmatched probe rows).  It exists to
answer one question end to end: do estimator selectors trained on
inner-join-only workloads generalize to these semantics, and do the
engine's SAFE/PMAX intervals stay sound there?  (See
``benchmarks/bench_fuzz_generalization.py`` and the golden traces under
``tests/golden``.)
"""

from __future__ import annotations

from repro.catalog.table import Database
from repro.fuzz.generate import FuzzSchemaInfo, generate_fuzz_workload
from repro.query.logical import QuerySpec

#: Inverted kind distribution: non-inner joins are the common case here.
OUTER_SEMI_KIND_WEIGHTS = {
    "inner": 0.15,
    "left": 0.35,
    "semi": 0.30,
    "anti": 0.20,
}


def generate_outer_semi_workload(rows: int, n_queries: int, seed: int
                                 ) -> tuple[Database, FuzzSchemaInfo,
                                            list[QuerySpec]]:
    """Database + non-inner-heavy query batch (deterministic in ``seed``)."""
    return generate_fuzz_workload(rows, n_queries, seed,
                                  kind_weights=OUTER_SEMI_KIND_WEIGHTS)
