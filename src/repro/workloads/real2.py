"""Synthetic "Real-2" workload: 632 analytics queries, ~12-way joins.

The paper's second real workload runs "even more complex queries (with a
typical query involving 12 joins)" on a larger database.  The generator
walks the shipments snowflake — fact plus dimension chains (port ->
country -> region, carrier -> alliance, commodity -> group) — keeping
queries connected and usually 10-12 tables wide.
"""

from __future__ import annotations

import numpy as np

from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec

#: (table, fact join column, table key, snowflake extensions)
_CHAINS: tuple[tuple, ...] = (
    ("port", "shp_origin_port", "port_key",
     (("country", "port_country", "country_key",
       (("ship_region", "country_region", "sregion_key", ()),)),)),
    ("vessel", "shp_vessel", "vessel_key", ()),
    ("carrier", "shp_carrier", "carrier_key",
     (("alliance", "carrier_alliance", "alliance_key", ()),)),
    ("commodity", "shp_commodity", "comm_key",
     (("commodity_group", "comm_group", "cgroup_key", ()),)),
    ("shipper", "shp_shipper", "shipper_key", ()),
    ("consignee", "shp_consignee", "consignee_key", ()),
    ("calendar2", "shp_day", "sday_key", ()),
)

_GROUP_COLUMNS = {
    "port": "port_country",
    "country": "country_region",
    "ship_region": "sregion_key",
    "vessel": "vessel_carrier",
    "carrier": "carrier_alliance",
    "alliance": "alliance_key",
    "commodity": "comm_group",
    "commodity_group": "cgroup_hazard",
    "shipper": "shipper_tier",
    "consignee": "consignee_country",
    "calendar2": "sday_month",
}


def _add_chain(chain, parent: str, tables: list[str], joins: list[JoinEdge],
               rng: np.random.Generator, depth_prob: float) -> None:
    table, parent_col, key, extensions = chain
    tables.append(table)
    joins.append(JoinEdge(parent, parent_col, table, key))
    for ext in extensions:
        if rng.random() < depth_prob:
            _add_chain(ext, table, tables, joins, rng, depth_prob)


def _shipments_query(rng: np.random.Generator, name: str) -> QuerySpec:
    tables = ["shipments"]
    joins: list[JoinEdge] = []
    n_chains = int(rng.integers(5, len(_CHAINS) + 1))
    picks = rng.choice(len(_CHAINS), size=n_chains, replace=False)
    for p in sorted(picks):
        _add_chain(_CHAINS[p], "shipments", tables, joins, rng,
                   depth_prob=0.8)
    filters: list[FilterSpec] = []
    if "calendar2" in tables and rng.random() < 0.7:
        filters.append(FilterSpec("calendar2", "sday_month", "==",
                                  int(rng.integers(1, 13))))
    if "commodity_group" in tables and rng.random() < 0.4:
        filters.append(FilterSpec("commodity_group", "cgroup_hazard", "==",
                                  int(rng.integers(0, 3))))
    if "shipper" in tables and rng.random() < 0.4:
        filters.append(FilterSpec("shipper", "shipper_tier", "==",
                                  int(rng.integers(0, 4))))
    if rng.random() < 0.5:
        filters.append(FilterSpec("shipments", "shp_teu", ">=",
                                  int(rng.integers(2, 15))))
    if rng.random() < 0.3:
        filters.append(FilterSpec("shipments", "shp_delay_days", "<=",
                                  int(rng.integers(3, 20))))
    group_candidates = [_GROUP_COLUMNS[t] for t in tables if t in _GROUP_COLUMNS]
    aggs = [Aggregate("sum", "shp_value"), Aggregate("count")]
    if rng.random() < 0.4:
        aggs.append(Aggregate("max", "shp_teu"))
    group_by = [group_candidates[int(rng.integers(0, len(group_candidates)))]] \
        if group_candidates and rng.random() < 0.85 else []
    order_by = []
    top = None
    if group_by and rng.random() < 0.5:
        order_by = [aggs[0].output_name]
        if rng.random() < 0.4:
            top = int(rng.integers(10, 101))
    return QuerySpec(
        name=name,
        tables=tables,
        joins=joins,
        filters=filters,
        group_by=group_by,
        aggregates=aggs if group_by or rng.random() < 0.8 else [],
        order_by=order_by,
        top=top,
    )


def generate_real2_workload(n_queries: int = 632,
                            seed: int = 3) -> list[QuerySpec]:
    """``n_queries`` Real-2-style specs (paper: 632 queries)."""
    rng = np.random.default_rng(seed)
    return [_shipments_query(rng, f"real2_shipments_{i}")
            for i in range(n_queries)]
