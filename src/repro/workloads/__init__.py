"""Query workload generators for the paper's six evaluation workloads.

* :mod:`repro.workloads.tpch_queries` — parametrized TPC-H-style templates
  (the paper runs 1000 TPC-H queries per physical design),
* :mod:`repro.workloads.tpcds_queries` — randomly sampled TPC-DS-style
  star/snowflake queries (the paper uses >200),
* :mod:`repro.workloads.real1` / :mod:`repro.workloads.real2` — generators
  matching the two proprietary workloads' reported shapes (477 queries of
  5-8-way joins; 632 queries of ~12-way joins),
* :mod:`repro.workloads.suite` — named (database, design, queries) bundles
  with caching, the unit the experiment harness works with.
"""

from repro.workloads.real1 import generate_real1_workload
from repro.workloads.real2 import generate_real2_workload
from repro.workloads.suite import WORKLOAD_NAMES, WorkloadBundle, WorkloadSuite
from repro.workloads.tpch_queries import generate_tpch_workload
from repro.workloads.tpcds_queries import generate_tpcds_workload

__all__ = [
    "generate_tpch_workload",
    "generate_tpcds_workload",
    "generate_real1_workload",
    "generate_real2_workload",
    "WorkloadSuite",
    "WorkloadBundle",
    "WORKLOAD_NAMES",
]
