"""Parametrized TPC-H-style query templates over the generated schema.

Sixteen templates modelled on the TPC-H query set (Q1, Q3, Q5, Q6, Q10,
Q12, Q14, Q18, Q19, ... simplified to the reproduced schema subset), each
with randomized parameters the way ``qgen`` substitutes them.  The mix
deliberately spans the plan shapes that stress different estimators:
scan-heavy aggregations, selective seeks, multi-way joins that flip
between hash/merge/index-nested-loop under different physical designs,
group-bys of very different cardinalities, and TOP-N queries that
terminate early.
"""

from __future__ import annotations

import numpy as np

from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec

_DATE_MAX = 7 * 365


def _date(rng: np.random.Generator, lo_frac: float = 0.1,
          hi_frac: float = 0.9) -> int:
    return int(rng.integers(int(_DATE_MAX * lo_frac), int(_DATE_MAX * hi_frac)))


def q1_pricing_summary(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["lineitem"],
        filters=[FilterSpec("lineitem", "l_shipdate", "<=", _date(rng, 0.5, 1.0))],
        group_by=["l_returnflag"],
        aggregates=[Aggregate("sum", "l_quantity"),
                    Aggregate("sum", "l_extendedprice"),
                    Aggregate("avg", "l_discount"),
                    Aggregate("count")],
        order_by=["l_returnflag"],
    )


def q3_shipping_priority(rng: np.random.Generator, name: str) -> QuerySpec:
    cutoff = _date(rng, 0.3, 0.7)
    return QuerySpec(
        name=name,
        tables=["customer", "orders", "lineitem"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("customer", "c_mktsegment", "==", int(rng.integers(0, 5))),
                 FilterSpec("orders", "o_orderdate", "<", cutoff),
                 FilterSpec("lineitem", "l_shipdate", ">", cutoff)],
        group_by=["o_orderdate"],
        aggregates=[Aggregate("sum", "l_extendedprice")],
        order_by=["sum_l_extendedprice"],
        top=10,
    )


def q5_local_supplier(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.1, 0.6)
    return QuerySpec(
        name=name,
        tables=["customer", "orders", "lineitem", "supplier", "nation"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
               JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
               JoinEdge("customer", "c_nationkey", "nation", "n_nationkey")],
        filters=[FilterSpec("orders", "o_orderdate", "between",
                            (start, start + 365)),
                 FilterSpec("nation", "n_regionkey", "==", int(rng.integers(0, 5)))],
        group_by=["n_nationkey"],
        aggregates=[Aggregate("sum", "l_extendedprice")],
        order_by=["sum_l_extendedprice"],
    )


def q6_forecast_revenue(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.1, 0.7)
    disc = rng.integers(2, 8) / 100.0
    return QuerySpec(
        name=name,
        tables=["lineitem"],
        filters=[FilterSpec("lineitem", "l_shipdate", "between", (start, start + 365)),
                 FilterSpec("lineitem", "l_discount", "between",
                            (disc - 0.01, disc + 0.01)),
                 FilterSpec("lineitem", "l_quantity", "<", float(rng.integers(24, 35)))],
        aggregates=[Aggregate("sum", "l_extendedprice")],
    )


def q10_returned_items(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.2, 0.7)
    return QuerySpec(
        name=name,
        tables=["customer", "orders", "lineitem", "nation"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
               JoinEdge("customer", "c_nationkey", "nation", "n_nationkey")],
        filters=[FilterSpec("orders", "o_orderdate", "between", (start, start + 90)),
                 FilterSpec("lineitem", "l_returnflag", "==", int(rng.integers(0, 3)))],
        group_by=["c_custkey"],
        aggregates=[Aggregate("sum", "l_extendedprice"), Aggregate("count")],
        order_by=["sum_l_extendedprice"],
        top=20,
    )


def q12_shipmode(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.1, 0.8)
    modes = tuple(int(m) for m in rng.choice(7, size=2, replace=False))
    return QuerySpec(
        name=name,
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("lineitem", "l_shipmode", "in", modes),
                 FilterSpec("lineitem", "l_receiptdate", "between",
                            (start, start + 365))],
        group_by=["l_shipmode"],
        aggregates=[Aggregate("count"), Aggregate("sum", "o_totalprice")],
        order_by=["l_shipmode"],
    )


def q14_promo_effect(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.1, 0.85)
    return QuerySpec(
        name=name,
        tables=["lineitem", "part"],
        joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
        filters=[FilterSpec("lineitem", "l_shipdate", "between", (start, start + 30))],
        aggregates=[Aggregate("sum", "l_extendedprice"), Aggregate("count")],
    )


def q18_large_volume(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["customer", "orders", "lineitem"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
               JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("orders", "o_totalprice", ">",
                            float(rng.integers(300_000, 450_000)))],
        group_by=["o_orderkey"],
        aggregates=[Aggregate("sum", "l_quantity")],
        order_by=["sum_l_quantity"],
        top=100,
    )


def q19_discounted_revenue(rng: np.random.Generator, name: str) -> QuerySpec:
    qty = float(rng.integers(5, 30))
    return QuerySpec(
        name=name,
        tables=["lineitem", "part"],
        joins=[JoinEdge("lineitem", "l_partkey", "part", "p_partkey")],
        filters=[FilterSpec("part", "p_size", "between",
                            (1, int(rng.integers(5, 25)))),
                 FilterSpec("lineitem", "l_quantity", "between", (qty, qty + 10.0)),
                 FilterSpec("lineitem", "l_shipinstruct", "==", 1)],
        aggregates=[Aggregate("sum", "l_extendedprice")],
    )


def order_priority_counts(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.1, 0.85)
    return QuerySpec(
        name=name,
        tables=["orders"],
        filters=[FilterSpec("orders", "o_orderdate", "between", (start, start + 90))],
        group_by=["o_orderpriority"],
        aggregates=[Aggregate("count")],
        order_by=["o_orderpriority"],
    )


def brand_supply_cost(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["partsupp", "part", "supplier"],
        joins=[JoinEdge("partsupp", "ps_partkey", "part", "p_partkey"),
               JoinEdge("partsupp", "ps_suppkey", "supplier", "s_suppkey")],
        filters=[FilterSpec("part", "p_size", "<=", int(rng.integers(10, 40)))],
        group_by=["p_brand"],
        aggregates=[Aggregate("sum", "ps_supplycost"), Aggregate("count")],
        order_by=["sum_ps_supplycost"],
    )


def lineitem_partsupp(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["lineitem", "partsupp"],
        joins=[JoinEdge("lineitem", "l_partkey", "partsupp", "ps_partkey")],
        filters=[FilterSpec("lineitem", "l_shipdate", ">", _date(rng, 0.6, 0.9))],
        group_by=["ps_suppkey"],
        aggregates=[Aggregate("sum", "ps_availqty")],
        order_by=["sum_ps_availqty"],
        top=50,
    )


def customer_order_lookup(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["orders", "lineitem"],
        joins=[JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey")],
        filters=[FilterSpec("orders", "o_custkey", "<=", int(rng.integers(5, 60)))],
        aggregates=[Aggregate("count"), Aggregate("sum", "l_extendedprice")],
    )


def segment_revenue(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["customer", "orders"],
        joins=[JoinEdge("customer", "c_custkey", "orders", "o_custkey")],
        filters=[FilterSpec("orders", "o_orderstatus", "==", int(rng.integers(0, 3)))],
        group_by=["c_mktsegment"],
        aggregates=[Aggregate("avg", "o_totalprice"), Aggregate("count")],
        order_by=["c_mktsegment"],
    )


def supplier_revenue(rng: np.random.Generator, name: str) -> QuerySpec:
    start = _date(rng, 0.2, 0.75)
    return QuerySpec(
        name=name,
        tables=["supplier", "lineitem"],
        joins=[JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey")],
        filters=[FilterSpec("lineitem", "l_shipdate", "between", (start, start + 90))],
        group_by=["s_nationkey"],
        aggregates=[Aggregate("sum", "l_extendedprice")],
        order_by=["sum_l_extendedprice"],
    )


def part_type_count(rng: np.random.Generator, name: str) -> QuerySpec:
    return QuerySpec(
        name=name,
        tables=["part", "lineitem"],
        joins=[JoinEdge("part", "p_partkey", "lineitem", "l_partkey")],
        filters=[FilterSpec("part", "p_brand", "==", int(rng.integers(0, 25))),
                 FilterSpec("part", "p_size", "between", (1, int(rng.integers(15, 50))))],
        group_by=["p_type"],
        aggregates=[Aggregate("count"), Aggregate("sum", "l_quantity")],
        order_by=["count_star"],
        top=20,
    )


TEMPLATES = (
    q1_pricing_summary,
    q3_shipping_priority,
    q5_local_supplier,
    q6_forecast_revenue,
    q10_returned_items,
    q12_shipmode,
    q14_promo_effect,
    q18_large_volume,
    q19_discounted_revenue,
    order_priority_counts,
    brand_supply_cost,
    lineitem_partsupp,
    customer_order_lookup,
    segment_revenue,
    supplier_revenue,
    part_type_count,
)


def generate_tpch_workload(n_queries: int = 1000,
                           seed: int = 0) -> list[QuerySpec]:
    """``n_queries`` specs cycling the templates with fresh parameters."""
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(n_queries):
        template = TEMPLATES[i % len(TEMPLATES)]
        queries.append(template(rng, f"tpch_{template.__name__}_{i}"))
    return queries
