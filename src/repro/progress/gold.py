"""Idealized models with oracle knowledge (paper §6.7).

These are not deployable estimators — they use totals only known *after*
the query finishes — but they validate the two theoretical models of
progress: if the GetNext model with true ``N_i`` tracks time closely
(paper: L1 ≈ 0.062), the model is a sound basis; the Bytes-Processed model
with true byte totals is measurably worse (paper: L1 ≈ 0.12).
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    safe_divide,
)
from repro.progress.luo import bytes_done
from repro.progress.streaming import ObsTick, PipelineMeta


class GetNextOracle(ProgressEstimator):
    """TGN with the true totals ``N_i`` substituted for the estimates."""

    name = "getnext_oracle"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        total = float(pr.N.sum())
        return clip_progress(safe_divide(pr.K.sum(axis=1), max(total, 1e-12)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        total = float(tick.N.sum())
        return float(clip_progress(safe_divide(tick.K.sum(),
                                               max(total, 1e-12))))


class BytesProcessedOracle(ProgressEstimator):
    """Luo's bytes model with the true total bytes substituted.

    The denominator is only known once the run completes; when streaming
    a completed run the metadata carries it
    (:attr:`PipelineMeta.oracle_bytes_total`), and the incremental path
    matches the batch one bit-for-bit.  Streamed *live* (no recorded
    total) it degrades to the causal prefix the batch path would compute
    on the same truncated trajectory — bytes so far over bytes so far.
    """

    name = "bytes_oracle"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        done = bytes_done(pr)
        total = float(done[-1]) if len(done) else 0.0
        return clip_progress(safe_divide(done, max(total, 1e-12)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        meta = state.meta
        mask = meta.driver_mask
        done = (tick.K[mask] * meta.widths[mask]).sum() + tick.W.sum()
        total = meta.oracle_bytes_total
        if total is None:
            total = float(done)
        return float(clip_progress(safe_divide(done, max(total, 1e-12))))
