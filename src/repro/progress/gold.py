"""Idealized models with oracle knowledge (paper §6.7).

These are not deployable estimators — they use totals only known *after*
the query finishes — but they validate the two theoretical models of
progress: if the GetNext model with true ``N_i`` tracks time closely
(paper: L1 ≈ 0.062), the model is a sound basis; the Bytes-Processed model
with true byte totals is measurably worse (paper: L1 ≈ 0.12).
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import ProgressEstimator, clip_progress, safe_divide
from repro.progress.luo import bytes_done


class GetNextOracle(ProgressEstimator):
    """TGN with the true totals ``N_i`` substituted for the estimates."""

    name = "getnext_oracle"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        total = float(pr.N.sum())
        return clip_progress(safe_divide(pr.K.sum(axis=1), max(total, 1e-12)))


class BytesProcessedOracle(ProgressEstimator):
    """Luo's bytes model with the true total bytes substituted."""

    name = "bytes_oracle"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        done = bytes_done(pr)
        total = float(done[-1]) if len(done) else 0.0
        return clip_progress(safe_divide(done, max(total, 1e-12)))
