"""Canonical estimator sets used throughout the experiments."""

from __future__ import annotations

from repro.progress.base import ProgressEstimator
from repro.progress.batchdne import BatchDNEEstimator
from repro.progress.dne import DNEEstimator
from repro.progress.dneseek import DNESeekEstimator
from repro.progress.luo import LuoEstimator
from repro.progress.refined_tgn import RefinedTGNEstimator
from repro.progress.safe_pmax import PMaxEstimator, SafeEstimator
from repro.progress.tgn import TGNEstimator
from repro.progress.tgnint import TGNIntEstimator


def original_estimators() -> list[ProgressEstimator]:
    """The three prior-work estimators the paper selects among first."""
    return [DNEEstimator(), TGNEstimator(), LuoEstimator()]


def novel_estimators() -> list[ProgressEstimator]:
    """The paper's §5 additions."""
    return [BatchDNEEstimator(), DNESeekEstimator(), TGNIntEstimator()]


def worst_case_estimators() -> list[ProgressEstimator]:
    """[5]'s theoretical estimators (evaluated, then ruled out, in §6.2)."""
    return [PMaxEstimator(), SafeEstimator()]


def extension_estimators() -> list[ProgressEstimator]:
    """Post-paper extensions (§7 outlook); not in the paper's §6 pools."""
    return [RefinedTGNEstimator()]


def all_estimators(include_worst_case: bool = False,
                   include_extensions: bool = False) -> list[ProgressEstimator]:
    """Original + novel estimators (the paper's full selection pool)."""
    pool = original_estimators() + novel_estimators()
    if include_worst_case:
        pool += worst_case_estimators()
    if include_extensions:
        pool += extension_estimators()
    return pool


def estimator_by_name(name: str) -> ProgressEstimator:
    for est in all_estimators(include_worst_case=True,
                              include_extensions=True):
        if est.name == name:
            return est
    raise KeyError(f"unknown estimator {name!r}")
