"""Structure-of-arrays batches for the streaming estimator states.

The scalar streaming path (:mod:`repro.progress.streaming`) advances one
:class:`~repro.progress.base.StreamState` per (estimator, pipeline) per
tick — a Python call per state.  The pooled service multiplies that by
every live session, so its flush cost is a Python loop over sessions.
This module re-lays the same states out as *structure-of-arrays* batches
keyed by estimator kind:

* a :class:`SoAPool` holds the immutable per-pipeline metadata of every
  packed pipeline as zero-padded ``(slots, width)`` arrays — optimizer
  estimates, driver/widened masks, known-source totals, materialized
  positions — one row per (session, pipeline) slot;
* a :class:`FlushBatch` carries one service flush's observation rows for
  all slots as flat ``(rows, width)`` arrays plus the shared derived
  quantities (``n_partial`` totals, masked row sums) every kernel needs;
* a :class:`BatchedStreamState` per estimator kind advances *all* rows in
  one NumPy pass — ``advance(batch)`` returns the per-row estimates that
  the scalar ``estimator.advance(state, tick)`` loop would have produced,
  bit-for-bit.

Pack/unpack happens at session admission/completion: ``pack`` adopts a
pipeline into the pool when the service first captures it, ``release``
frees the slot when the pipeline (or its session) finishes, and the
stateful LUO batch can ``unpack`` a slot back into the scalar
:class:`~repro.progress.luo.LuoWindowState` it mirrors.

Why bit-parity holds
--------------------

NumPy's ``sum`` adds sequentially below its 8-way pairwise-unroll
threshold (starting from ``0.0``), and every quantity summed here is
nonnegative, so summing a zero-padded row column-by-column is a bitwise
no-op relative to summing the compacted selection — each padded position
contributes an exact ``x + 0.0 == x``.  Rows whose *selected* length
reaches the threshold would hit NumPy's unrolled accumulator tree
instead; those (rare) rows are precomputed at pack time and fixed up by
re-summing the compacted selection with ``np.sum`` itself
(:meth:`FlushBatch.rowsum`), so every row sum is produced by exactly the
reduction the scalar path uses.  All remaining kernel arithmetic is
elementwise and mirrors the scalar ``advance`` formulas
operation-for-operation; the service-layer fuzz oracle gates the
resulting report streams against the scalar path end-to-end.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.plan.nodes import Op
from repro.progress.batchdne import BatchDNEEstimator
from repro.progress.dne import DNEEstimator
from repro.progress.dneseek import DNESeekEstimator
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.luo import LuoEstimator, LuoWindowState
from repro.progress.refined_tgn import RefinedTGNEstimator
from repro.progress.safe_pmax import PMaxEstimator, SafeEstimator
from repro.progress.streaming import PipelineMeta
from repro.progress.tgn import TGNEstimator
from repro.progress.tgnint import TGNIntEstimator

#: numpy's pairwise-sum unroll threshold: selections shorter than this
#: are summed sequentially, where zero-padding cannot change a bit
_PAIRWISE_UNROLL = 8

#: mask families every kernel draws its row sums from
_FAMILIES = ("valid", "driver", "bdrv", "sdrv")


class SoAPool:
    """Slot table of packed pipelines, shared by every batched kind.

    One slot per live (session, pipeline) pair; rows are zero-padded to
    the pool's current ``width`` (the widest member count seen).  The
    table grows by doubling and recycles released slots.
    """

    def __init__(self, capacity: int = 16, width: int = 4):
        self.capacity = capacity
        self.width = width
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self.metas: list[PipelineMeta | None] = [None] * capacity
        self.m = np.zeros(capacity, dtype=np.int64)
        self.t_start = np.zeros(capacity)
        self.mat_bytes = np.zeros(capacity)
        self.e0_sum = np.zeros(capacity)
        self.oracle_total = np.zeros(capacity)
        self.has_oracle = np.zeros(capacity, dtype=bool)
        shape = (capacity, width)
        self.E0 = np.zeros(shape)
        self.widths = np.zeros(shape)
        self.known_base = np.zeros(shape)
        self.sel = {f: np.zeros(shape, dtype=bool) for f in _FAMILIES}
        self.matpos = np.zeros(shape, dtype=bool)
        self.childpos = np.zeros(shape, dtype=bool)
        #: per family: slot -> local column indices of rows long enough to
        #: hit numpy's unrolled reduction (fixed up via np.sum directly)
        self.big: dict[str, dict[int, np.ndarray]] = {f: {} for f in _FAMILIES}

    @property
    def n_live(self) -> int:
        return self.capacity - len(self._free)

    def _widen(self, width: int) -> None:
        def grow2(a):
            out = np.zeros((self.capacity, width), dtype=a.dtype)
            out[:, : self.width] = a
            return out

        self.E0 = grow2(self.E0)
        self.widths = grow2(self.widths)
        self.known_base = grow2(self.known_base)
        self.sel = {f: grow2(a) for f, a in self.sel.items()}
        self.matpos = grow2(self.matpos)
        self.childpos = grow2(self.childpos)
        self.width = width

    def _grow(self) -> None:
        old = self.capacity
        cap = old * 2
        self._free.extend(range(cap - 1, old - 1, -1))
        self.metas.extend([None] * old)

        def grow1(a):
            out = np.zeros(cap, dtype=a.dtype)
            out[:old] = a
            return out

        def grow2(a):
            out = np.zeros((cap, self.width), dtype=a.dtype)
            out[:old] = a
            return out

        self.m = grow1(self.m)
        self.t_start = grow1(self.t_start)
        self.mat_bytes = grow1(self.mat_bytes)
        self.e0_sum = grow1(self.e0_sum)
        self.oracle_total = grow1(self.oracle_total)
        self.has_oracle = grow1(self.has_oracle)
        self.E0 = grow2(self.E0)
        self.widths = grow2(self.widths)
        self.known_base = grow2(self.known_base)
        self.sel = {f: grow2(a) for f, a in self.sel.items()}
        self.matpos = grow2(self.matpos)
        self.childpos = grow2(self.childpos)
        self.capacity = cap

    def pack(self, meta: PipelineMeta) -> int:
        """Adopt one pipeline's immutable metadata; returns its slot."""
        if not self._free:
            self._grow()
        m = meta.n_nodes
        if m > self.width:
            self._widen(max(m, self.width * 2))
        slot = self._free.pop()
        self.metas[slot] = meta
        self.m[slot] = m
        self.t_start[slot] = meta.t_start
        self.mat_bytes[slot] = meta.materialized_bytes_est
        # the scalar TGN-interpolated state re-sums E0 every tick; the sum
        # is tick-invariant, so one np.sum at pack time is bit-identical
        self.e0_sum[slot] = float(meta.E0.sum())
        oracle = meta.oracle_bytes_total
        self.has_oracle[slot] = oracle is not None
        self.oracle_total[slot] = 0.0 if oracle is None else oracle
        for name in ("E0", "widths", "known_base"):
            getattr(self, name)[slot] = 0.0
        self.E0[slot, :m] = meta.E0
        self.widths[slot, :m] = meta.widths
        base = meta.E0.copy()
        if len(meta.known_source_idx):
            base[meta.known_source_idx] = meta.table_rows[meta.known_source_idx]
        self.known_base[slot, :m] = base
        ops = meta.ops
        sel = self.sel
        for f in _FAMILIES:
            sel[f][slot] = False
        sel["valid"][slot, :m] = True
        sel["driver"][slot, :m] = meta.driver_mask
        # the widened families mirror _WidenedDriverState.extra exactly
        sel["bdrv"][slot, :m] = meta.driver_mask | np.array(
            [op == Op.BATCH_SORT for op in ops])
        sel["sdrv"][slot, :m] = meta.driver_mask | np.array(
            [op == Op.INDEX_SEEK for op in ops])
        self.matpos[slot] = False
        self.childpos[slot] = False
        if len(meta.materialized_idx):
            self.matpos[slot, meta.materialized_idx] = True
        if len(meta.mat_idx):
            self.childpos[slot, meta.mat_idx] = True
        for f in _FAMILIES:
            idx = np.flatnonzero(sel[f][slot, :m])
            if len(idx) >= _PAIRWISE_UNROLL:
                self.big[f][slot] = idx
            else:
                self.big[f].pop(slot, None)
        return slot

    def release(self, slot: int) -> None:
        """Free a slot when its pipeline (or session) completes."""
        self.metas[slot] = None
        for f in _FAMILIES:
            self.big[f].pop(slot, None)
        self._free.append(slot)


class FlushBatch:
    """One flush's observation rows for every active slot, flattened.

    Rows are grouped per slot (``slot_rows[slot] = (lo, hi)`` flat range)
    in ascending time order; ``ordinals[s]`` lists the flat indices of
    each slot's ``s``-th row, the iteration order stateful kernels need.
    ``CK``/``CD`` overlay the out-of-pipeline build child's counter/done
    columns at the blocking-source positions (``pool.childpos``).
    """

    def __init__(self, pool: SoAPool, slots: np.ndarray, times: np.ndarray,
                 K: np.ndarray, W: np.ndarray, LB: np.ndarray,
                 UB: np.ndarray, D: np.ndarray, CK: np.ndarray,
                 CD: np.ndarray, slot_rows: dict[int, tuple[int, int]],
                 ordinals: list[np.ndarray]):
        self.pool = pool
        self.slots = slots
        self.times = times
        self.K = K
        self.W = W
        self.LB = LB
        self.UB = UB
        self.D = D
        self.CK = CK
        self.CD = CD
        self.slot_rows = slot_rows
        self.ordinals = ordinals
        self._cache: dict[str, np.ndarray] = {}
        self._fixes: dict[str, list[tuple[int, np.ndarray]]] = {}

    def __len__(self) -> int:
        return len(self.slots)

    # -- shared derived rows -------------------------------------------------

    def meta_rows(self, name: str) -> np.ndarray:
        """Per-row view of a pool metadata array (cached gather)."""
        key = "meta:" + name
        out = self._cache.get(key)
        if out is None:
            out = getattr(self.pool, name)[self.slots]
            self._cache[key] = out
        return out

    @property
    def N(self) -> np.ndarray:
        """Per-row ``n_partial`` (mirrors ``_capture_tick``'s N rule)."""
        out = self._cache.get("N")
        if out is None:
            out = np.where(self.D, self.K, self.meta_rows("E0"))
            override = self.meta_rows("childpos") & self.CD & ~self.D
            if override.any():
                out = np.where(override, self.CK, out)
            self._cache["N"] = out
        return out

    @property
    def totals(self) -> np.ndarray:
        """Per-row mirror of :func:`tick_known_totals`."""
        out = self._cache.get("totals")
        if out is None:
            out = np.where(self.meta_rows("matpos"), self.N,
                           self.meta_rows("known_base"))
            self._cache["totals"] = out
        return out

    @property
    def bytes_done(self) -> np.ndarray:
        """Per-row LUO/bytes-oracle numerator."""
        out = self._cache.get("bytes_done")
        if out is None:
            out = (self.rowsum("driver", self.K * self.meta_rows("widths"))
                   + self.rowsum("valid", self.W))
            self._cache["bytes_done"] = out
        return out

    def fixes(self, family: str) -> list[tuple[int, np.ndarray]]:
        out = self._fixes.get(family)
        if out is None:
            out = []
            for slot, idx in self.pool.big[family].items():
                rng = self.slot_rows.get(slot)
                if rng is not None:
                    out.extend((r, idx) for r in range(rng[0], rng[1]))
            self._fixes[family] = out
        return out

    def rowsum(self, family: str, Z: np.ndarray) -> np.ndarray:
        """Per-row ``Z[r, sel].sum()``, bit-identical to the scalar sums.

        Sequential column accumulation over the zero-masked rows (exact
        for selections below numpy's unroll threshold — see the module
        docstring), with threshold-length rows re-summed compacted.
        """
        masked = np.where(self.pool.sel[family][self.slots], Z, 0.0)
        out = np.zeros(len(masked))
        for j in range(masked.shape[1]):
            out += masked[:, j]
        for r, idx in self.fixes(family):
            out[r] = Z[r, idx].sum()
        return out

    def sums(self, family: str, source: str) -> np.ndarray:
        """Cached :meth:`rowsum` of a named source array family."""
        key = f"{family}:{source}"
        out = self._cache.get(key)
        if out is None:
            Z = self.totals if source == "totals" else getattr(self, source)
            out = self.rowsum(family, Z)
            self._cache[key] = out
        return out

    def driver_value(self, family: str) -> np.ndarray:
        """Per-row mirror of the DNE-family estimate (consumed/known)."""
        key = "dnev:" + family
        out = self._cache.get(key)
        if out is None:
            out = _safe_div(self.sums(family, "K"), self.sums(family, "totals"))
            np.clip(out, 0.0, 1.0, out=out)
            self._cache[key] = out
        return out


def _safe_div(num: np.ndarray, denom: np.ndarray) -> np.ndarray:
    """Vector mirror of :func:`repro.progress.base.safe_divide`."""
    out = np.zeros(np.broadcast(num, denom).shape)
    np.divide(num, denom, out=out, where=denom > 0)
    return out


# -- per-kind batched states --------------------------------------------------


class BatchedStreamState:
    """All packed pipelines' streaming state for ONE estimator kind.

    Memoryless kinds share the pool's metadata and carry no per-slot
    state; :meth:`advance` evaluates every row of a flush in one pass.
    Stateful kinds (LUO) additionally keep per-slot history aligned to
    the pool's slots, managed through :meth:`pack` / :meth:`release`.
    """

    stateful = False

    def __init__(self, estimator, pool: SoAPool):
        self.estimator = estimator
        self.pool = pool

    def pack(self, slot: int) -> None:
        """Initialize per-slot state (no-op for memoryless kinds)."""

    def release(self, slot: int) -> None:
        """Drop per-slot state (no-op for memoryless kinds)."""

    def unpack(self, slot: int):
        """The equivalent scalar state for one slot."""
        return self.estimator.begin(self.pool.metas[slot])

    def advance(self, batch: FlushBatch) -> np.ndarray:
        raise NotImplementedError


class _BatchedDNE(BatchedStreamState):
    family = "driver"

    def advance(self, batch: FlushBatch) -> np.ndarray:
        return batch.driver_value(self.family)


class _BatchedBatchDNE(_BatchedDNE):
    family = "bdrv"


class _BatchedDNESeek(_BatchedDNE):
    family = "sdrv"


class _BatchedTGN(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        done = batch.sums("valid", "K")
        clipped = np.clip(batch.meta_rows("E0"), batch.LB, batch.UB)
        totals = batch.rowsum("valid", clipped)
        out = _safe_div(done, totals)
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedTGNInt(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        k_sum = batch.sums("valid", "K")
        dne = batch.driver_value("driver")
        denom = k_sum + (1.0 - dne) * batch.meta_rows("e0_sum")
        out = _safe_div(k_sum, np.maximum(denom, 1e-12))
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedRefinedTGN(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        alpha = batch.driver_value("driver")
        col = alpha[:, None]
        extrapolated = batch.K / np.maximum(col, 1e-9)
        refined = col * extrapolated + (1.0 - col) * batch.meta_rows("E0")
        refined = np.clip(np.maximum(refined, batch.K), batch.LB, batch.UB)
        done = batch.sums("valid", "K")
        totals = batch.rowsum("valid", refined)
        out = _safe_div(done, np.maximum(totals, 1e-12))
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedPMax(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        work = batch.sums("valid", "K")
        max_work = batch.sums("valid", "UB")
        out = _safe_div(work, np.maximum(max_work, 1e-12))
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedSafe(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        k_sum = batch.sums("valid", "K")
        ub_sum = batch.sums("valid", "UB")
        lb_sum = np.maximum(batch.sums("valid", "LB"), k_sum)
        lo = _safe_div(k_sum, np.maximum(ub_sum, 1e-12))
        hi = _safe_div(k_sum, np.maximum(lb_sum, 1e-12))
        out = np.sqrt(np.maximum(lo, 0.0) * np.maximum(hi, 0.0))
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedGetNext(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        total = batch.sums("valid", "N")
        out = _safe_div(batch.sums("valid", "K"), np.maximum(total, 1e-12))
        return np.clip(out, 0.0, 1.0, out=out)


class _BatchedBytesOracle(BatchedStreamState):
    def advance(self, batch: FlushBatch) -> np.ndarray:
        done = batch.bytes_done
        total = np.where(batch.meta_rows("has_oracle"),
                         batch.meta_rows("oracle_total"), done)
        out = _safe_div(done, np.maximum(total, 1e-12))
        return np.clip(out, 0.0, 1.0, out=out)


class BatchedLuoState(BatchedStreamState):
    """SoA mirror of :class:`LuoWindowState`: per-slot speed-window rings.

    Each slot's window lives in a row of the ``(slots, cap)`` ring
    arrays between ``head`` and ``wpos`` (monotone write cursor, no
    wraparound); when a row runs out of columns the live entries of all
    rows are compacted to the front — every entry still enters and
    leaves at most once, exactly like the scalar deque.
    """

    stateful = True

    def __init__(self, estimator: LuoEstimator, pool: SoAPool):
        super().__init__(estimator, pool)
        self.speed_window = estimator.speed_window
        self._cap = 8
        self._rows = pool.capacity
        self.ew = np.zeros((self._rows, self._cap))
        self.dw = np.zeros((self._rows, self._cap))
        self.head = np.zeros(self._rows, dtype=np.int64)
        self.wpos = np.zeros(self._rows, dtype=np.int64)

    @property
    def count(self) -> np.ndarray:
        return self.wpos - self.head

    def pack(self, slot: int) -> None:
        if slot >= self._rows:
            rows = max(slot + 1, self._rows * 2)
            for name in ("ew", "dw"):
                out = np.zeros((rows, self._cap))
                out[: self._rows] = getattr(self, name)
                setattr(self, name, out)
            for name in ("head", "wpos"):
                out = np.zeros(rows, dtype=np.int64)
                out[: self._rows] = getattr(self, name)
                setattr(self, name, out)
            self._rows = rows
        self.head[slot] = self.wpos[slot] = 0

    release = pack  # freeing and re-initializing a ring are the same reset

    def unpack(self, slot: int) -> LuoWindowState:
        state = LuoWindowState(self.pool.metas[slot])
        state.window = deque(
            (float(self.ew[slot, j]), float(self.dw[slot, j]))
            for j in range(self.head[slot], self.wpos[slot]))
        return state

    def _compact(self) -> None:
        count = self.count
        maxc = int(count.max()) if len(count) else 0
        cap = self._cap
        while cap // 2 >= maxc + 1 and cap > 8:
            cap //= 2
        while cap < maxc + 1:
            cap *= 2
        take = np.minimum(self.head[:, None] + np.arange(max(maxc, 1)),
                          self._cap - 1)
        rows = np.arange(self._rows)[:, None]
        new_ew = np.zeros((self._rows, cap))
        new_dw = np.zeros((self._rows, cap))
        if maxc:
            new_ew[:, :maxc] = self.ew[rows, take]
            new_dw[:, :maxc] = self.dw[rows, take]
        self.ew, self.dw = new_ew, new_dw
        self.head[:] = 0
        self.wpos = count
        self._cap = cap

    def advance(self, batch: FlushBatch,
                row_mask: np.ndarray | None = None) -> np.ndarray:
        """Advance the rings over a flush's rows, in per-slot tick order.

        ``row_mask`` restricts to rows whose slot still carries a live
        LUO state; other rows are left at 0 (their value is never read).
        """
        out = np.zeros(len(batch))
        # per-row tick-invariant inputs, shared across the ordinal loop
        done = batch.bytes_done
        elapsed = batch.times - batch.meta_rows("t_start")
        base = (batch.rowsum("driver", batch.totals * batch.meta_rows("widths"))
                + batch.meta_rows("mat_bytes"))
        alpha = batch.driver_value("driver")
        extrapolated = base.copy()
        np.divide(done, alpha, out=extrapolated, where=alpha > 1e-9)
        total = np.maximum(alpha * extrapolated + (1.0 - alpha) * base, done)
        window = self.speed_window
        for idx in batch.ordinals:
            if row_mask is not None:
                idx = idx[row_mask[idx]]
            if not len(idx):
                continue
            sl = batch.slots[idx]
            el = elapsed[idx]
            dn = done[idx]
            if (self.wpos[sl] >= self._cap).any():
                self._compact()
            self.ew[sl, self.wpos[sl]] = el
            self.dw[sl, self.wpos[sl]] = dn
            self.wpos[sl] += 1
            active = el > 0  # scalar path returns 0.0 before popping
            while True:
                pop = (active & (self.count[sl] > 1)
                       & (el - self.ew[sl, self.head[sl]] > window))
                if not pop.any():
                    break
                self.head[sl[pop]] += 1
            dt = el - self.ew[sl, self.head[sl]]
            db = dn - self.dw[sl, self.head[sl]]
            speed = np.zeros(len(idx))
            fast = (dt > 0) & (db > 0)
            np.divide(db, dt, out=speed, where=fast)
            lifetime = ~fast & (dn > 0) & active
            np.divide(dn, el, out=speed, where=lifetime)
            remaining = np.maximum(total[idx] - dn, 0.0)
            moving = speed > 0
            rt = np.zeros(len(idx))
            np.divide(remaining, speed, out=rt, where=moving)
            est = np.zeros(len(idx))
            np.divide(el, el + rt, out=est, where=moving & active)
            np.clip(est, 0.0, 1.0, out=est)
            value = np.where(moving, est,
                             np.where(remaining > 0, 0.0, 1.0))
            out[idx] = np.where(active, value, 0.0)
        return out


#: exact scalar classes each kernel mirrors; subclasses fall back to the
#: scalar path (their overridden behaviour cannot be assumed vectorizable)
_NATIVE = {
    DNEEstimator: _BatchedDNE,
    BatchDNEEstimator: _BatchedBatchDNE,
    DNESeekEstimator: _BatchedDNESeek,
    TGNEstimator: _BatchedTGN,
    TGNIntEstimator: _BatchedTGNInt,
    RefinedTGNEstimator: _BatchedRefinedTGN,
    PMaxEstimator: _BatchedPMax,
    SafeEstimator: _BatchedSafe,
    GetNextOracle: _BatchedGetNext,
    BytesProcessedOracle: _BatchedBytesOracle,
    LuoEstimator: BatchedLuoState,
}


def batched_states(estimators: dict[str, object], pool: SoAPool
                   ) -> dict[str, BatchedStreamState] | None:
    """Batched state per estimator kind, or ``None`` if any kind has no
    native SoA kernel (callers then keep the scalar path)."""
    out: dict[str, BatchedStreamState] = {}
    for name, est in estimators.items():
        cls = _NATIVE.get(type(est))
        if cls is None:
            return None
        out[name] = cls(est, pool)
    return out
