"""Incremental (streaming) estimation: per-tick inputs and pipeline metadata.

The batch interface of :class:`~repro.progress.base.ProgressEstimator`
(:meth:`estimate`) consumes a whole :class:`~repro.engine.run.PipelineRun`
and recomputes every observation's estimate — O(T·m) per call, O(T²·m)
when an online monitor calls it once per tick.  The streaming interface
splits the same computation along the time axis:

* a :class:`PipelineMeta` captures everything about a pipeline that is
  *immutable once the pipeline starts* — operator kinds, optimizer
  estimates, row widths, table cardinalities, the driver mask;
* an :class:`ObsTick` carries one observation's mutable slice — the
  counter/bound rows plus the engine's *current-knowledge* totals ``N``;
* ``estimator.begin(meta)`` builds a per-pipeline state and
  ``estimator.advance(state, tick)`` folds one observation into it,
  returning the estimate at that tick in O(active nodes).

The batch path stays the oracle: for every estimator, advancing a state
over a run's ticks must reproduce ``estimate(pr)`` bit-for-bit
(:func:`stream_estimates` is the reference driver the parity tests and
the fuzz oracle's incremental layer use).  The helpers here mirror the
batch formulas operation-for-operation — same masks, same reduction
order, same ``safe_divide``/``clip`` calls — so the equality is exact,
not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.run import (
    _KNOWN_SOURCE_OPS,
    _MATERIALIZED_OPS,
    PipelineRun,
)
from repro.plan.nodes import Op


class PipelineMeta:
    """Immutable per-pipeline metadata shared by all streaming states.

    Mirrors the time-invariant fields of :class:`PipelineRun`; the derived
    index arrays pre-resolve the per-node branches of
    :meth:`PipelineRun.known_totals` so :func:`tick_known_totals` is a
    couple of vectorized assignments per tick.
    """

    __slots__ = (
        "pid", "query_name", "db_name", "t_start", "node_ids", "ops",
        "E0", "widths", "table_rows", "driver_mask", "parent_local",
        "materialized_bytes_est", "oracle_bytes_total",
        "known_source_idx", "materialized_idx",
        "mat_idx", "mat_child_ids",
    )

    def __init__(self, pid: int, query_name: str, db_name: str,
                 t_start: float, node_ids: np.ndarray, ops: list[Op],
                 E0: np.ndarray, widths: np.ndarray, table_rows: np.ndarray,
                 driver_mask: np.ndarray, parent_local: np.ndarray,
                 materialized_bytes_est: float = 0.0,
                 oracle_bytes_total: float | None = None,
                 mat_children: list[tuple[int, int]] | None = None):
        self.pid = pid
        self.query_name = query_name
        self.db_name = db_name
        self.t_start = t_start
        self.node_ids = node_ids
        self.ops = ops
        self.E0 = E0
        self.widths = widths
        self.table_rows = table_rows
        self.driver_mask = driver_mask
        self.parent_local = parent_local
        self.materialized_bytes_est = materialized_bytes_est
        #: true total bytes of the pipeline, only known for *completed*
        #: runs — lets the §6.7 Bytes-Processed oracle stream (see
        #: :class:`~repro.progress.gold.BytesProcessedOracle`)
        self.oracle_bytes_total = oracle_bytes_total
        self.known_source_idx = np.array(
            [j for j, op in enumerate(ops)
             if op in _KNOWN_SOURCE_OPS and np.isfinite(table_rows[j])],
            dtype=np.int64)
        self.materialized_idx = np.array(
            [j for j, op in enumerate(ops) if op in _MATERIALIZED_OPS],
            dtype=np.int64)
        # (local index, global child node id) pairs for blocking sources
        # whose totals become exact once the *out-of-pipeline* build child
        # finishes — consumed by the monitor's per-tick N computation
        pairs = mat_children or []
        self.mat_idx = np.array([j for j, _ in pairs], dtype=np.int64)
        self.mat_child_ids = np.array([c for _, c in pairs], dtype=np.int64)

    @property
    def n_nodes(self) -> int:
        return len(self.ops)

    @classmethod
    def from_pipeline_run(cls, pr: PipelineRun) -> "PipelineMeta":
        """Metadata of a *completed* pipeline run.

        Includes the oracle byte total, so even the non-causal §6.7
        Bytes-Processed model streams to the bit-identical trajectory its
        batch ``estimate`` produces on this run.
        """
        if pr.n_observations:
            mask = pr.driver_mask
            oracle_bytes = float(
                (pr.K[-1, mask] * pr.widths[mask]).sum() + pr.W[-1].sum())
        else:
            oracle_bytes = 0.0
        return cls(
            pid=pr.pid, query_name=pr.query_name, db_name=pr.db_name,
            t_start=pr.t_start, node_ids=pr.node_ids, ops=pr.ops,
            E0=pr.E0, widths=pr.widths, table_rows=pr.table_rows,
            driver_mask=pr.driver_mask, parent_local=pr.parent_local,
            materialized_bytes_est=pr.materialized_bytes_est,
            oracle_bytes_total=oracle_bytes,
        )


@dataclass(slots=True)
class ObsTick:
    """One observation's slice of a pipeline: the streaming unit of work.

    All arrays are ``(m,)`` over the pipeline's member nodes (the same
    local order as :class:`PipelineMeta`); ``N`` is the engine's best
    *current* knowledge of per-node totals at this tick — fixed true
    totals when streaming a completed run, the live ``n_partial`` rule
    (finished node → its counter, blocked source with finished build →
    the build's counter, else ``E0``) when streaming online.
    """

    time: float
    K: np.ndarray
    R: np.ndarray
    W: np.ndarray
    LB: np.ndarray
    UB: np.ndarray
    N: np.ndarray


def tick_known_totals(meta: PipelineMeta, tick: ObsTick) -> np.ndarray:
    """Per-tick mirror of :meth:`PipelineRun.known_totals`."""
    totals = meta.E0.copy()
    idx = meta.known_source_idx
    if len(idx):
        totals[idx] = meta.table_rows[idx]
    idx = meta.materialized_idx
    if len(idx):
        totals[idx] = tick.N[idx]
    return totals


def tick_driver_consumed(meta: PipelineMeta, tick: ObsTick,
                         extra_mask: np.ndarray | None = None
                         ) -> tuple[float, float]:
    """Per-tick mirror of :func:`repro.progress.base.driver_consumed`."""
    mask = meta.driver_mask
    if extra_mask is not None:
        mask = mask | extra_mask
    totals = tick_known_totals(meta, tick)
    denom = float(totals[mask].sum())
    consumed = tick.K[mask].sum()
    return consumed, denom


def tick_driver_fraction(meta: PipelineMeta, tick: ObsTick) -> float:
    """Per-tick mirror of :meth:`PipelineRun.driver_fraction`."""
    consumed, denom = tick_driver_consumed(meta, tick)
    if denom <= 0:
        return 0.0
    return float(np.clip(consumed / denom, 0.0, 1.0))


def iter_ticks(pr: PipelineRun):
    """The tick sequence of a completed run (``N`` fixed at the truth)."""
    for t in range(pr.n_observations):
        yield ObsTick(time=float(pr.times[t]), K=pr.K[t], R=pr.R[t],
                      W=pr.W[t], LB=pr.LB[t], UB=pr.UB[t], N=pr.N)


def stream_estimates(estimator, pr: PipelineRun,
                     meta: PipelineMeta | None = None) -> np.ndarray:
    """Drive ``estimator``'s incremental path over a completed run.

    The reference driver for incremental-vs-batch parity: the returned
    trajectory must equal ``estimator.estimate(pr)`` bit-for-bit.
    """
    meta = meta or PipelineMeta.from_pipeline_run(pr)
    state = estimator.begin(meta)
    return np.array([estimator.advance(state, tick)
                     for tick in iter_ticks(pr)])
