"""Candidate progress estimators (paper §3.4 and §5) and error metrics.

All estimators are pure functions of a pipeline's counter trajectories
(:class:`~repro.engine.run.PipelineRun`) and are *causal*: the estimate at
observation ``t`` depends only on counters up to ``t``, so the same
trajectory can be replayed online (see :mod:`repro.core.monitor`).

Every estimator also exposes an *incremental* path (``begin``/``advance``,
:mod:`repro.progress.streaming`) that folds one observation at a time in
O(active nodes) and matches the batch ``estimate`` bit-for-bit — the form
the online monitor and the pooled service consume.

Implemented estimators:

=============  =============================================================
``dne``        Driver-Node estimator, Chaudhuri et al. [6] (eq. 4)
``tgn``        Total-GetNext estimator with bound refinement [6] (eq. 3)
``luo``        Bytes-Processed / speed estimator, Luo et al. [13]
``pmax``       Pessimistic worst-case estimator of [5] (reconstruction)
``safe``       Worst-case-ratio-optimal estimator of [5] (reconstruction)
``batch_dne``  DNE + batch sorts as driver nodes (paper §5.1, eq. 6)
``dne_seek``   DNE + index seeks as driver nodes (paper §5.1.1, eq. 7)
``tgn_int``    TGN with Luo-style cardinality interpolation (§5.2, eq. 8)
=============  =============================================================

plus the two idealized §6.7 models in :mod:`repro.progress.gold` (the
GetNext model with true ``N_i`` and the Bytes-Processed model with true
byte totals).
"""

from repro.progress.base import (
    BatchReplayState,
    ProgressEstimator,
    StreamState,
)
from repro.progress.batchdne import BatchDNEEstimator
from repro.progress.dne import DNEEstimator
from repro.progress.dneseek import DNESeekEstimator
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.luo import LuoEstimator
from repro.progress.metrics import (
    ErrorReport,
    error_matrix,
    l1_error,
    l2_error,
    near_optimal_mask,
    ratio_error,
    significantly_outperforms,
)
from repro.progress.registry import (
    all_estimators,
    estimator_by_name,
    novel_estimators,
    original_estimators,
    worst_case_estimators,
)
from repro.progress.safe_pmax import PMaxEstimator, SafeEstimator
from repro.progress.streaming import (
    ObsTick,
    PipelineMeta,
    iter_ticks,
    stream_estimates,
)
from repro.progress.tgn import TGNEstimator
from repro.progress.tgnint import TGNIntEstimator

__all__ = [
    "ProgressEstimator",
    "StreamState",
    "BatchReplayState",
    "ObsTick",
    "PipelineMeta",
    "iter_ticks",
    "stream_estimates",
    "DNEEstimator",
    "TGNEstimator",
    "LuoEstimator",
    "PMaxEstimator",
    "SafeEstimator",
    "BatchDNEEstimator",
    "DNESeekEstimator",
    "TGNIntEstimator",
    "GetNextOracle",
    "BytesProcessedOracle",
    "l1_error",
    "l2_error",
    "ratio_error",
    "error_matrix",
    "ErrorReport",
    "near_optimal_mask",
    "significantly_outperforms",
    "original_estimators",
    "novel_estimators",
    "worst_case_estimators",
    "all_estimators",
    "estimator_by_name",
]
