"""Online cardinality refinement (paper §3.3).

Two refinement strategies from the literature:

* :func:`bounded_estimates` — [6]: clamp the optimizer estimate ``E_i`` into
  the worst-case bounds ``[LB_i, UB_i]`` maintained by the engine; if the
  estimate ever falls outside, it snaps to the nearest boundary.
* :func:`interpolated_estimates` — [13]: measure the fraction α of the
  dominant (driver) input consumed (eq. 1), extrapolate each node's total as
  ``K_l / α``, and blend ``E_l^new = α · (K_l/α) + (1-α) · E_l`` (eq. 2),
  reflecting growing confidence in the extrapolation as α -> 1.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import safe_divide


def bounded_estimates(pr: PipelineRun) -> np.ndarray:
    """``(T, m)`` estimates: ``E_i^0`` clamped into ``[LB_i^t, UB_i^t]``."""
    e0 = np.broadcast_to(pr.E0, pr.K.shape)
    return np.clip(e0, pr.LB, pr.UB)


def driver_alpha(pr: PipelineRun) -> np.ndarray:
    """Fraction of dominant input consumed, α of eq. (1), per observation."""
    return pr.driver_fraction()


def interpolated_estimates(pr: PipelineRun) -> np.ndarray:
    """``(T, m)`` estimates refined by Luo-style interpolation (eq. 2)."""
    alpha = driver_alpha(pr)[:, None]          # (T, 1)
    extrapolated = safe_divide(pr.K, np.maximum(alpha, 1e-9))
    e0 = np.broadcast_to(pr.E0, pr.K.shape)
    refined = alpha * extrapolated + (1.0 - alpha) * e0
    # Never below what has already been observed.
    return np.maximum(refined, pr.K)
