"""Error metrics and (near-)optimality rules (paper §6).

The paper's headline metric is the absolute difference between estimated
and true (time-based) progress, averaged over a pipeline's observations —
reported in both L1 and L2 norms.  Ratio error is retained for the
worst-case discussion.  §6.6 defines the tolerance rules used for
"(close to) optimal" and "significantly outperforms", reproduced here
verbatim (absolute tolerance 0.01, relative tolerance 1%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import ProgressEstimator

ABS_TOLERANCE = 0.01
REL_TOLERANCE = 0.01


def l1_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute deviation over the observations."""
    if len(estimate) == 0:
        return 0.0
    return float(np.mean(np.abs(estimate - truth)))


def l2_error(estimate: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square deviation over the observations."""
    if len(estimate) == 0:
        return 0.0
    return float(np.sqrt(np.mean((estimate - truth) ** 2)))


def ratio_error(estimate: np.ndarray, truth: np.ndarray,
                floor: float = 1e-3) -> float:
    """Worst multiplicative deviation max(est/true, true/est) over time."""
    if len(estimate) == 0:
        return 1.0
    est = np.maximum(estimate, floor)
    tru = np.maximum(truth, floor)
    return float(np.max(np.maximum(est / tru, tru / est)))


@dataclass
class ErrorReport:
    """Errors of one estimator on one pipeline."""

    estimator: str
    l1: float
    l2: float
    ratio: float


def evaluate_pipeline(pr: PipelineRun,
                      estimators: list[ProgressEstimator]) -> list[ErrorReport]:
    """Score every estimator against the pipeline's time-based truth."""
    truth = pr.true_progress()
    reports = []
    for est in estimators:
        values = est.estimate(pr)
        reports.append(ErrorReport(
            estimator=est.name,
            l1=l1_error(values, truth),
            l2=l2_error(values, truth),
            ratio=ratio_error(values, truth),
        ))
    return reports


def error_matrix(pipeline_runs: list[PipelineRun],
                 estimators: list[ProgressEstimator],
                 metric: str = "l1") -> np.ndarray:
    """``(n_pipelines, n_estimators)`` error matrix for one metric."""
    if metric not in ("l1", "l2", "ratio"):
        raise ValueError(f"unknown metric {metric!r}")
    rows = []
    for pr in pipeline_runs:
        reports = evaluate_pipeline(pr, estimators)
        rows.append([getattr(r, metric) for r in reports])
    return np.asarray(rows, dtype=np.float64).reshape(len(rows), len(estimators))


def near_optimal_mask(errors: np.ndarray, abs_tol: float = ABS_TOLERANCE,
                      rel_tol: float = REL_TOLERANCE) -> np.ndarray:
    """§6.6's "(close to) optimal" rule, rowwise over an error matrix.

    An estimator is near-optimal on a pipeline when it (a) is the optimum,
    (b) is within ``abs_tol`` of the optimum absolutely, or (c) is within
    ``rel_tol`` of the optimum relatively.
    """
    errors = np.atleast_2d(errors)
    best = errors.min(axis=1, keepdims=True)
    return ((errors <= best + abs_tol)
            | (errors <= best * (1.0 + rel_tol)))


def significantly_outperforms(errors: np.ndarray,
                              abs_margin: float = ABS_TOLERANCE,
                              rel_margin: float = REL_TOLERANCE) -> np.ndarray:
    """§6.6's "significantly outperforms all others" rule.

    Returns, per row, the index of the estimator that (a) has the lowest
    error, (b) beats the runner-up by more than ``abs_margin`` absolutely
    and (c) by more than ``rel_margin`` relatively — or ``-1`` when no
    estimator qualifies.
    """
    errors = np.atleast_2d(errors)
    order = np.argsort(errors, axis=1)
    best_idx = order[:, 0]
    rows = np.arange(len(errors))
    best = errors[rows, best_idx]
    second = errors[rows, order[:, 1]] if errors.shape[1] > 1 else np.inf
    wins = (second - best > abs_margin) & (second > best * (1.0 + rel_margin))
    return np.where(wins, best_idx, -1)
