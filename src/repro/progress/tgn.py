"""The Total-GetNext estimator (TGN) of [6], eq. (3).

``TGN = Σ_i K_i / Σ_i E_i`` over all nodes of the pipeline, with the
``E_i`` refined online by the worst-case bounds of §3.3.  TGN accounts for
work at intermediate nodes but inherits every cardinality-estimation error
in the denominator — the paper's §4.4.1 derives its error as a weighted
function of ``N_i - E_i``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    safe_divide,
)
from repro.progress.refine import bounded_estimates
from repro.progress.streaming import ObsTick, PipelineMeta


class TGNEstimator(ProgressEstimator):
    name = "tgn"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        done = pr.K.sum(axis=1)
        totals = bounded_estimates(pr).sum(axis=1)
        return clip_progress(safe_divide(done, totals))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        done = tick.K.sum()
        totals = np.clip(state.meta.E0, tick.LB, tick.UB).sum()
        return float(clip_progress(safe_divide(done, totals)))
