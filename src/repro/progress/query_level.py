"""Query-level progress from per-pipeline estimators (paper eq. 5).

Estimator selection operates per pipeline; the progress of the whole
query is the ΣE-weighted combination of the pipelines' estimates:

``DNE_Q = Σ_Pj DNE_Pj · (Σ_{i∈Pj} E_i / Σ_{i∈Nodes(Q)} E_i)``

(and identically for any other per-pipeline estimator, or for a *mixed*
assignment where each pipeline uses the estimator the selector chose for
it).  This module evaluates that combination offline over a recorded
:class:`~repro.engine.run.QueryRun`: at every observation, pipelines that
have finished contribute their full weight, the active pipeline
contributes its estimate, and future pipelines contribute nothing — the
deployable semantics of :class:`repro.core.monitor.ProgressMonitor`, made
reproducible for evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import QueryRun
from repro.progress.base import ProgressEstimator


def pipeline_weights(run: QueryRun) -> dict[int, float]:
    """ΣE_i of each pipeline, normalized over the whole plan (eq. 5)."""
    est_by_node = {n.node_id: max(n.est_rows, 0.0) for n in run.nodes}
    total = sum(est_by_node.values()) or 1.0
    return {p.pid: sum(est_by_node[i] for i in p.node_ids) / total
            for p in run.pipelines}


def query_progress(run: QueryRun,
                   assignment: dict[int, ProgressEstimator],
                   min_observations: int = 3) -> np.ndarray:
    """Query-level progress trajectory under a per-pipeline assignment.

    ``assignment`` maps pipeline id -> estimator; pipelines without an
    entry (or too short to score) contribute step functions (0 before
    their window, their weight after), which is also how un-scorable
    build pipelines behave in the online monitor.
    """
    weights = pipeline_weights(run)
    total = np.zeros(len(run.times))
    for info in run.pipelines:
        weight = weights[info.pid]
        if weight <= 0 or not info.executed:
            continue
        pr = run.pipeline_run(info.pid, min_observations=min_observations)
        contribution = np.zeros(len(run.times))
        after = run.times > info.t_end
        contribution[after] = 1.0
        inside = (run.times >= info.t_start) & ~after
        if pr is not None and assignment.get(info.pid) is not None:
            estimate = assignment[info.pid].estimate(pr)
            lookup = np.searchsorted(pr.times, run.times[inside], side="right") - 1
            lookup = np.clip(lookup, 0, len(estimate) - 1)
            contribution[inside] = estimate[lookup]
        else:
            # unscored pipeline: linear-in-window fallback
            span = max(info.duration, 1e-12)
            contribution[inside] = (run.times[inside] - info.t_start) / span
        total += weight * contribution
    return np.clip(total, 0.0, 1.0)


def uniform_assignment(run: QueryRun,
                       estimator: ProgressEstimator) -> dict[int, ProgressEstimator]:
    """Use one estimator for every pipeline (the pre-selection baseline)."""
    return {p.pid: estimator for p in run.pipelines}


def query_level_error(run: QueryRun,
                      assignment: dict[int, ProgressEstimator],
                      norm: int = 1) -> float:
    """L1/L2 error of the combined query progress vs time-based truth."""
    estimate = query_progress(run, assignment)
    truth = run.true_progress()
    if norm == 1:
        return float(np.mean(np.abs(estimate - truth)))
    if norm == 2:
        return float(np.sqrt(np.mean((estimate - truth) ** 2)))
    raise ValueError("norm must be 1 or 2")
