"""DNESEEK: DNE with index seeks among the driver nodes (paper §5.1.1, eq. 7).

Skewed inner-side distributions make the per-outer-tuple work of nested
iterations vary wildly; adding the INDEX_SEEK nodes (whose totals are the
optimizer's join-size estimates) to the driver set lets the estimator see
that work directly — at the price of inheriting the seek cardinality
estimate in the denominator.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.plan.nodes import Op
from repro.progress.base import (
    ProgressEstimator,
    clip_progress,
    driver_consumed,
    safe_divide,
)
from repro.progress.batchdne import _WidenedDriverState
from repro.progress.streaming import ObsTick, PipelineMeta, tick_driver_consumed


class DNESeekEstimator(ProgressEstimator):
    name = "dne_seek"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        extra = pr.node_mask(Op.INDEX_SEEK)
        consumed, total = driver_consumed(pr, extra_mask=extra)
        return clip_progress(safe_divide(consumed, total))

    def begin(self, meta: PipelineMeta) -> _WidenedDriverState:
        return _WidenedDriverState(meta, Op.INDEX_SEEK)

    def advance(self, state: _WidenedDriverState, tick: ObsTick) -> float:
        consumed, total = tick_driver_consumed(state.meta, tick,
                                               extra_mask=state.extra)
        return float(clip_progress(safe_divide(consumed, total)))
