"""TGNINT: TGN with cardinality interpolation (paper §5.2, eq. 8).

Adopts the refinement strategy of [13] inside the Total-GetNext estimator:

``TGNINT = ΣK_i / (ΣK_i + (1 - DNE) · ΣE_i)``

As the pipeline's dominant input is consumed (DNE -> 1), the denominator
collapses to the work already observed, letting the estimator recover from
cardinality errors late in the pipeline — the behaviour Figure 7 rewards.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    safe_divide,
)
from repro.progress.dne import DNEEstimator
from repro.progress.streaming import ObsTick, PipelineMeta


class TGNIntEstimator(ProgressEstimator):
    name = "tgn_int"

    def __init__(self) -> None:
        self._dne = DNEEstimator()

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        k_sum = pr.K.sum(axis=1)
        e_sum = float(pr.E0.sum())
        dne = self._dne.estimate(pr)
        denom = k_sum + (1.0 - dne) * e_sum
        return clip_progress(safe_divide(k_sum, np.maximum(denom, 1e-12)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        k_sum = tick.K.sum()
        e_sum = float(state.meta.E0.sum())
        dne = self._dne.advance(state, tick)
        denom = k_sum + (1.0 - dne) * e_sum
        return float(clip_progress(safe_divide(k_sum,
                                               np.maximum(denom, 1e-12))))
