"""Estimator interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.streaming import ObsTick, PipelineMeta


class StreamState:
    """Per-(estimator, pipeline) state of the incremental path.

    Memoryless estimators — those whose tick-``t`` estimate is a pure
    function of tick ``t``'s counters and the immutable metadata — carry
    no history and leave :attr:`stateful` False, which lets the online
    monitor skip advancing them on intermediate observations.  Estimators
    that fold history (LUO's trailing speed window, the generic batch
    replay below) subclass with ``stateful = True``; those must see every
    observation of the pipeline, in order.
    """

    __slots__ = ("meta",)

    #: True when ``advance`` must be called for *every* observation
    stateful = False

    def __init__(self, meta: PipelineMeta):
        self.meta = meta


class BatchReplayState(StreamState):
    """Fallback state: accumulate ticks, re-run the batch estimator.

    Keeps third-party :class:`ProgressEstimator` subclasses working on the
    streaming interface without writing an incremental path — at the
    batch path's O(t·m)-per-tick cost, which is exactly what the native
    overrides in this package avoid.
    """

    __slots__ = ("times", "rows")
    stateful = True

    def __init__(self, meta: PipelineMeta):
        super().__init__(meta)
        self.times: list[float] = []
        self.rows: list[ObsTick] = []

    def push(self, tick: ObsTick) -> None:
        self.times.append(tick.time)
        self.rows.append(tick)

    def as_pipeline_run(self) -> PipelineRun:
        meta = self.meta

        def stack(field: str) -> np.ndarray:
            return np.vstack([getattr(r, field) for r in self.rows])

        return PipelineRun(
            pid=meta.pid,
            query_name=meta.query_name,
            db_name=meta.db_name,
            times=np.asarray(self.times),
            t_start=meta.t_start,
            t_end=self.times[-1],
            K=stack("K"), R=stack("R"), W=stack("W"),
            LB=stack("LB"), UB=stack("UB"),
            E0=meta.E0,
            N=self.rows[-1].N,
            widths=meta.widths,
            table_rows=meta.table_rows,
            ops=meta.ops,
            driver_mask=meta.driver_mask,
            parent_local=meta.parent_local,
            node_ids=meta.node_ids,
            materialized_bytes_est=meta.materialized_bytes_est,
        )


class ProgressEstimator(ABC):
    """A progress estimator over one pipeline's counter trajectories.

    Subclasses implement :meth:`estimate`, returning the estimated progress
    (in ``[0, 1]``) at every observation of the pipeline.  Estimates must be
    causal — the value at index ``t`` may only use counters at indices
    ``<= t`` — so trajectories can be replayed incrementally online.

    The incremental path (:meth:`begin` / :meth:`advance`) consumes one
    observation at a time and returns the current tick's estimate in
    O(active nodes); :meth:`estimate` stays the oracle it must match
    bit-for-bit (see :mod:`repro.progress.streaming`).  The default
    implementation replays the batch path over accumulated ticks; every
    estimator in this package overrides it with a true O(m) step.
    """

    #: short identifier used in reports, feature names and the registry
    name: str = "base"

    @abstractmethod
    def estimate(self, pr: PipelineRun) -> np.ndarray:
        """Estimated progress per observation, clipped to ``[0, 1]``."""

    def begin(self, meta: PipelineMeta) -> StreamState:
        """Fresh incremental state for one pipeline."""
        return BatchReplayState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        """Fold one observation into ``state``; the estimate at ``tick``."""
        state.push(tick)
        return float(self.estimate(state.as_pipeline_run())[-1])

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def clip_progress(values: np.ndarray) -> np.ndarray:
    """Clamp raw estimates into the reportable progress range."""
    return np.clip(values, 0.0, 1.0)


def safe_divide(num: np.ndarray, denom: np.ndarray | float) -> np.ndarray:
    """Elementwise division that maps x/0 to 0 (pipelines yet to start)."""
    denom_arr = np.asarray(denom, dtype=np.float64)
    num_arr = np.asarray(num, dtype=np.float64)
    out = np.zeros(np.broadcast(num_arr, denom_arr).shape)
    np.divide(num_arr, denom_arr, out=out, where=denom_arr > 0)
    return out


def driver_consumed(pr: PipelineRun, extra_mask: np.ndarray | None = None
                    ) -> tuple[np.ndarray, float]:
    """Numerator/denominator of driver-style estimators.

    Returns ``(sum of K over driver nodes per observation, sum of totals)``.
    ``extra_mask`` widens the driver set (BATCHDNE / DNESEEK variants).
    """
    mask = pr.driver_mask.copy()
    if extra_mask is not None:
        mask |= extra_mask
    totals = pr.known_totals()
    denom = float(totals[mask].sum())
    consumed = pr.K[:, mask].sum(axis=1)
    return consumed, denom
