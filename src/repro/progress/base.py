"""Estimator interface and shared helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.engine.run import PipelineRun


class ProgressEstimator(ABC):
    """A progress estimator over one pipeline's counter trajectories.

    Subclasses implement :meth:`estimate`, returning the estimated progress
    (in ``[0, 1]``) at every observation of the pipeline.  Estimates must be
    causal — the value at index ``t`` may only use counters at indices
    ``<= t`` — so trajectories can be replayed incrementally online.
    """

    #: short identifier used in reports, feature names and the registry
    name: str = "base"

    @abstractmethod
    def estimate(self, pr: PipelineRun) -> np.ndarray:
        """Estimated progress per observation, clipped to ``[0, 1]``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


def clip_progress(values: np.ndarray) -> np.ndarray:
    """Clamp raw estimates into the reportable progress range."""
    return np.clip(values, 0.0, 1.0)


def safe_divide(num: np.ndarray, denom: np.ndarray | float) -> np.ndarray:
    """Elementwise division that maps x/0 to 0 (pipelines yet to start)."""
    denom_arr = np.asarray(denom, dtype=np.float64)
    num_arr = np.asarray(num, dtype=np.float64)
    out = np.zeros(np.broadcast(num_arr, denom_arr).shape)
    np.divide(num_arr, denom_arr, out=out, where=denom_arr > 0)
    return out


def driver_consumed(pr: PipelineRun, extra_mask: np.ndarray | None = None
                    ) -> tuple[np.ndarray, float]:
    """Numerator/denominator of driver-style estimators.

    Returns ``(sum of K over driver nodes per observation, sum of totals)``.
    ``extra_mask`` widens the driver set (BATCHDNE / DNESEEK variants).
    """
    mask = pr.driver_mask.copy()
    if extra_mask is not None:
        mask |= extra_mask
    totals = pr.known_totals()
    denom = float(totals[mask].sum())
    consumed = pr.K[:, mask].sum(axis=1)
    return consumed, denom
