"""Extension estimator: TGN over per-node interpolated estimates (§7).

The paper's outlook singles out "the study of better online cardinality
refinement" as the most promising direction, given how close the
idealized GetNext model (§6.7) gets with perfect cardinalities.  This
estimator pushes the Luo-style interpolation of §3.3 *into every node's
estimate* (rather than TGNINT's aggregate shortcut, eq. 8):

``TGNREF = Σ K_i / Σ Ē_i(t)``  with  ``Ē_i(t) = α·(K_i/α) + (1-α)·E_i``
clamped into the online bounds ``[LB_i, UB_i]``.

It is registered as an *extension* (not part of the paper's §6 pools) and
evaluated in ``benchmarks/bench_refinement_study.py``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    safe_divide,
)
from repro.progress.refine import interpolated_estimates
from repro.progress.streaming import ObsTick, PipelineMeta, tick_driver_fraction


class RefinedTGNEstimator(ProgressEstimator):
    name = "tgn_ref"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        refined = np.clip(interpolated_estimates(pr), pr.LB, pr.UB)
        done = pr.K.sum(axis=1)
        totals = refined.sum(axis=1)
        return clip_progress(safe_divide(done, np.maximum(totals, 1e-12)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        # per-tick mirror of interpolated_estimates (refine.py, eq. 2)
        alpha = tick_driver_fraction(state.meta, tick)
        extrapolated = safe_divide(tick.K, np.maximum(alpha, 1e-9))
        refined = alpha * extrapolated + (1.0 - alpha) * state.meta.E0
        refined = np.clip(np.maximum(refined, tick.K), tick.LB, tick.UB)
        done = tick.K.sum()
        totals = refined.sum()
        return float(clip_progress(safe_divide(done,
                                               np.maximum(totals, 1e-12))))
