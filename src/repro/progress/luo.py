"""The Bytes-Processed / speed estimator of Luo et al. [13] (LUO).

Luo's model measures *bytes processed* per segment — bytes read at the
dominant (driver) inputs plus bytes written at the segment output (spills
included) — and converts the remainder into time by dividing through the
processing speed observed over the last ``T`` seconds (the paper uses
T = 10).  We report it as a progress fraction the way the paper compares
estimators:

``progress(t) = elapsed / (elapsed + remaining_bytes / speed(t))``

Remaining bytes use the interpolation refinement of §3.3 applied to the
byte totals (eq. 2 with α = fraction of driver input consumed).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import ProgressEstimator, StreamState, clip_progress
from repro.progress.streaming import (
    ObsTick,
    PipelineMeta,
    tick_driver_fraction,
    tick_known_totals,
)

#: trailing window (simulated seconds) over which speed is measured
DEFAULT_SPEED_WINDOW = 10.0


def bytes_done(pr: PipelineRun) -> np.ndarray:
    """Bytes processed so far: driver input bytes + bytes written."""
    driver_bytes = (pr.K[:, pr.driver_mask]
                    * pr.widths[pr.driver_mask]).sum(axis=1)
    written = pr.W.sum(axis=1)
    return driver_bytes + written


def bytes_total_estimate(pr: PipelineRun) -> np.ndarray:
    """Refined total-bytes estimate per observation (interpolated)."""
    totals = pr.known_totals()
    base = float((totals[pr.driver_mask] * pr.widths[pr.driver_mask]).sum()
                 + pr.materialized_bytes_est)
    done = bytes_done(pr)
    alpha = pr.driver_fraction()
    extrapolated = np.where(alpha > 1e-9, done / np.maximum(alpha, 1e-9), base)
    refined = alpha * extrapolated + (1.0 - alpha) * base
    return np.maximum(refined, done)


class LuoWindowState(StreamState):
    """Streaming state: the trailing (elapsed, bytes-done) speed window.

    The deque holds the observations the batch loop's ``window_start``
    pointer has not yet skipped; each observation enters and leaves at
    most once, so :meth:`LuoEstimator.advance` is amortized O(1) on top
    of the O(m) per-tick byte sums.
    """

    __slots__ = ("window",)
    stateful = True

    def __init__(self, meta: PipelineMeta):
        super().__init__(meta)
        self.window: deque[tuple[float, float]] = deque()


class LuoEstimator(ProgressEstimator):
    name = "luo"

    def __init__(self, speed_window: float = DEFAULT_SPEED_WINDOW):
        self.speed_window = speed_window

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        done = bytes_done(pr)
        total = bytes_total_estimate(pr)
        elapsed = pr.times - pr.t_start
        out = np.zeros(pr.n_observations)
        window_start = 0
        for t in range(pr.n_observations):
            if elapsed[t] <= 0:
                continue
            # Advance the trailing window to cover the last `speed_window`
            # seconds (causal: only indices <= t are consulted).
            while (window_start < t
                   and elapsed[t] - elapsed[window_start] > self.speed_window):
                window_start += 1
            dt = elapsed[t] - elapsed[window_start]
            db = done[t] - done[window_start]
            if dt > 0 and db > 0:
                speed = db / dt
            elif elapsed[t] > 0 and done[t] > 0:
                speed = done[t] / elapsed[t]  # fall back to lifetime speed
            else:
                speed = 0.0
            remaining = max(total[t] - done[t], 0.0)
            if speed <= 0:
                out[t] = 0.0 if remaining > 0 else 1.0
                continue
            remaining_time = remaining / speed
            out[t] = elapsed[t] / (elapsed[t] + remaining_time)
        return clip_progress(out)

    def begin(self, meta: PipelineMeta) -> LuoWindowState:
        return LuoWindowState(meta)

    def advance(self, state: LuoWindowState, tick: ObsTick) -> float:
        meta = state.meta
        mask = meta.driver_mask
        done = (tick.K[mask] * meta.widths[mask]).sum() + tick.W.sum()
        elapsed = tick.time - meta.t_start
        state.window.append((elapsed, done))
        if elapsed <= 0:
            return 0.0
        # per-tick mirror of bytes_total_estimate
        totals = tick_known_totals(meta, tick)
        base = float((totals[mask] * meta.widths[mask]).sum()
                     + meta.materialized_bytes_est)
        alpha = tick_driver_fraction(meta, tick)
        extrapolated = done / alpha if alpha > 1e-9 else base
        total = max(alpha * extrapolated + (1.0 - alpha) * base, done)
        # the batch loop's window_start walk, one popleft per skipped entry
        window = state.window
        while len(window) > 1 and elapsed - window[0][0] > self.speed_window:
            window.popleft()
        dt = elapsed - window[0][0]
        db = done - window[0][1]
        if dt > 0 and db > 0:
            speed = db / dt
        elif done > 0:  # elapsed > 0 here; fall back to lifetime speed
            speed = done / elapsed
        else:
            speed = 0.0
        remaining = max(total - done, 0.0)
        if speed <= 0:
            return 0.0 if remaining > 0 else 1.0
        return float(clip_progress(elapsed / (elapsed + remaining / speed)))
