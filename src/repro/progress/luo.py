"""The Bytes-Processed / speed estimator of Luo et al. [13] (LUO).

Luo's model measures *bytes processed* per segment — bytes read at the
dominant (driver) inputs plus bytes written at the segment output (spills
included) — and converts the remainder into time by dividing through the
processing speed observed over the last ``T`` seconds (the paper uses
T = 10).  We report it as a progress fraction the way the paper compares
estimators:

``progress(t) = elapsed / (elapsed + remaining_bytes / speed(t))``

Remaining bytes use the interpolation refinement of §3.3 applied to the
byte totals (eq. 2 with α = fraction of driver input consumed).
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import ProgressEstimator, clip_progress

#: trailing window (simulated seconds) over which speed is measured
DEFAULT_SPEED_WINDOW = 10.0


def bytes_done(pr: PipelineRun) -> np.ndarray:
    """Bytes processed so far: driver input bytes + bytes written."""
    driver_bytes = (pr.K[:, pr.driver_mask]
                    * pr.widths[pr.driver_mask]).sum(axis=1)
    written = pr.W.sum(axis=1)
    return driver_bytes + written


def bytes_total_estimate(pr: PipelineRun) -> np.ndarray:
    """Refined total-bytes estimate per observation (interpolated)."""
    totals = pr.known_totals()
    base = float((totals[pr.driver_mask] * pr.widths[pr.driver_mask]).sum()
                 + pr.materialized_bytes_est)
    done = bytes_done(pr)
    alpha = pr.driver_fraction()
    extrapolated = np.where(alpha > 1e-9, done / np.maximum(alpha, 1e-9), base)
    refined = alpha * extrapolated + (1.0 - alpha) * base
    return np.maximum(refined, done)


class LuoEstimator(ProgressEstimator):
    name = "luo"

    def __init__(self, speed_window: float = DEFAULT_SPEED_WINDOW):
        self.speed_window = speed_window

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        done = bytes_done(pr)
        total = bytes_total_estimate(pr)
        elapsed = pr.times - pr.t_start
        out = np.zeros(pr.n_observations)
        window_start = 0
        for t in range(pr.n_observations):
            if elapsed[t] <= 0:
                continue
            # Advance the trailing window to cover the last `speed_window`
            # seconds (causal: only indices <= t are consulted).
            while (window_start < t
                   and elapsed[t] - elapsed[window_start] > self.speed_window):
                window_start += 1
            dt = elapsed[t] - elapsed[window_start]
            db = done[t] - done[window_start]
            if dt > 0 and db > 0:
                speed = db / dt
            elif elapsed[t] > 0 and done[t] > 0:
                speed = done[t] / elapsed[t]  # fall back to lifetime speed
            else:
                speed = 0.0
            remaining = max(total[t] - done[t], 0.0)
            if speed <= 0:
                out[t] = 0.0 if remaining > 0 else 1.0
                continue
            remaining_time = remaining / speed
            out[t] = elapsed[t] / (elapsed[t] + remaining_time)
        return clip_progress(out)
