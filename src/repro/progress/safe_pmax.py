"""The worst-case estimators PMAX and SAFE of Chaudhuri et al. [5].

The paper evaluates both and rules them out for practice (§6.2: PMAX
L1 ≈ 0.50, SAFE L1 ≈ 0.40 — more than twice the worst conventional
estimator) while noting their theoretical guarantees on the *ratio* error.
[5] gives constructions rather than closed forms; we reconstruct them from
the stated guarantees (documented substitution, see DESIGN.md):

* **PMAX** is the maximally *pessimistic* estimator: it assumes every node
  may still produce work up to its online upper bound, i.e. progress =
  ΣK_i / ΣUB_i — the low end of the feasible progress interval.  Its ratio
  error is bounded by how loose the bounds are (the μ factor of [5]), and
  like the paper's PMAX it underestimates progress drastically in practice.
* **SAFE** is worst-case optimal with respect to the ratio error.  The
  minimax choice inside the feasible progress interval ``[lo, hi]`` (from
  the engine's bounds on ΣN_i) is the geometric mean ``sqrt(lo · hi)``,
  which equalizes the worst-case ratio toward both ends.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    safe_divide,
)
from repro.progress.streaming import ObsTick, PipelineMeta


class PMaxEstimator(ProgressEstimator):
    name = "pmax"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        work = pr.K.sum(axis=1)
        max_work = pr.UB.sum(axis=1)
        return clip_progress(safe_divide(work, np.maximum(max_work, 1e-12)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        work = tick.K.sum()
        max_work = tick.UB.sum()
        return float(clip_progress(safe_divide(work,
                                               np.maximum(max_work, 1e-12))))


class SafeEstimator(ProgressEstimator):
    name = "safe"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        k_sum = pr.K.sum(axis=1)
        ub_sum = pr.UB.sum(axis=1)
        lb_sum = np.maximum(pr.LB.sum(axis=1), k_sum)
        lo = safe_divide(k_sum, np.maximum(ub_sum, 1e-12))
        hi = safe_divide(k_sum, np.maximum(lb_sum, 1e-12))
        return clip_progress(np.sqrt(np.maximum(lo, 0.0) * np.maximum(hi, 0.0)))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        k_sum = tick.K.sum()
        ub_sum = tick.UB.sum()
        lb_sum = np.maximum(tick.LB.sum(), k_sum)
        lo = safe_divide(k_sum, np.maximum(ub_sum, 1e-12))
        hi = safe_divide(k_sum, np.maximum(lb_sum, 1e-12))
        return float(clip_progress(
            np.sqrt(np.maximum(lo, 0.0) * np.maximum(hi, 0.0))))
