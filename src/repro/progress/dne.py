"""The DriverNode estimator (DNE) of Chaudhuri et al. [6], eq. (4).

Progress of a pipeline is the fraction of the driver-node input consumed:
``DNE = Σ_{i∈DNodes} K_i / Σ_{i∈DNodes} E_i``.  Robust to cardinality
errors above the drivers (the denominator is usually known exactly), but
blind to variance in the per-tuple work the drivers trigger downstream —
the weakness that motivates estimator selection.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    driver_consumed,
    safe_divide,
)
from repro.progress.streaming import ObsTick, PipelineMeta, tick_driver_consumed


class DNEEstimator(ProgressEstimator):
    name = "dne"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        consumed, total = driver_consumed(pr)
        return clip_progress(safe_divide(consumed, total))

    def begin(self, meta: PipelineMeta) -> StreamState:
        return StreamState(meta)

    def advance(self, state: StreamState, tick: ObsTick) -> float:
        consumed, total = tick_driver_consumed(state.meta, tick)
        return float(clip_progress(safe_divide(consumed, total)))
