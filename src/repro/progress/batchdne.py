"""BATCHDNE: DNE with batch sorts among the driver nodes (paper §5.1, eq. 6).

Partial batch sorts below nested iterations block tuple flow: the true
driver nodes can finish long before the pipeline does, so DNE saturates at
100% early (Figure 6).  Including the BATCH_SORT nodes in the driver set —
whose GetNext counts lag the raw drivers by the batched amount — restores a
usable signal for those plans.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.plan.nodes import Op
from repro.progress.base import (
    ProgressEstimator,
    StreamState,
    clip_progress,
    driver_consumed,
    safe_divide,
)
from repro.progress.streaming import ObsTick, PipelineMeta, tick_driver_consumed


class _WidenedDriverState(StreamState):
    """Driver set widened by an operator kind, resolved once per pipeline."""

    __slots__ = ("extra",)

    def __init__(self, meta: PipelineMeta, *ops: Op):
        super().__init__(meta)
        self.extra = np.array([op in ops for op in meta.ops])


class BatchDNEEstimator(ProgressEstimator):
    name = "batch_dne"

    def estimate(self, pr: PipelineRun) -> np.ndarray:
        extra = pr.node_mask(Op.BATCH_SORT)
        consumed, total = driver_consumed(pr, extra_mask=extra)
        return clip_progress(safe_divide(consumed, total))

    def begin(self, meta: PipelineMeta) -> _WidenedDriverState:
        return _WidenedDriverState(meta, Op.BATCH_SORT)

    def advance(self, state: _WidenedDriverState, tick: ObsTick) -> float:
        consumed, total = tick_driver_consumed(state.meta, tick,
                                               extra_mask=state.extra)
        return float(clip_progress(safe_divide(consumed, total)))
