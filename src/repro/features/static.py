"""Static (pre-execution) features of a pipeline (paper §4.3).

For every operator type ``op`` the paper encodes:

* ``Count_op``   — number of instances in the pipeline ([11]'s encoding),
* ``Card_op``    — summed estimated cardinality at those instances,
* ``SelAt_op``   — ``Card_op`` relative to the pipeline's total ΣE,
* ``SelAbove_op``— relative cardinality of nodes that have an ``op`` node
  somewhere *below* them (their input subtrees contain an ``op``),
* ``SelBelow_op``— relative cardinality of nodes that sit *below* an
  ``op`` node (they feed into one),

plus ``SelAtDN`` (relative cardinality of the driver nodes) and a few
pipeline-level aggregates.  Relative cardinalities are the paper's key
insight over [11]: absolute sizes matter for run-time prediction, but
progress estimation cares about *proportions*.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.plan.nodes import Op

#: Fixed operator vocabulary so feature vectors align across pipelines.
OPS_UNIVERSE: tuple[Op, ...] = (
    Op.TABLE_SCAN,
    Op.INDEX_SCAN,
    Op.INDEX_SEEK,
    Op.FILTER,
    Op.NESTED_LOOP_JOIN,
    Op.HASH_JOIN,
    Op.MERGE_JOIN,
    Op.SORT,
    Op.BATCH_SORT,
    Op.STREAM_AGG,
    Op.HASH_AGG,
    Op.TOP,
)


def _ancestor_matrix(parent_local: np.ndarray) -> np.ndarray:
    """``(m, m)`` boolean: ``anc[i, j]`` iff node *i* is an ancestor of *j*.

    Parents outside the pipeline are encoded as ``-1`` in ``parent_local``;
    ancestry is computed within the pipeline only.
    """
    m = len(parent_local)
    anc = np.zeros((m, m), dtype=bool)
    for j in range(m):
        p = parent_local[j]
        while p >= 0:
            anc[p, j] = True
            p = parent_local[p]
    return anc


def static_feature_names() -> list[str]:
    names: list[str] = []
    for op in OPS_UNIVERSE:
        for kind in ("count", "card", "sel_at", "sel_above", "sel_below"):
            names.append(f"{kind}_{op.value}")
    names += [
        "sel_at_dn",
        "n_nodes",
        "n_drivers",
        "log_total_e",
        "log_driver_e",
        "expansion",      # total E relative to driver E ("per-tuple work")
        "driver_width",   # bytes per driver row (Bytes model scale)
    ]
    return names


def static_features(pr: PipelineRun) -> dict[str, float]:
    """Compute the §4.3 features for one pipeline."""
    e0 = pr.E0
    total_e = float(e0.sum())
    denom = max(total_e, 1e-9)
    ops = np.array([op.value for op in pr.ops])
    anc = _ancestor_matrix(pr.parent_local)
    features: dict[str, float] = {}
    for op in OPS_UNIVERSE:
        at_mask = ops == op.value
        card = float(e0[at_mask].sum())
        features[f"count_{op.value}"] = float(at_mask.sum())
        features[f"card_{op.value}"] = card
        features[f"sel_at_{op.value}"] = card / denom
        if at_mask.any():
            # nodes with an `op` node below them: ancestors of op nodes
            above_mask = anc[:, at_mask].any(axis=1)
            # nodes below an `op` node: descendants of op nodes
            below_mask = anc[at_mask, :].any(axis=0)
        else:
            above_mask = np.zeros(len(ops), dtype=bool)
            below_mask = above_mask
        features[f"sel_above_{op.value}"] = float(e0[above_mask].sum()) / denom
        features[f"sel_below_{op.value}"] = float(e0[below_mask].sum()) / denom
    driver_e = float(e0[pr.driver_mask].sum())
    features["sel_at_dn"] = driver_e / denom
    features["n_nodes"] = float(pr.n_nodes)
    features["n_drivers"] = float(pr.driver_mask.sum())
    features["log_total_e"] = float(np.log1p(total_e))
    features["log_driver_e"] = float(np.log1p(max(driver_e, 0.0)))
    features["expansion"] = total_e / max(driver_e, 1e-9)
    features["driver_width"] = float(pr.widths[pr.driver_mask].mean()) \
        if pr.driver_mask.any() else 0.0
    return features
