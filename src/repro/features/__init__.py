"""Feature extraction for estimator selection (paper §4.3 and §4.4).

* :mod:`repro.features.static` — plan-shape features available before
  execution: per-operator counts and cardinalities, the relative
  selectivities ``SelAt/SelAbove/SelBelow`` per operator, ``SelAtDN`` and
  a few pipeline aggregates.
* :mod:`repro.features.dynamic` — features observed during the first 20%
  of the driver input: pairwise estimator disagreements ``DNEvsTGN_x`` and
  time-correlation features ``Cor_{est,i,x}``.
* :mod:`repro.features.vector` — the fixed-length vector encoding (about
  200 dimensions, as in the paper) with stable feature names.
"""

from repro.features.dynamic import DYNAMIC_X_PERCENTS, dynamic_features
from repro.features.static import OPS_UNIVERSE, static_features
from repro.features.vector import FeatureExtractor

__all__ = [
    "static_features",
    "dynamic_features",
    "FeatureExtractor",
    "OPS_UNIVERSE",
    "DYNAMIC_X_PERCENTS",
]
