"""Fixed-length feature-vector encoding with stable names.

The extractor produces the same feature layout for every pipeline, so
feature matrices from different workloads align.  Static-only mode uses
§4.3 features; dynamic mode appends the §4.4 features (≈200 dimensions in
total — the paper notes each training record is "about 200 double values").
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.features.dynamic import dynamic_feature_names, dynamic_features
from repro.features.static import static_feature_names, static_features
from repro.progress.base import ProgressEstimator
from repro.progress.registry import all_estimators

_MODES = ("static", "dynamic")


class FeatureExtractor:
    """Pipeline -> fixed-length ``float64`` vector.

    Parameters
    ----------
    mode:
        ``"static"`` for pre-execution features only; ``"dynamic"`` for
        static + execution-feedback features (the paper's best setting).
    estimators:
        Estimator instances used for the dynamic features; defaults to the
        full §3.4 + §5 pool.
    """

    def __init__(self, mode: str = "dynamic",
                 estimators: list[ProgressEstimator] | None = None):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        pool = estimators if estimators is not None else all_estimators()
        self._estimators = {est.name: est for est in pool}
        self._names = list(static_feature_names())
        if mode == "dynamic":
            self._names += dynamic_feature_names()

    @property
    def feature_names(self) -> list[str]:
        return list(self._names)

    @property
    def n_features(self) -> int:
        return len(self._names)

    def extract(self, pr: PipelineRun,
                estimates: dict[str, np.ndarray] | None = None) -> np.ndarray:
        """Feature vector for one pipeline."""
        values = static_features(pr)
        if self.mode == "dynamic":
            values.update(dynamic_features(pr, self._estimators, estimates))
        return np.array([values[name] for name in self._names])

    def extract_matrix(self, pipeline_runs: list[PipelineRun]) -> np.ndarray:
        """``(n_pipelines, n_features)`` matrix."""
        if not pipeline_runs:
            return np.empty((0, self.n_features))
        return np.vstack([self.extract(pr) for pr in pipeline_runs])
