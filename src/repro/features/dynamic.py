"""Dynamic (execution-feedback) features of a pipeline (paper §4.4).

Markers ``t{x}`` are the first observations where x% of the driver-node
input has been consumed.  Two feature families, exactly as defined in
§4.4.2:

* pairwise estimator disagreement at the markers:
  ``DNEvsTGN_x = |DNE(t{x}) - TGN(t{x})|`` for the pairs (DNE, TGN),
  (DNE, TGNINT), (TGN, TGNINT) and x ∈ {1, 2, 5, 10, 20};
* time-correlation of each estimator over a ladder of k = 4 sub-markers:
  ``Cor_{E,i,x} = (Time(t{ix/k}) - Time(t0)) / (Time(t{x/k}) - Time(t0))
  · 1 / E(t{x})`` for i = 1..4, measuring how linearly the estimator's
  early trajectory maps onto elapsed time.

All features stop at x = 20% — the paper's choice, since later refinements
help progressively less.  Missing markers (driver input unknown or not yet
consumed) are encoded with the sentinel ``-1`` and left to the trees.
"""

from __future__ import annotations

import numpy as np

from repro.engine.run import PipelineRun
from repro.progress.base import ProgressEstimator

DYNAMIC_X_PERCENTS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0)
CORRELATION_LADDER_K = 4
MISSING = -1.0

#: estimator pairs for the disagreement features (paper §6: DNEvsTGN,
#: DNEvsTGNINT, TGNvsTGNINT)
PAIRWISE = (("dne", "tgn"), ("dne", "tgn_int"), ("tgn", "tgn_int"))

#: estimators whose time-correlation is encoded (paper §6)
CORRELATED = ("dne", "tgn", "luo", "batch_dne", "dne_seek", "tgn_int")


def dynamic_feature_names() -> list[str]:
    names = []
    for a, b in PAIRWISE:
        for x in DYNAMIC_X_PERCENTS:
            names.append(f"{a}_vs_{b}_at_{x:g}")
    for est in CORRELATED:
        for i in range(1, CORRELATION_LADDER_K + 1):
            for x in DYNAMIC_X_PERCENTS:
                names.append(f"cor_{est}_{i}_{x:g}")
    return names


def dynamic_features(pr: PipelineRun,
                     estimators: dict[str, ProgressEstimator],
                     estimates: dict[str, np.ndarray] | None = None,
                     ) -> dict[str, float]:
    """Compute the §4.4 features for one pipeline.

    ``estimators`` maps names to instances covering at least the names in
    :data:`PAIRWISE` and :data:`CORRELATED`.  Pre-computed full estimate
    trajectories can be passed via ``estimates`` to avoid recomputation
    (the estimators are causal, so slicing a full trajectory at a marker
    equals computing it online).
    """
    estimates = dict(estimates) if estimates else {}
    needed = {name for pair in PAIRWISE for name in pair} | set(CORRELATED)
    for name in needed:
        if name not in estimates:
            estimates[name] = estimators[name].estimate(pr)
    features: dict[str, float] = {}
    markers = {x: pr.observation_at_driver_fraction(x)
               for x in _all_marker_percents()}
    elapsed = pr.times - pr.t_start

    for a, b in PAIRWISE:
        for x in DYNAMIC_X_PERCENTS:
            t = markers[x]
            if t is None:
                features[f"{a}_vs_{b}_at_{x:g}"] = MISSING
                continue
            features[f"{a}_vs_{b}_at_{x:g}"] = float(
                abs(estimates[a][t] - estimates[b][t]))

    for est in CORRELATED:
        traj = estimates[est]
        for i in range(1, CORRELATION_LADDER_K + 1):
            for x in DYNAMIC_X_PERCENTS:
                name = f"cor_{est}_{i}_{x:g}"
                t_x = markers[x]
                t_base = markers[x / CORRELATION_LADDER_K]
                t_i = markers[i * x / CORRELATION_LADDER_K]
                if t_x is None or t_base is None or t_i is None:
                    features[name] = MISSING
                    continue
                base_time = elapsed[t_base]
                if base_time <= 0:
                    features[name] = MISSING
                    continue
                value = (elapsed[t_i] / base_time) / max(traj[t_x], 1e-3)
                features[name] = float(min(value, 1e4))
    return features


def _all_marker_percents() -> set[float]:
    percents = set(DYNAMIC_X_PERCENTS)
    for x in DYNAMIC_X_PERCENTS:
        for i in range(1, CORRELATION_LADDER_K + 1):
            percents.add(i * x / CORRELATION_LADDER_K)
    return percents
