"""Seeded generation of random schemas, skewed databases and ad-hoc queries.

The static workload families (TPC-H, TPC-DS, the two "real" stand-ins)
cover a fixed, hand-written scenario space.  The fuzzer opens an unbounded
one: every seed deterministically yields a fresh star/snowflake schema, a
Zipf-skewed database over it (reusing :mod:`repro.datagen.zipf`, the same
sampling the static generators use), and a batch of ad-hoc
:class:`~repro.query.logical.QuerySpec` queries — multi-way joins through
the schema's foreign-key tree, filters drawn from the actual column
domains, grouped and scalar aggregates, ORDER BY and TOP.

Everything is derived from one ``numpy`` generator seeded by the caller,
so a failing scenario is reproducible from its seed alone (see
:mod:`repro.fuzz.harness` for the repro command printed on oracle
failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.datagen.zipf import skewed_fanout, zipf_sample
from repro.query.logical import Aggregate, JoinEdge, QuerySpec
from repro.query.predicates import FilterSpec

_AGG_FUNCS = ("sum", "avg", "min", "max")
_INT_FILTER_OPS = ("==", "!=", "<", "<=", ">", ">=", "between", "in")
_FLOAT_FILTER_OPS = ("<", "<=", ">", ">=", "between")

#: Join-kind draw weights for generated edges.  Inner dominates (as in
#: real traffic) but every kind is exercised; the ``outer_semi`` workload
#: family overrides these to stress the non-inner kinds.
DEFAULT_KIND_WEIGHTS = {"inner": 0.55, "left": 0.20, "semi": 0.15,
                        "anti": 0.10}


def _draw_kind(rng: np.random.Generator,
               weights: dict[str, float]) -> str:
    kinds = list(weights)
    p = np.array([weights[k] for k in kinds], dtype=np.float64)
    return str(rng.choice(kinds, p=p / p.sum()))


@dataclass(frozen=True)
class ColumnDomain:
    """A generated column plus the value domain filters may draw from."""

    table: str
    column: str
    dtype: str          # "int64" | "float64"
    lo: float
    hi: float
    groupable: bool = False


@dataclass
class FuzzSchemaInfo:
    """Query-generation metadata for one fuzzed schema.

    The join graph is a tree rooted at the fact table: one edge per
    dimension, plus optional dimension -> sub-dimension edges (the
    snowflake chains that push queries past fact-dim star joins).
    """

    fact: str
    dims: list[str] = field(default_factory=list)
    #: table -> (near_column, far_table, far_key); ``near`` is the side
    #: closer to the fact, so edges always point away from the root
    edges: dict[str, tuple[str, str, str]] = field(default_factory=dict)
    sub_of: dict[str, str] = field(default_factory=dict)  # dim -> sub-dim
    filterables: dict[str, list[ColumnDomain]] = field(default_factory=dict)
    measures: list[ColumnDomain] = field(default_factory=list)

    def groupables(self, tables: list[str]) -> list[ColumnDomain]:
        return [d for t in tables for d in self.filterables.get(t, [])
                if d.groupable]


def _add_filterable(info: FuzzSchemaInfo, dom: ColumnDomain) -> None:
    info.filterables.setdefault(dom.table, []).append(dom)


def generate_fuzz_database(seed: int, rows: int = 800
                           ) -> tuple[Database, FuzzSchemaInfo]:
    """One random star/snowflake database, fully determined by ``seed``.

    ``rows`` sizes the fact table; dimension and sub-dimension sizes, the
    number of tables, per-column domains and all skew factors are drawn
    from the seeded generator.
    """
    if rows < 16:
        raise ValueError("fuzz fact table needs at least 16 rows")
    rng = np.random.default_rng(seed)
    db = Database(schema=DatabaseSchema(name=f"fuzz{seed}"))
    info = FuzzSchemaInfo(fact="t0")

    n_dims = int(rng.integers(2, 6))
    fact_fk_data: dict[str, np.ndarray] = {}
    fact_fk_cols: list[Column] = []
    for i in range(1, n_dims + 1):
        name = f"t{i}"
        n_dim = int(rng.integers(12, max(24, rows // 3) + 1))
        key = f"{name}_key"
        columns = [Column(key)]
        data: dict[str, np.ndarray] = {key: np.arange(n_dim)}
        for j in range(int(rng.integers(1, 4))):
            col = f"{name}_a{j}"
            domain = int(rng.integers(2, 36))
            values = zipf_sample(rng, n_dim, domain,
                                 z=float(rng.uniform(0.0, 1.5)),
                                 shuffle_ranks=True)
            columns.append(Column(col, width=int(rng.choice([8, 8, 20, 30]))))
            data[col] = values
            _add_filterable(info, ColumnDomain(name, col, "int64",
                                               0, domain - 1, groupable=True))
        if rng.random() < 0.4:
            col = f"{name}_v"
            lo = float(rng.uniform(0.0, 5.0))
            hi = lo + float(rng.uniform(1.0, 100.0))
            columns.append(Column(col, "float64"))
            data[col] = rng.uniform(lo, hi, n_dim).round(2)
            _add_filterable(info, ColumnDomain(name, col, "float64", lo, hi))
        if rng.random() < 0.5:
            sub = f"{name}s"
            n_sub = int(rng.integers(6, 41))
            sub_key = f"{sub}_key"
            sub_attr = f"{sub}_a0"
            sub_domain = int(rng.integers(2, 12))
            db.add(Table(TableSchema(sub, (
                Column(sub_key),
                Column(sub_attr, width=int(rng.choice([8, 20]))),
            ), primary_key=(sub_key,)), {
                sub_key: np.arange(n_sub),
                sub_attr: zipf_sample(rng, n_sub, sub_domain,
                                      z=float(rng.uniform(0.0, 1.2)),
                                      shuffle_ranks=True),
            }, clustered_on=sub_key))
            _add_filterable(info, ColumnDomain(sub, sub_attr, "int64",
                                               0, sub_domain - 1,
                                               groupable=True))
            fk = f"{name}_fk"
            columns.append(Column(fk))
            data[fk] = zipf_sample(rng, n_dim, n_sub,
                                   z=float(rng.uniform(0.0, 1.2)),
                                   shuffle_ranks=True)
            info.edges[sub] = (fk, sub, sub_key)
            info.sub_of[name] = sub
            _add_filterable(info, ColumnDomain(name, fk, "int64",
                                               0, n_sub - 1))
        db.add(Table(TableSchema(name, tuple(columns), primary_key=(key,)),
                     data, clustered_on=key))
        info.dims.append(name)
        fk_col = f"t0_fk{i}"
        fact_fk_cols.append(Column(fk_col))
        fact_fk_data[fk_col] = skewed_fanout(rng, n_dim, rows,
                                             z=float(rng.uniform(0.0, 1.6)))
        info.edges[name] = (fk_col, name, key)

    quantity = 1 + zipf_sample(rng, rows, 24, 1.0, shuffle_ranks=True)
    amount = (rng.uniform(0.5, 30.0, rows) * quantity).round(2)
    attr_domain = int(rng.integers(3, 30))
    attr = zipf_sample(rng, rows, attr_domain,
                       z=float(rng.uniform(0.0, 1.4)), shuffle_ranks=True)
    fact_columns = tuple(fact_fk_cols + [
        Column("t0_q"),
        Column("t0_amt", "float64", width=int(rng.choice([8, 16]))),
        Column("t0_a0", width=int(rng.choice([8, 20]))),
    ])
    fact_data = dict(fact_fk_data)
    fact_data.update({"t0_q": quantity, "t0_amt": amount, "t0_a0": attr})
    fact = Table(TableSchema("t0", fact_columns), fact_data)
    if rng.random() < 0.5:
        fact.cluster_on(fact_fk_cols[int(rng.integers(0, n_dims))].name)
    db.add(fact)

    _add_filterable(info, ColumnDomain("t0", "t0_a0", "int64",
                                       0, attr_domain - 1, groupable=True))
    _add_filterable(info, ColumnDomain("t0", "t0_q", "int64", 1, 24))
    info.measures = [
        ColumnDomain("t0", "t0_q", "int64", 1, 24),
        ColumnDomain("t0", "t0_amt", "float64", 0.5, 30.0 * 24),
    ]
    return db, info


# ---------------------------------------------------------------------------
# query generation
# ---------------------------------------------------------------------------

def _random_filter(rng: np.random.Generator, dom: ColumnDomain) -> FilterSpec:
    if dom.dtype == "int64":
        lo, hi = int(dom.lo), int(dom.hi)
        op = str(rng.choice(_INT_FILTER_OPS))
        if op == "between":
            a, b = sorted(int(rng.integers(lo, hi + 1)) for _ in range(2))
            return FilterSpec(dom.table, dom.column, op, (a, b))
        if op == "in":
            k = int(rng.integers(2, 5))
            values = tuple(sorted({int(v) for v in
                                   rng.integers(lo, hi + 1, size=k)}))
            return FilterSpec(dom.table, dom.column, op, values)
        return FilterSpec(dom.table, dom.column, op,
                          int(rng.integers(lo, hi + 1)))
    op = str(rng.choice(_FLOAT_FILTER_OPS))
    if op == "between":
        a, b = sorted(float(rng.uniform(dom.lo, dom.hi)) for _ in range(2))
        return FilterSpec(dom.table, dom.column, op,
                          (round(a, 3), round(b, 3)))
    return FilterSpec(dom.table, dom.column, op,
                      round(float(rng.uniform(dom.lo, dom.hi)), 3))


def _one_query(rng: np.random.Generator, info: FuzzSchemaInfo,
               name: str,
               kind_weights: dict[str, float] | None = None) -> QuerySpec:
    weights = kind_weights or DEFAULT_KIND_WEIGHTS
    tables = [info.fact]
    joins: list[JoinEdge] = []
    hidden: set[str] = set()    # semi/anti targets: columns not visible
    nullable: set[str] = set()  # left-join targets: may carry NULL sentinels
    if rng.random() >= 0.12:  # multi-way join (the common case)
        k = int(rng.integers(1, len(info.dims) + 1))
        picks = sorted(rng.choice(len(info.dims), size=k, replace=False))
        for p in picks:
            dim = info.dims[p]
            near_col, far, far_key = info.edges[dim]
            tables.append(dim)
            kind = _draw_kind(rng, weights)
            joins.append(JoinEdge(info.fact, near_col, far, far_key, kind))
            if kind in ("semi", "anti"):
                # a hidden dimension's columns (incl. its sub-dim foreign
                # key) are gone downstream: no snowflake chain below it
                hidden.add(dim)
                continue
            if kind == "left":
                nullable.add(dim)
            sub = info.sub_of.get(dim)
            if sub is not None and rng.random() < 0.5:
                near_col, far, far_key = info.edges[sub]
                tables.append(sub)
                sub_kind = _draw_kind(rng, weights)
                joins.append(JoinEdge(dim, near_col, sub, far_key, sub_kind))
                if sub_kind in ("semi", "anti"):
                    hidden.add(sub)
                elif sub_kind == "left":
                    nullable.add(sub)

    # Filters may target hidden tables too: they apply to the base table
    # before the join (ON-clause semantics, identical in the engine's
    # access paths and in the reference evaluator).
    candidates = [d for t in tables for d in info.filterables.get(t, [])]
    filters: list[FilterSpec] = []
    if candidates:
        want = int(rng.integers(0, min(len(candidates), 3) + 1))
        for p in rng.choice(len(candidates), size=want, replace=False):
            filters.append(_random_filter(rng, candidates[int(p)]))

    visible = [t for t in tables if t not in hidden]
    group_by: list[str] = []
    aggregates: list[Aggregate] = []
    order_by: list[str] = []
    top: int | None = None
    if rng.random() < 0.6:  # aggregate query
        group_candidates = info.groupables(visible)
        if group_candidates and rng.random() < 0.85:
            pick = group_candidates[int(rng.integers(0, len(group_candidates)))]
            group_by = [pick.column]
        aggregates.append(Aggregate("count"))
        # Float columns of left-joined tables are excluded: NULL sentinels
        # in a SUM/AVG would dominate the value.  Integer grouping and
        # ordering over them stays allowed — sentinels compare exactly.
        agg_candidates = list(info.measures) + [
            d for t in visible[1:] for d in info.filterables.get(t, [])
            if d.dtype == "float64" and t not in nullable]
        for dom in agg_candidates:
            if rng.random() < 0.55:
                aggregates.append(Aggregate(str(rng.choice(_AGG_FUNCS)),
                                            dom.column))
        if group_by:
            if rng.random() < 0.35:
                # TOP queries order by the (integer) group key so the
                # reference's top-k boundary is well defined up to ties
                top = int(rng.integers(3, 41))
                order_by = list(group_by)
            elif rng.random() < 0.7:
                order_by = ([aggregates[-1].output_name]
                            if rng.random() < 0.5 else list(group_by))
    else:  # select-project-join
        int_columns = [d for d in candidates
                       if d.dtype == "int64" and d.table not in hidden]
        if int_columns and rng.random() < 0.6:
            n_keys = int(rng.integers(1, min(len(int_columns), 2) + 1))
            picks = rng.choice(len(int_columns), size=n_keys, replace=False)
            order_by = [int_columns[int(p)].column for p in picks]
        if rng.random() < 0.35:
            top = int(rng.integers(5, 201))
    return QuerySpec(
        name=name,
        tables=tables,
        joins=joins,
        filters=filters,
        group_by=group_by,
        aggregates=aggregates,
        order_by=order_by,
        top=top,
    )


def generate_fuzz_queries(info: FuzzSchemaInfo, n_queries: int,
                          seed: int, name_prefix: str = "fuzz",
                          kind_weights: dict[str, float] | None = None
                          ) -> list[QuerySpec]:
    """``n_queries`` ad-hoc specs over one fuzzed schema (deterministic).

    ``kind_weights`` reweights the per-edge join-kind draw (defaults to
    :data:`DEFAULT_KIND_WEIGHTS`); the ``outer_semi`` workload family
    passes a non-inner-heavy distribution here.
    """
    rng = np.random.default_rng(seed)
    return [_one_query(rng, info, f"{name_prefix}_{seed}_{i}", kind_weights)
            for i in range(n_queries)]


def generate_fuzz_workload(rows: int, n_queries: int, seed: int,
                           kind_weights: dict[str, float] | None = None
                           ) -> tuple[Database, FuzzSchemaInfo,
                                      list[QuerySpec]]:
    """Database + queries in one call (the ``adhoc_fuzz`` suite family)."""
    db, info = generate_fuzz_database(seed, rows)
    queries = generate_fuzz_queries(info, n_queries, seed + 1,
                                    kind_weights=kind_weights)
    return db, info, queries
