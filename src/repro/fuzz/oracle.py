"""The fuzzer's cross-layer differential oracle.

Every fuzz scenario is checked on six independent layers, each of which
pins a different subsystem against a different source of truth:

1. **Output** — the engine's collected result rows must match the naive
   NumPy reference evaluator (:mod:`repro.fuzz.reference`).
2. **Progress invariants** — at every :class:`ObservationLog` snapshot the
   recorded trajectories must be internally consistent (monotone counters,
   sane bounds, done-flag latching), every registered estimator must be
   defined, the GetNext-model family must be monotone, and the worst-case
   estimators must stay inside their feasible interval.
3. **Incremental parity** — every estimator's streaming path
   (``begin``/``advance``, :mod:`repro.progress.streaming`) must reproduce
   its batch ``estimate`` trajectory bit-for-bit on every scorable
   pipeline, and a *batch-mode* monitor replayed over the recording must
   emit the bit-identical report stream the incremental monitor produced.
4. **Trace round-trip** — recording the run and reading it back must be
   bit-identical, and a monitor replayed from the recording must emit the
   bit-identical report stream the live monitor emitted.
5. **Service parity** — scheduling the same runs through the pooled
   :class:`~repro.service.service.ProgressService` (time-sliced, batched
   selector scoring) must reproduce each solo report stream bit-identically;
   the sharded variant partitions them across a
   :class:`~repro.service.sharded.ShardedProgressService` (report batches
   round-tripped through the wire codec) under both placements and makes
   the same demand.
6. **Network parity** — serving the same runs through the asyncio front
   end (:class:`~repro.service.net.ProgressServer`) and subscribing over
   real sockets must deliver every session's stream *byte*-identically to
   the solo monitoring bytes: the WebSocket frames a client collects and
   the ``reports`` route's payload both re-encode to exactly
   ``reports_to_payload`` of the solo stream.

Violations raise :class:`OracleViolation`, an ``AssertionError`` whose
message always carries the scenario's seed and the exact shell command
that reproduces it — copy it straight out of a CI log.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.monitor import ProgressMonitor, ProgressReport
from repro.engine.counters import UNBOUNDED
from repro.engine.run import QueryRun
from repro.fuzz.reference import ReferenceResult, compare_output
from repro.progress.gold import BytesProcessedOracle, GetNextOracle
from repro.progress.registry import all_estimators
from repro.progress.streaming import stream_estimates
from repro.query.logical import QuerySpec
from repro.runtime.transport import reports_from_payload, reports_to_payload
from repro.service import ProgressService, ShardedProgressService
from repro.service.net import ProgressClient, ProgressServer
from repro.trace.replay import replay_monitor
from repro.trace.store import read_trace, write_trace

_EPS = 1e-9

#: Estimators whose value is a ratio of monotone GetNext aggregates over
#: *fixed* totals; on real (executed) trajectories these must be monotone.
#: TGN is excluded here (its denominator tracks the moving bounds), as are
#: PMAX/SAFE (bounds move) and LUO (speed extrapolation) — see the
#: Hypothesis properties in ``tests/test_progress_properties.py`` for the
#: fixed-totals variant of the same claim.
MONOTONE_FUZZ = ("dne", "batch_dne", "dne_seek", "tgn_int")

_ALL_ESTIMATORS = all_estimators(include_worst_case=True,
                                 include_extensions=True)

#: the §6.7 idealized models join the incremental-parity sweep — their
#: streaming path is exercised nowhere else online
_PARITY_ESTIMATORS = _ALL_ESTIMATORS + [GetNextOracle(),
                                        BytesProcessedOracle()]


@dataclass(frozen=True)
class OracleContext:
    """Where a check is running, for failure messages."""

    seed: int
    repro: str
    query: str = ""

    def where(self) -> str:
        return f"seed={self.seed}" + (f" query={self.query}" if self.query
                                      else "")


class OracleViolation(AssertionError):
    """A differential-oracle failure, with the repro command inline."""

    def __init__(self, layer: str, ctx: OracleContext, detail: str):
        self.layer = layer
        self.seed = ctx.seed
        message = (f"[fuzz oracle:{layer}] {ctx.where()}: {detail}\n"
                   f"  reproduce with: {ctx.repro}")
        super().__init__(message)

    def to_payload(self) -> dict:
        """Plain data for crossing a process boundary (parallel sweeps)."""
        return {"layer": self.layer, "seed": self.seed,
                "message": str(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "OracleViolation":
        """Rebuild a worker's violation verbatim (message already carries
        the repro command, so it is not re-derived)."""
        violation = cls.__new__(cls)
        violation.layer = payload["layer"]
        violation.seed = payload["seed"]
        AssertionError.__init__(violation, payload["message"])
        return violation


def _require(condition: bool, layer: str, ctx: OracleContext,
             detail: str) -> None:
    if not condition:
        raise OracleViolation(layer, ctx, detail)


# -- layer 1: engine output vs. reference -----------------------------------

def check_engine_output(run: QueryRun, ref: ReferenceResult,
                        query: QuerySpec, ctx: OracleContext) -> None:
    problem = compare_output(run.output, ref, query)
    _require(problem is None, "output", ctx, problem or "")
    _require(run.output_rows == ref.expected_rows, "output", ctx,
             f"QueryRun.output_rows {run.output_rows} != collected "
             f"{ref.expected_rows}")


# -- layer 2: progress invariants -------------------------------------------

def check_progress_invariants(run: QueryRun, ctx: OracleContext,
                              min_observations: int = 3) -> None:
    layer = "invariants"
    times, K, R, W = run.times, run.K, run.R, run.W
    LB, UB, D, N = run.LB, run.UB, run.D, run.N
    _require(len(times) >= 2, layer, ctx, "fewer than two observations")
    _require(bool((np.diff(times) >= -_EPS).all()), layer, ctx,
             "observation times decrease")
    for label, M in (("K", K), ("R", R), ("W", W)):
        _require(bool((np.diff(M, axis=0) >= -_EPS).all()), layer, ctx,
                 f"counter {label} decreases over time")
    _require(bool((np.diff(D.astype(np.int8), axis=0) >= 0).all()),
             layer, ctx, "done flag un-latched")
    _require(bool(np.array_equal(LB, K)), layer, ctx,
             "lower bounds diverge from the GetNext counters")
    _require(bool((LB <= UB + _EPS).all()), layer, ctx, "LB exceeds UB")
    _require(bool((UB <= UNBOUNDED + _EPS).all()), layer, ctx,
             "UB exceeds the UNBOUNDED cap")
    _require(bool((UB[D] <= K[D] + _EPS).all()), layer, ctx,
             "a finished node's UB is looser than its counter")
    _require(bool(D[-1].all()), layer, ctx,
             "final snapshot has unfinished nodes")
    if run.spill_events == 0:
        # Without spill-induced extra GetNext calls the online bounds must
        # contain the true totals at every snapshot.
        _require(bool((LB <= N[None, :] + _EPS).all()), layer, ctx,
                 "LB overshoots the true totals (no spills)")
        _require(bool((N[None, :] <= UB + _EPS).all()), layer, ctx,
                 "UB undershoots the true totals (no spills)")

    pipelines = run.pipeline_runs(min_observations=min_observations)
    for pr in pipelines:
        fraction = pr.driver_fraction()
        _require(bool(((0.0 <= fraction) & (fraction <= 1.0)).all()),
                 layer, ctx, f"pid {pr.pid}: driver fraction outside [0,1]")
        _require(bool((np.diff(fraction) >= -1e-12).all()), layer, ctx,
                 f"pid {pr.pid}: driver fraction decreases")
        estimates = {}
        for est in _ALL_ESTIMATORS:
            values = est.estimate(pr)
            estimates[est.name] = values
            _require(values.shape == (pr.n_observations,), layer, ctx,
                     f"pid {pr.pid}: estimator {est.name!r} wrong shape")
            _require(bool(np.isfinite(values).all()), layer, ctx,
                     f"pid {pr.pid}: estimator {est.name!r} not finite")
            _require(bool(((0.0 <= values) & (values <= 1.0)).all()),
                     layer, ctx,
                     f"pid {pr.pid}: estimator {est.name!r} outside [0,1]")
        for name in MONOTONE_FUZZ:
            _require(bool((np.diff(estimates[name]) >= -_EPS).all()),
                     layer, ctx,
                     f"pid {pr.pid}: GetNext-model estimator {name!r} "
                     f"not monotone on a live trajectory")
        # SAFE never overshoots its feasible interval: it sits between
        # PMAX (the interval's low end) and the LB-derived high end.
        k_sum = pr.K.sum(axis=1)
        hi = np.clip(np.divide(
            k_sum, np.maximum(pr.LB.sum(axis=1), 1e-12),
            out=np.zeros_like(k_sum),
            where=pr.LB.sum(axis=1) > 0), 0.0, 1.0)
        _require(bool((estimates["pmax"] <= estimates["safe"] + _EPS).all()),
                 layer, ctx,
                 f"pid {pr.pid}: SAFE fell below PMAX")
        _require(bool((estimates["safe"] <= hi + _EPS).all()), layer, ctx,
                 f"pid {pr.pid}: SAFE overshoots the feasible interval")
        if run.spill_events == 0:
            true_gnm = np.clip(np.divide(
                k_sum, max(float(pr.N.sum()), 1e-12),
                out=np.zeros_like(k_sum),
                where=pr.N.sum() > 0), 0.0, 1.0)
            _require(bool((estimates["pmax"] <= true_gnm + 1e-6).all()),
                     layer, ctx,
                     f"pid {pr.pid}: PMAX overshoots true GetNext progress "
                     f"(no spills)")


# -- layer 3: incremental-vs-batch estimation parity ------------------------

def batch_mode_clone(monitor: ProgressMonitor) -> ProgressMonitor:
    """The same monitoring policy on the batch-recompute path."""
    return ProgressMonitor(
        static_selector=monitor.static_selector,
        dynamic_selector=monitor.dynamic_selector,
        estimators=list(monitor.estimators.values()),
        fallback=monitor.fallback,
        dynamic_percent=monitor.dynamic_percent,
        refresh_every=monitor.refresh_every,
        incremental=False)


def check_incremental_parity(run: QueryRun,
                             live_reports: list[ProgressReport],
                             monitor: ProgressMonitor, ctx: OracleContext,
                             min_observations: int = 3) -> None:
    """Streaming estimation must match batch estimation bit-for-bit.

    Two granularities: per estimator, ``advance``-accumulated trajectories
    against ``estimate(pr)`` on every scorable pipeline; and per monitor,
    a batch-mode replay of the whole recording against the report stream
    the incremental monitor emitted live.
    """
    layer = "incremental"
    for pr in run.pipeline_runs(min_observations=min_observations):
        for est in _PARITY_ESTIMATORS:
            batch = est.estimate(pr)
            streamed = stream_estimates(est, pr)
            if not np.array_equal(batch, streamed):
                delta = float(np.abs(batch - streamed).max())
                _require(False, layer, ctx,
                         f"pid {pr.pid}: estimator {est.name!r} streaming "
                         f"trajectory diverges from batch "
                         f"(max |delta| = {delta:.3e})")
    if monitor.incremental:
        batch_reports = replay_monitor(batch_mode_clone(monitor), run)
        _require(report_streams_equal(live_reports, batch_reports),
                 layer, ctx,
                 f"batch-mode monitor reports diverge from the incremental "
                 f"stream ({len(batch_reports)} vs {len(live_reports)} "
                 f"reports)")


# -- layer 4: trace round-trip + replayed monitoring ------------------------

def _nan_equal(a: float, b: float) -> bool:
    return (np.isnan(a) and np.isnan(b)) or a == b


def reports_equal(a: ProgressReport, b: ProgressReport) -> bool:
    return (a.time == b.time and a.progress == b.progress
            and a.active_pid == b.active_pid
            and a.active_estimator == b.active_estimator
            and a.pipeline_progress == b.pipeline_progress
            and a.pipeline_estimator == b.pipeline_estimator)


def report_streams_equal(a: list[ProgressReport],
                         b: list[ProgressReport]) -> bool:
    return len(a) == len(b) and all(reports_equal(x, y)
                                    for x, y in zip(a, b))


def check_trace_roundtrip(run: QueryRun, live_reports: list[ProgressReport],
                          monitor: ProgressMonitor,
                          ctx: OracleContext) -> None:
    layer = "trace"
    with tempfile.TemporaryDirectory() as tmp:
        path = write_trace(Path(tmp) / "trace", [run])
        replayed, manifest = read_trace(path)
    _require(len(replayed) == 1, layer, ctx,
             f"round-trip returned {len(replayed)} runs")
    rep = replayed[0]
    for name in ("times", "K", "R", "W", "LB", "UB", "N", "D"):
        _require(bool(np.array_equal(getattr(run, name), getattr(rep, name))),
                 layer, ctx, f"array {name!r} not bit-identical after "
                 f"round-trip")
    _require(len(rep.nodes) == len(run.nodes), layer, ctx,
             "node count changed in round-trip")
    for a, b in zip(run.nodes, rep.nodes):
        same = (a.node_id == b.node_id and a.op == b.op
                and a.table == b.table and a.est_rows == b.est_rows
                and a.est_row_width == b.est_row_width
                and _nan_equal(a.table_rows, b.table_rows)
                and a.pid == b.pid and a.parent == b.parent
                and a.is_driver == b.is_driver
                and a.is_build_side == b.is_build_side
                and a.join_kind == b.join_kind)
        _require(same, layer, ctx,
                 f"node {a.node_id} metadata changed in round-trip")
    _require(len(rep.pipelines) == len(run.pipelines), layer, ctx,
             "pipeline count changed in round-trip")
    for p, q in zip(run.pipelines, rep.pipelines):
        same = (p.pid == q.pid and p.node_ids == q.node_ids
                and p.driver_ids == q.driver_ids
                and _nan_equal(p.t_start, q.t_start)
                and _nan_equal(p.t_end, q.t_end))
        _require(same, layer, ctx,
                 f"pipeline {p.pid} metadata changed in round-trip")
    _require(rep.total_time == run.total_time
             and rep.output_rows == run.output_rows
             and rep.spill_events == run.spill_events, layer, ctx,
             "run scalars changed in round-trip")
    replayed_reports = replay_monitor(monitor, rep)
    _require(report_streams_equal(live_reports, replayed_reports),
             layer, ctx,
             f"replayed report stream diverges from live monitoring "
             f"({len(replayed_reports)} vs {len(live_reports)} reports)")


# -- layer 5: pooled service vs. solo monitoring ----------------------------

def check_service_parity(runs: list[QueryRun],
                         solo_reports: list[list[ProgressReport]],
                         monitor: ProgressMonitor, ctx: OracleContext,
                         slice_steps: int = 4,
                         max_live: int | None = None,
                         shards: int | None = None) -> None:
    layer = "service"
    for vectorized in (True, False):
        service = ProgressService(monitor, slice_steps=slice_steps,
                                  max_live=max_live, vectorized=vectorized)
        ids = [service.submit_replay(run) for run in runs]
        service.run_until_complete(max_ticks=1_000_000)
        mode = ("vectorized" if service.vectorized else
                "scalar" if not vectorized else "scalar-fallback")
        for sid, solo, run in zip(ids, solo_reports, runs):
            session = service.session(sid)
            _require(report_streams_equal(solo, session.reports), layer, ctx,
                     f"service-scheduled reports ({mode} flush) for "
                     f"{run.query_name!r} diverge from solo monitoring "
                     f"({len(session.reports)} vs {len(solo)} reports; "
                     f"slice_steps={slice_steps}, max_live={max_live})")
        _require(service.stats.sessions_completed
                 == service.stats.sessions_submitted, layer, ctx,
                 f"service drained ({mode}) but completed "
                 f"{service.stats.sessions_completed} of "
                 f"{service.stats.sessions_submitted} submitted sessions")
    if shards is not None:
        check_sharded_parity(runs, solo_reports, monitor, ctx,
                             slice_steps=slice_steps, max_live=max_live,
                             shards=shards)


def check_sharded_parity(runs: list[QueryRun],
                         solo_reports: list[list[ProgressReport]],
                         monitor: ProgressMonitor, ctx: OracleContext,
                         slice_steps: int = 4,
                         max_live: int | None = None,
                         shards: int = 2) -> None:
    """Layer 5, sharded: partitioned serving must match solo monitoring.

    Runs the same submissions through a :class:`ShardedProgressService`
    (inline shards, but every report batch still round-trips through the
    wire codec) and requires each session's stream to be bit-identical to
    its solo stream — under an arbitrary shard count, slice size and
    per-shard admission bound.  Both placements are exercised: they remap
    sessions to shards, which per-session parity must not notice.
    """
    layer = "service"
    for placement in ("round_robin", "hash"):
        service = ShardedProgressService(
            monitor, n_shards=shards, slice_steps=slice_steps,
            max_live=max_live, placement=placement)
        ids = [service.submit_replay(run) for run in runs]
        results = service.run_until_complete(max_ticks=1_000_000)
        service.close()
        for sid, solo, run in zip(ids, solo_reports, runs):
            _, reports = results[sid]
            _require(report_streams_equal(solo, reports), layer, ctx,
                     f"sharded reports ({shards} shards, {placement}) for "
                     f"{run.query_name!r} diverge from solo monitoring "
                     f"({len(reports)} vs {len(solo)} reports; "
                     f"slice_steps={slice_steps}, max_live={max_live})")
        fleet = service.stats.service
        _require(fleet.sessions_completed == fleet.sessions_submitted
                 == len(runs), layer, ctx,
                 f"sharded service drained ({shards} shards, {placement}) "
                 f"but completed {fleet.sessions_completed} of "
                 f"{fleet.sessions_submitted} submitted sessions "
                 f"({len(runs)} expected)")


# -- layer 6: network serving vs. solo monitoring ----------------------------

def check_network_parity(runs: list[QueryRun],
                         solo_reports: list[list[ProgressReport]],
                         monitor: ProgressMonitor, ctx: OracleContext,
                         slice_steps: int = 4,
                         max_live: int | None = None,
                         shards: int = 2,
                         tenant: str = "fuzz") -> None:
    """Layer 6: client-observed streams must equal solo monitoring *bytes*.

    Spins a real :class:`~repro.service.net.ProgressServer` (inline
    shards) on an ephemeral localhost port, submits every run over HTTP,
    subscribes to each session's WebSocket stream concurrently, and
    requires two byte-level identities per session:

    * the concatenation of the client's binary stream frames re-encodes
      to exactly ``reports_to_payload`` of the solo report stream;
    * the ``reports`` route returns that same payload verbatim.

    This closes the loop the service layers leave open: not just the
    decoded rows but the wire bytes a remote subscriber observes are
    pinned to solo monitoring, end to end through HTTP parsing, the RFC
    6455 framing and the server's merge/wakeup path.
    """
    layer = "network"

    async def scenario():
        async with ProgressServer(monitor, n_shards=shards,
                                  slice_steps=slice_steps,
                                  max_live=max_live) as server:
            async with ProgressClient(*server.address) as client:
                sids = await client.submit_runs(tenant, runs)
                streams = await asyncio.gather(*[
                    client.stream(tenant, sid) for sid in sids])
                payloads = [await client.reports_payload(tenant, sid)
                            for sid in sids]
        return sids, streams, payloads

    sids, streams, payloads = asyncio.run(scenario())
    for sid, (frames, done), payload, solo, run in zip(
            sids, streams, payloads, solo_reports, runs):
        rows = [pair for frame in frames
                for pair in reports_from_payload(frame)]
        expected = reports_to_payload([(sid, report) for report in solo])
        _require(reports_to_payload(rows) == expected, layer, ctx,
                 f"WebSocket stream for {run.query_name!r} (session {sid}) "
                 f"is not byte-identical to solo monitoring "
                 f"({len(rows)} rows streamed vs {len(solo)} solo; "
                 f"shards={shards}, slice_steps={slice_steps}, "
                 f"max_live={max_live})")
        _require(payload == expected, layer, ctx,
                 f"reports route payload for {run.query_name!r} (session "
                 f"{sid}) is not byte-identical to solo monitoring")
        _require(done.get("reports") == len(solo), layer, ctx,
                 f"completion frame for {run.query_name!r} counts "
                 f"{done.get('reports')} reports, solo stream has "
                 f"{len(solo)}")
