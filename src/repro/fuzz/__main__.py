"""CLI: run (or reproduce) fuzz scenarios.

Examples
--------
Run one scenario::

    python -m repro.fuzz --seed 1234

Reproduce a CI failure (the oracle message prints this exact line)::

    python -m repro.fuzz --preset ci-slow --seed 2017

Sweep a seed block across 4 worker processes::

    python -m repro.fuzz --preset ci-fast --seed 100 --scenarios 25 --jobs 4

Run a preset's whole default seed matrix (what CI gates on)::

    python -m repro.fuzz --preset ci-fast --jobs 4
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.fuzz.harness import PRESETS, preset, run_fuzz
from repro.fuzz.oracle import OracleViolation
from repro.runtime import resolve_jobs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Seeded ad-hoc workload fuzzer with a cross-layer "
                    "differential oracle.")
    parser.add_argument("--seed", type=int, default=None,
                        help="first scenario seed (default: the preset's "
                             "seed-matrix base)")
    parser.add_argument("--scenarios", type=int, default=None,
                        help="number of consecutive seeds to run (default: "
                             "1 with --seed, else the preset's full matrix)")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default",
                        help="scenario-shaping preset (default 'default')")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default "
                             "REPRO_JOBS, else 1; 0 = one per CPU)")
    parser.add_argument("--require-hard-regimes", action="store_true",
                        help="fail unless the sweep exercised spills and "
                             "all three design levels (the CI matrix gate)")
    args = parser.parse_args(argv)

    config = preset(args.preset)
    base = args.seed if args.seed is not None else config.seed_base
    count = args.scenarios if args.scenarios is not None else (
        1 if args.seed is not None else config.seed_count)
    jobs = resolve_jobs(args.jobs)
    seeds = range(base, base + count)
    started = time.perf_counter()
    try:
        report = run_fuzz(seeds, config, jobs=jobs,
                          on_scenario=lambda s: print(f"ok  {s.describe()}",
                                                      flush=True))
    except OracleViolation as violation:
        print(f"FAIL {violation}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    if args.require_hard_regimes:
        try:
            report.check_hard_regimes()
        except AssertionError as weak:
            print(f"FAIL matrix went soft: {weak}", file=sys.stderr)
            return 1
    print(report.describe())
    print(f"swept seeds {base}..{base + count - 1} in {elapsed:.1f}s "
          f"with {min(jobs, count)} worker(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
