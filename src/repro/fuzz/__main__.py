"""CLI: run (or reproduce) fuzz scenarios.

Examples
--------
Run one scenario::

    python -m repro.fuzz --seed 1234

Reproduce a CI failure (the oracle message prints this exact line)::

    python -m repro.fuzz --preset ci-slow --seed 2017

Sweep a seed block::

    python -m repro.fuzz --preset ci-fast --seed 100 --scenarios 25
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.harness import PRESETS, preset, run_fuzz
from repro.fuzz.oracle import OracleViolation


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Seeded ad-hoc workload fuzzer with a cross-layer "
                    "differential oracle.")
    parser.add_argument("--seed", type=int, required=True,
                        help="first scenario seed")
    parser.add_argument("--scenarios", type=int, default=1,
                        help="number of consecutive seeds to run (default 1)")
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default",
                        help="scenario-shaping preset (default 'default')")
    args = parser.parse_args(argv)

    config = preset(args.preset)
    seeds = range(args.seed, args.seed + args.scenarios)
    try:
        report = run_fuzz(seeds, config,
                          on_scenario=lambda s: print(f"ok  {s.describe()}"))
    except OracleViolation as violation:
        print(f"FAIL {violation}", file=sys.stderr)
        return 1
    print(report.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
