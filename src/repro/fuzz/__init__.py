"""Seeded ad-hoc workload fuzzing with a cross-layer differential oracle.

Submodules: :mod:`~repro.fuzz.generate` (random schemas, skewed databases
and ad-hoc queries), :mod:`~repro.fuzz.reference` (the naive NumPy
reference evaluator), :mod:`~repro.fuzz.oracle` (the six oracle layers)
and :mod:`~repro.fuzz.harness` (scenario driving, presets, the repro
command).  ``python -m repro.fuzz --seed N`` reproduces any scenario.
"""

from repro.fuzz.generate import (
    FuzzSchemaInfo,
    generate_fuzz_database,
    generate_fuzz_queries,
    generate_fuzz_workload,
)
from repro.fuzz.harness import (
    ORACLE_LAYERS,
    PRESETS,
    FuzzConfig,
    FuzzReport,
    ScenarioReport,
    preset,
    repro_command,
    run_fuzz,
    run_scenario,
)
from repro.fuzz.oracle import (
    OracleContext,
    OracleViolation,
    check_engine_output,
    check_incremental_parity,
    check_network_parity,
    check_progress_invariants,
    check_service_parity,
    check_trace_roundtrip,
)
from repro.fuzz.reference import ReferenceResult, compare_output, evaluate_reference

__all__ = [
    "FuzzSchemaInfo",
    "generate_fuzz_database",
    "generate_fuzz_queries",
    "generate_fuzz_workload",
    "ORACLE_LAYERS",
    "PRESETS",
    "FuzzConfig",
    "FuzzReport",
    "ScenarioReport",
    "preset",
    "repro_command",
    "run_fuzz",
    "run_scenario",
    "OracleContext",
    "OracleViolation",
    "check_engine_output",
    "check_incremental_parity",
    "check_progress_invariants",
    "check_network_parity",
    "check_service_parity",
    "check_trace_roundtrip",
    "ReferenceResult",
    "compare_output",
    "evaluate_reference",
]
