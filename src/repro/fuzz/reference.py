"""Naive pure-NumPy reference evaluation of :class:`QuerySpec` queries.

This is the fuzzer's ground truth for oracle layer 1: no plans, no
operators, no chunking, no cost model — each query is evaluated directly
against the base tables with whole-column NumPy operations (filter masks,
sort-merge key matching, one-shot grouping).  Independence from the engine
is the point: the two implementations share only the logical-layer
*definitions* — the predicate evaluator
(:func:`repro.query.predicates.evaluate_all`), the NULL sentinels of LEFT
OUTER padding and the join-order eligibility rule for non-inner kinds
(:mod:`repro.query.logical`) — and must agree on every generated query.

Comparison rules (see :func:`compare_output`):

* engine rows are compared as a **multiset** — operator order is free to
  permute rows; an ORDER BY additionally requires the engine's stream to
  be lexicographically non-decreasing on the sort keys;
* TOP-k results are checked by containment (every emitted row exists in
  the reference result), by count, and — when an ORDER BY is present — by
  multiset equality of the sort keys against the reference's top *k*,
  which is exactly the set of correct answers when ties straddle the
  boundary;
* aggregate values are compared with a tight relative tolerance
  (``1e-9``): float summation order differs legitimately between the
  chunked engine and the one-shot reference; everything else is exact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.catalog.table import Database
from repro.query.logical import (NULL_FLOAT, NULL_INT, QuerySpec,
                                 valid_start_tables)
from repro.query.predicates import evaluate_all

_RTOL = 1e-9
_ATOL = 1e-9


@dataclass
class ReferenceResult:
    """Full (untruncated) reference result, sorted by ORDER BY if any."""

    columns: dict[str, np.ndarray]
    order_by: list[str]
    top: int | None

    @property
    def n_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def expected_rows(self) -> int:
        """Rows the engine must emit (TOP truncates the reference)."""
        return self.n_rows if self.top is None else min(self.top, self.n_rows)


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, counts)
    cum = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    return base + offsets


def _n_rows(columns: dict[str, np.ndarray]) -> int:
    return len(next(iter(columns.values()))) if columns else 0


def _join_all(db: Database, query: QuerySpec) -> dict[str, np.ndarray]:
    """Filtered base tables combined along the query's join edges."""
    parts: dict[str, dict[str, np.ndarray]] = {}
    for t in query.tables:
        columns = dict(db.table(t).data)
        specs = query.filters_on(t)
        if specs:
            mask = evaluate_all(specs, columns)
            columns = {k: v[mask] for k, v in columns.items()}
        parts[t] = columns

    start = query.tables[0]
    if any(e.kind != "inner" for e in query.joins):
        # Non-inner edges force their preserved side to be reached first;
        # QuerySpec validation guarantees a valid start exists.
        start = valid_start_tables(query.tables, query.joins)[0]
    joined = dict(parts[start])
    covered = {start}
    pending = list(query.joins)
    while pending:
        for edge in pending:
            if edge.kind == "inner":
                if (edge.left_table in covered) or (edge.right_table in covered):
                    break
            elif (edge.left_table in covered
                  and edge.right_table not in covered):
                break
        else:  # pragma: no cover - QuerySpec validates connectivity
            raise ValueError(f"query {query.name!r} join graph disconnected")
        pending.remove(edge)
        if edge.left_table in covered and edge.right_table in covered:
            # cycle edge (inner only): residual equality over joined rows
            mask = joined[edge.left_column] == joined[edge.right_column]
            joined = {k: v[mask] for k, v in joined.items()}
            continue
        if edge.left_table in covered:
            near_col, far_t, far_col = (edge.left_column, edge.right_table,
                                        edge.right_column)
        else:
            near_col, far_t, far_col = (edge.right_column, edge.left_table,
                                        edge.left_column)
        far = parts[far_t]
        near_keys = joined[near_col]
        far_keys = far[far_col]
        order = np.argsort(far_keys, kind="stable")
        sorted_keys = far_keys[order]
        lo = np.searchsorted(sorted_keys, near_keys, side="left")
        hi = np.searchsorted(sorted_keys, near_keys, side="right")
        counts = hi - lo
        if edge.kind in ("semi", "anti"):
            # keep/drop near rows by partner existence; the far table's
            # columns never become visible
            mask = counts > 0 if edge.kind == "semi" else counts == 0
            joined = {k: v[mask] for k, v in joined.items()}
            covered.add(far_t)
            continue
        near_idx = np.repeat(np.arange(len(near_keys)), counts)
        far_pos = order[_expand_ranges(lo, counts)]
        if edge.kind == "left":
            unmatched = np.flatnonzero(counts == 0)
            if len(unmatched):
                all_near = np.concatenate([near_idx, unmatched])
                restore = np.argsort(all_near, kind="stable")
                new_joined = {k: v[all_near][restore]
                              for k, v in joined.items()}
                pad = len(unmatched)
                for k, v in far.items():
                    if np.issubdtype(v.dtype, np.floating):
                        fill = np.full(pad, NULL_FLOAT, dtype=np.float64)
                    else:
                        fill = np.full(pad, NULL_INT, dtype=np.int64)
                    new_joined[k] = np.concatenate([v[far_pos], fill])[restore]
                joined = new_joined
                covered.add(far_t)
                continue
            # every near row matched: identical to an inner join
        joined = {k: v[near_idx] for k, v in joined.items()}
        joined.update({k: v[far_pos] for k, v in far.items()})
        covered.add(far_t)
    return joined


def _aggregate(rows: dict[str, np.ndarray], query: QuerySpec
               ) -> dict[str, np.ndarray]:
    n = _n_rows(rows)
    aggs = query.aggregates
    if not query.group_by:
        if n == 0:
            # Engine semantics: a scalar aggregate over an empty input
            # yields one all-zero row for COUNT aggregates only, and no
            # row at all when there is no COUNT.
            counts = [a for a in aggs if a.func == "count"]
            return {a.output_name: np.zeros(1) for a in counts}
        out: dict[str, np.ndarray] = {}
        for agg in aggs:
            if agg.func == "count":
                out[agg.output_name] = np.array([float(n)])
                continue
            values = rows[agg.column].astype(np.float64)
            if agg.func == "sum":
                out[agg.output_name] = np.array([values.sum()])
            elif agg.func == "avg":
                out[agg.output_name] = np.array([values.sum() / n])
            elif agg.func == "min":
                out[agg.output_name] = np.array([values.min()])
            else:
                out[agg.output_name] = np.array([values.max()])
        return out

    group_cols = list(query.group_by)
    if n == 0:
        out = {c: rows[c][:0] for c in group_cols}
        out.update({a.output_name: np.empty(0) for a in aggs})
        return out
    keys = [rows[c] for c in group_cols]
    order = np.lexsort(keys[::-1])
    sorted_keys = [k[order] for k in keys]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for k in sorted_keys:
        boundary[1:] |= k[1:] != k[:-1]
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], n)
    counts = (ends - starts).astype(np.float64)
    out = {c: k[starts] for c, k in zip(group_cols, sorted_keys)}
    for agg in aggs:
        if agg.func == "count":
            out[agg.output_name] = counts.copy()
            continue
        values = rows[agg.column][order].astype(np.float64)
        if agg.func == "sum":
            out[agg.output_name] = np.add.reduceat(values, starts)
        elif agg.func == "avg":
            out[agg.output_name] = np.add.reduceat(values, starts) / counts
        elif agg.func == "min":
            out[agg.output_name] = np.minimum.reduceat(values, starts)
        else:
            out[agg.output_name] = np.maximum.reduceat(values, starts)
    return out


def evaluate_reference(db: Database, query: QuerySpec) -> ReferenceResult:
    """Evaluate ``query`` naively; the result is the oracle's ground truth."""
    rows = _join_all(db, query)
    if query.aggregates:
        rows = _aggregate(rows, query)
    if query.order_by and _n_rows(rows) > 1:
        keys = [rows[c] for c in reversed(query.order_by)]
        order = np.lexsort(keys)
        rows = {k: v[order] for k, v in rows.items()}
    return ReferenceResult(columns=rows, order_by=list(query.order_by),
                           top=query.top)


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def _lex_nondecreasing(columns: list[np.ndarray]) -> bool:
    n = len(columns[0])
    if n <= 1:
        return True
    greater = np.zeros(n - 1, dtype=bool)
    equal = np.ones(n - 1, dtype=bool)
    for col in columns:
        a, b = col[:-1], col[1:]
        greater |= equal & (a > b)
        equal &= a == b
    return not bool(greater.any())


def _sort_rows(columns: dict[str, np.ndarray],
               by: list[str]) -> dict[str, np.ndarray]:
    order = np.lexsort([columns[c] for c in reversed(by)])
    return {k: v[order] for k, v in columns.items()}


def _row_tuples(columns: dict[str, np.ndarray],
                names: list[str]) -> list[tuple]:
    return list(zip(*(columns[c].tolist() for c in names)))


def _agg_names(query: QuerySpec) -> list[str]:
    return [a.output_name for a in query.aggregates]


def _compare_sorted(eng: dict[str, np.ndarray], ref: dict[str, np.ndarray],
                    exact: list[str], close: list[str]) -> str | None:
    for c in exact:
        if not np.array_equal(np.asarray(eng[c]), np.asarray(ref[c])):
            return f"column {c!r} differs from the reference"
    for c in close:
        a = np.asarray(eng[c], dtype=np.float64)
        b = np.asarray(ref[c], dtype=np.float64)
        if not np.allclose(a, b, rtol=_RTOL, atol=_ATOL):
            worst = float(np.abs(a - b).max()) if len(a) else 0.0
            return (f"aggregate column {c!r} deviates from the reference "
                    f"beyond tolerance (max abs diff {worst:g})")
    return None


def compare_output(output, ref: ReferenceResult,
                   query: QuerySpec) -> str | None:
    """Compare the engine's collected output chunk against the reference.

    Returns ``None`` on agreement, else a human-readable description of
    the first mismatch (the oracle wraps it with the scenario's repro
    command).
    """
    eng = {} if output is None else dict(output.data)
    n_eng = _n_rows(eng)
    expect = ref.expected_rows
    if n_eng != expect:
        return f"row count {n_eng} != expected {expect}"
    if expect == 0:
        return None
    if set(eng) != set(ref.columns):
        return (f"column set {sorted(eng)} != expected "
                f"{sorted(ref.columns)}")
    if ref.order_by and not _lex_nondecreasing([eng[c] for c in ref.order_by]):
        return f"output not sorted by {ref.order_by}"

    is_agg = bool(query.aggregates)
    group_cols = list(query.group_by)
    # restrict to columns present in the reference: a scalar aggregate
    # over an empty input legally emits its COUNT columns only
    agg_cols = [c for c in _agg_names(query) if c in ref.columns]

    if ref.top is None:
        if is_agg and not group_cols:  # single scalar row
            return _compare_sorted(eng, ref.columns, [], agg_cols)
        sort_by = group_cols if is_agg else sorted(ref.columns)
        eng_s = _sort_rows(eng, sort_by)
        ref_s = _sort_rows(ref.columns, sort_by)
        if is_agg:
            return _compare_sorted(eng_s, ref_s, group_cols, agg_cols)
        return _compare_sorted(eng_s, ref_s, sort_by, [])

    # TOP-k: containment + count (+ key multiset under ORDER BY).
    if ref.order_by:
        eng_keys = sorted(_row_tuples(eng, ref.order_by))
        ref_top = {c: v[:expect] for c, v in ref.columns.items()}
        ref_keys = sorted(_row_tuples(ref_top, ref.order_by))
        if eng_keys != ref_keys:
            return (f"TOP {ref.top} sort-key multiset differs from the "
                    f"reference's first {expect} rows")
    if is_agg and group_cols:
        ref_lookup = {key: i for i, key in enumerate(
            _row_tuples(ref.columns, group_cols))}
        eng_groups = _row_tuples(eng, group_cols)
        if len(set(eng_groups)) != len(eng_groups):
            return "TOP output repeats a group key"
        for j, key in enumerate(eng_groups):
            i = ref_lookup.get(key)
            if i is None:
                return f"TOP output contains unknown group {key}"
            for c in agg_cols:
                if not np.isclose(float(eng[c][j]), float(ref.columns[c][i]),
                                  rtol=_RTOL, atol=_ATOL):
                    return (f"TOP aggregate {c!r} for group {key} deviates "
                            f"from the reference")
        return None
    names = sorted(ref.columns)
    ref_counter = Counter(_row_tuples(ref.columns, names))
    eng_counter = Counter(_row_tuples(eng, names))
    extra = eng_counter - ref_counter
    if extra:
        return f"TOP output contains rows not in the reference: {list(extra)[:3]}"
    return None
