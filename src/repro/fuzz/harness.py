"""Driving fuzz scenarios end to end, and reproducing failures.

One *scenario* is fully determined by ``(preset, seed)``: a random schema
and skewed database, a batch of ad-hoc queries, a random physical design,
randomized engine knobs (batch size, a memory grant small enough to force
spills regularly, observation cadence), one monitored live execution per
query, and all six oracle layers of :mod:`repro.fuzz.oracle` — engine
output vs. the NumPy reference, per-snapshot progress invariants,
incremental-vs-batch estimation parity, trace round-trip/replay parity,
pooled/sharded-service parity across the scenario's whole query batch,
and network parity (the same batch served over real sockets through
:class:`~repro.service.net.ProgressServer`, client-observed stream bytes
pinned to solo monitoring).

``python -m repro.fuzz --preset <name> --seed <seed>`` re-runs any
scenario; oracle failures embed exactly that command in their message, so
a red CI log line is a one-paste local reproduction.  Sweeps parallelize
with ``--jobs N`` (or ``REPRO_JOBS``): scenarios are independent by
construction, so :func:`run_fuzz` fans seeds out across worker processes
and still reports — and fails — in seed order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

import numpy as np

from repro.catalog.statistics import build_statistics
from repro.core.monitor import MonitorState, ProgressMonitor
from repro.core.training import collect_training_data, train_selector
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.engine.run import QueryRun
from repro.features.vector import FeatureExtractor
from repro.fuzz.generate import generate_fuzz_database, generate_fuzz_queries
from repro.fuzz.oracle import (
    OracleContext,
    OracleViolation,
    check_engine_output,
    check_incremental_parity,
    check_network_parity,
    check_progress_invariants,
    check_service_parity,
    check_trace_roundtrip,
)
from repro.fuzz.reference import evaluate_reference
from repro.learning.mart import MARTParams
from repro.optimizer.physical_design import (
    DesignLevel,
    apply_design,
    design_for_workload,
)
from repro.optimizer.planner import Planner
from repro.progress.registry import all_estimators
from repro.query.logical import JOIN_KINDS
from repro.runtime import resolve_jobs, run_tasks
from repro.trace.replay import replay_monitor

_DESIGN_LEVELS = (DesignLevel.UNTUNED, DesignLevel.PARTIAL, DesignLevel.FULL)


@dataclass(frozen=True)
class FuzzConfig:
    """Scenario-shaping knobs; ``name`` must stay CLI-addressable."""

    name: str = "default"
    rows_lo: int = 250
    rows_hi: int = 900
    queries_lo: int = 2
    queries_hi: int = 4
    target_observations: int = 60
    #: train tiny MART selectors on the scenario's own pipelines and
    #: re-check replay + service parity under batched selector scoring
    train_selectors: bool = False
    selector_trees: int = 6
    selector_leaves: int = 4
    #: the preset's default seed matrix: what ``python -m repro.fuzz``
    #: sweeps when invoked with no ``--seed`` (e.g. the full ci-fast CI
    #: gate is just ``python -m repro.fuzz --preset ci-fast --jobs 4``)
    seed_base: int = 0
    seed_count: int = 1


PRESETS: dict[str, FuzzConfig] = {
    "default": FuzzConfig(),
    # seed matrix matches tests/test_fuzz.py::FAST_SEEDS
    "ci-fast": FuzzConfig(name="ci-fast", rows_lo=200, rows_hi=600,
                          queries_lo=2, queries_hi=3,
                          target_observations=50,
                          seed_base=100, seed_count=25),
    # seed matrix matches the default FUZZ_SEED_BASE block of the slow job
    "ci-slow": FuzzConfig(name="ci-slow", rows_lo=400, rows_hi=1500,
                          queries_lo=3, queries_hi=5,
                          target_observations=90, train_selectors=True,
                          seed_base=2000, seed_count=12),
}

#: The six oracle layers a scenario must pass.
ORACLE_LAYERS = ("output", "invariants", "incremental", "trace", "service",
                 "network")


def repro_command(seed: int, config: FuzzConfig) -> str:
    """The shell command that re-runs one scenario."""
    return f"python -m repro.fuzz --preset {config.name} --seed {seed}"


@dataclass
class ScenarioReport:
    """Summary of one passed scenario (raises before existing otherwise)."""

    seed: int
    preset: str
    rows: int
    n_queries: int
    n_pipelines: int
    n_reports: int
    spill_events: int
    design: str
    checks: dict[str, int] = field(default_factory=dict)
    #: per-scenario histogram of drawn join-edge kinds (inner/left/semi/anti)
    join_kinds: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        kinds = ",".join(f"{k}:{self.join_kinds.get(k, 0)}"
                         for k in JOIN_KINDS)
        return (f"seed={self.seed:<6} rows={self.rows:<5} "
                f"queries={self.n_queries} pipelines={self.n_pipelines:<3} "
                f"reports={self.n_reports:<4} spills={self.spill_events:<3} "
                f"design={self.design} joins=[{kinds}]")


@dataclass
class FuzzReport:
    """Aggregate over a batch of scenarios."""

    scenarios: list[ScenarioReport] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        return len(self.scenarios)

    def layer_checks(self) -> dict[str, int]:
        totals = {layer: 0 for layer in ORACLE_LAYERS}
        for s in self.scenarios:
            for layer, n in s.checks.items():
                totals[layer] += n
        return totals

    def kind_totals(self) -> dict[str, int]:
        """Batch-wide histogram of exercised join-edge kinds."""
        totals = {kind: 0 for kind in JOIN_KINDS}
        for s in self.scenarios:
            for kind, n in s.join_kinds.items():
                totals[kind] += n
        return totals

    def describe(self) -> str:
        checks = "  ".join(f"{k}:{v}" for k, v in self.layer_checks().items())
        kinds = "  ".join(f"{k}:{v}" for k, v in self.kind_totals().items())
        return (f"{self.n_scenarios} scenarios, 0 violations "
                f"(oracle checks — {checks}; join kinds — {kinds})")

    def check_hard_regimes(self) -> None:
        """Raise unless the batch exercised the regimes the CI seed
        matrices are chosen for — every oracle layer on every scenario,
        at least one spill-forcing memory grant, and all three physical-
        design levels.  This is what keeps a green sweep meaningful: a
        generator change that quietly stops producing the hard cases
        fails here instead of passing vacuously (the CLI's
        ``--require-hard-regimes`` gates CI on it)."""
        checks = self.layer_checks()
        for layer in ORACLE_LAYERS:
            if checks[layer] < self.n_scenarios:
                raise AssertionError(
                    f"oracle layer {layer!r} ran {checks[layer]} checks "
                    f"over {self.n_scenarios} scenarios; every scenario "
                    f"must pass every layer")
        if not any(s.spill_events for s in self.scenarios):
            raise AssertionError(
                "no scenario forced a spill; shrink the memory grants")
        designs = {s.design for s in self.scenarios}
        if designs != {"untuned", "partial", "full"}:
            raise AssertionError(
                f"scenarios only exercised designs {sorted(designs)}; "
                f"the matrix must cover untuned, partial and full")
        kinds = self.kind_totals()
        missing = [kind for kind in JOIN_KINDS if not kinds.get(kind)]
        if missing:
            raise AssertionError(
                f"join kind(s) {missing} never drawn across "
                f"{self.n_scenarios} scenarios (histogram: {kinds}); the "
                f"generator must keep exercising every join semantics")


def _monitored_execute(db, plan, query_name: str, config: ExecutorConfig,
                       monitor: ProgressMonitor):
    """Live execution with solo monitoring *and* output collection.

    Mirrors :meth:`ProgressMonitor.run` but reuses the single execution
    for oracle layer 1 (``collect_output``) — the report stream is
    bit-identical to what ``monitor.run`` would produce for this config.
    """
    reports = []
    state = MonitorState()

    def observe(ectx):
        state.ticks += 1
        if state.ticks % monitor.refresh_every:
            return
        reports.append(monitor.finalize(monitor.snapshot(ectx, state), state))

    executor = QueryExecutor(db, config, on_observation=observe)
    run = executor.execute(plan, query_name=query_name)
    return run, reports


def _train_scenario_monitor(runs: list[QueryRun], config: FuzzConfig,
                            refresh_every: int) -> ProgressMonitor | None:
    """Tiny MART selectors trained on the scenario's own pipelines."""
    pipelines = [pr for run in runs
                 for pr in run.pipeline_runs(min_observations=4)]
    if len(pipelines) < 4:
        return None
    estimators = all_estimators()
    params = MARTParams(n_trees=config.selector_trees,
                        max_leaves=config.selector_leaves)
    static_data = collect_training_data(pipelines, estimators,
                                        FeatureExtractor("static"))
    dynamic_data = collect_training_data(
        pipelines, estimators,
        FeatureExtractor("dynamic", estimators=estimators))
    return ProgressMonitor(
        static_selector=train_selector(static_data, params),
        dynamic_selector=train_selector(dynamic_data, params),
        refresh_every=refresh_every)


def run_scenario(seed: int, config: FuzzConfig | None = None
                 ) -> ScenarioReport:
    """Build, execute and oracle-check one scenario; raises
    :class:`~repro.fuzz.oracle.OracleViolation` on any failure."""
    config = config or PRESETS["default"]
    repro = repro_command(seed, config)
    rng = np.random.default_rng(seed)
    rows = int(rng.integers(config.rows_lo, config.rows_hi + 1))
    n_queries = int(rng.integers(config.queries_lo, config.queries_hi + 1))
    db, info = generate_fuzz_database(seed * 7919 + 1, rows)
    queries = generate_fuzz_queries(info, n_queries, seed * 7919 + 2)
    level = _DESIGN_LEVELS[int(rng.integers(0, len(_DESIGN_LEVELS)))]
    design = design_for_workload(db, queries, level)
    apply_design(db, design)
    planner = Planner(db, build_statistics(db))

    # engine knobs: memory grants small enough to force spills regularly
    memory_budget = float(int(rng.integers(8, 49)) << 10)
    batch_size = int(rng.choice([64, 128, 256]))
    refresh_every = int(rng.integers(1, 4))
    monitor = ProgressMonitor(refresh_every=refresh_every)

    checks = {layer: 0 for layer in ORACLE_LAYERS}
    join_kinds = {kind: 0 for kind in JOIN_KINDS}
    for query in queries:
        for edge in query.joins:
            join_kinds[edge.kind] += 1
    runs: list[QueryRun] = []
    streams: list[list] = []
    for i, query in enumerate(queries):
        ctx = OracleContext(seed=seed, repro=repro, query=query.name)
        plan = planner.plan(query)
        exec_config = ExecutorConfig(
            batch_size=batch_size,
            memory_budget_bytes=memory_budget,
            target_observations=config.target_observations,
            seed=seed * 1_000 + i,
            collect_output=True)
        run, reports = _monitored_execute(db, plan, query.name,
                                          exec_config, monitor)
        check_engine_output(run, evaluate_reference(db, query), query, ctx)
        checks["output"] += 1
        check_progress_invariants(run, ctx)
        checks["invariants"] += 1
        check_incremental_parity(run, reports, monitor, ctx)
        checks["incremental"] += 1
        check_trace_roundtrip(run, reports, monitor, ctx)
        checks["trace"] += 1
        runs.append(run)
        streams.append(reports)

    ctx = OracleContext(seed=seed, repro=repro)
    slice_steps = int(rng.integers(1, 9))
    max_live = int(rng.integers(1, len(runs) + 1))
    shards = int(rng.integers(2, 5))
    check_service_parity(runs, streams, monitor, ctx,
                         slice_steps=slice_steps, max_live=max_live,
                         shards=shards)
    checks["service"] += 1
    check_network_parity(runs, streams, monitor, ctx,
                         slice_steps=slice_steps, max_live=max_live,
                         shards=shards)
    checks["network"] += 1

    if config.train_selectors:
        trained = _train_scenario_monitor(runs, config, refresh_every)
        if trained is not None:
            solo = [replay_monitor(trained, run) for run in runs]
            for run, reports in zip(runs, solo):
                query_ctx = OracleContext(seed=seed, repro=repro,
                                          query=run.query_name)
                check_incremental_parity(run, reports, trained, query_ctx)
                checks["incremental"] += 1
                check_trace_roundtrip(run, reports, trained, query_ctx)
                checks["trace"] += 1
            check_service_parity(runs, solo, trained, ctx,
                                 slice_steps=slice_steps, max_live=max_live,
                                 shards=shards)
            checks["service"] += 1

    return ScenarioReport(
        seed=seed,
        preset=config.name,
        rows=rows,
        n_queries=len(runs),
        n_pipelines=sum(len(r.pipeline_runs(min_observations=3))
                        for r in runs),
        n_reports=sum(len(s) for s in streams),
        spill_events=sum(r.spill_events for r in runs),
        design=design.name,
        checks=checks,
        join_kinds=join_kinds,
    )


def _scenario_task(task: dict) -> dict:
    """Pool worker: one scenario per task, violations returned as data.

    Module-level for the runtime pool.  An
    :class:`~repro.fuzz.oracle.OracleViolation` is demoted to a payload
    (its message already embeds the per-seed repro command) so it crosses
    the process boundary verbatim instead of as a pickled traceback.
    """
    config = FuzzConfig(**task["config"])
    try:
        scenario = run_scenario(task["seed"], config)
    except OracleViolation as violation:
        return {"violation": violation.to_payload()}
    return {"scenario": asdict(scenario)}


def run_fuzz(seeds, config: FuzzConfig | None = None,
             on_scenario=None, jobs: int | None = None) -> FuzzReport:
    """Run a batch of scenarios; the first oracle violation propagates.

    ``jobs`` > 1 sweeps the seeds across worker processes.  Results are
    merged (and ``on_scenario`` streamed) in seed order, and the raised
    violation is always the earliest seed's — so a parallel sweep fails
    identically to the serial one, per-seed repro command included.
    ``jobs=None`` defers to ``REPRO_JOBS`` (default serial).
    """
    config = config or PRESETS["default"]
    seeds = [int(seed) for seed in seeds]
    report = FuzzReport()
    jobs = min(resolve_jobs(jobs), max(len(seeds), 1))
    if jobs <= 1:
        for seed in seeds:
            scenario = run_scenario(seed, config)
            report.scenarios.append(scenario)
            if on_scenario is not None:
                on_scenario(scenario)
        return report

    tasks = [{"seed": seed, "config": asdict(config)} for seed in seeds]

    def collect(index: int, result: dict) -> None:
        if "violation" in result:  # aborts the remaining futures
            raise OracleViolation.from_payload(result["violation"])
        scenario = ScenarioReport(**result["scenario"])
        report.scenarios.append(scenario)
        if on_scenario is not None:
            on_scenario(scenario)

    run_tasks(_scenario_task, tasks, jobs=jobs, on_result=collect)
    return report


def preset(name: str, **overrides) -> FuzzConfig:
    """A named preset, optionally tweaked (keeps the CLI-addressable name)."""
    if name not in PRESETS:
        raise KeyError(f"unknown fuzz preset {name!r}; "
                       f"choose from {sorted(PRESETS)}")
    base = PRESETS[name]
    return replace(base, **overrides) if overrides else base
