"""Catalog substrate: schemas, columnar tables, indexes and statistics.

This package is the stand-in for the storage/catalog layer of the DBMS the
paper instruments (SQL Server 2008).  It provides:

* :class:`~repro.catalog.schema.Column`, :class:`~repro.catalog.schema.TableSchema`
  and :class:`~repro.catalog.schema.DatabaseSchema` — metadata descriptions.
* :class:`~repro.catalog.table.Table` and :class:`~repro.catalog.table.Database`
  — columnar (NumPy) storage with clustered order and secondary indexes.
* :class:`~repro.catalog.statistics.ColumnStatistics` /
  :func:`~repro.catalog.statistics.build_statistics` — equi-depth histograms
  and distinct counts used by the optimizer's cardinality estimation.
"""

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.statistics import (
    ColumnStatistics,
    DatabaseStatistics,
    EquiDepthHistogram,
    TableStatistics,
    build_statistics,
)
from repro.catalog.table import Database, SortedIndex, Table

__all__ = [
    "Column",
    "TableSchema",
    "DatabaseSchema",
    "Table",
    "Database",
    "SortedIndex",
    "EquiDepthHistogram",
    "ColumnStatistics",
    "TableStatistics",
    "DatabaseStatistics",
    "build_statistics",
]
