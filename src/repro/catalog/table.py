"""Columnar table storage with clustered order and secondary indexes.

A :class:`Table` stores each column as one NumPy array.  Physical design is
expressed through:

* ``clustered_on`` — the column the rows are physically sorted by (the
  clustered-index key); scans in that order feed merge joins and stream
  aggregates without an explicit sort, and
* :class:`SortedIndex` secondary indexes — position lists sorted by key that
  serve equality/range seeks, including the inner side of index
  nested-loop joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.schema import DatabaseSchema, TableSchema


class SortedIndex:
    """A secondary index: row positions ordered by key value.

    Lookups are vectorized over a batch of probe keys, which is what the
    executor's index-nested-loop join needs (one ``seek`` per outer batch).
    """

    def __init__(self, key: str, values: np.ndarray):
        self.key = key
        self.order = np.argsort(values, kind="stable")
        self.sorted_values = np.ascontiguousarray(values[self.order])
        self.n_rows = len(values)

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Find all rows matching each probe key.

        Returns ``(positions, counts)`` where ``counts[j]`` is the number of
        matches for ``keys[j]`` and ``positions`` concatenates the matching
        row positions in probe order.
        """
        lo = np.searchsorted(self.sorted_values, keys, side="left")
        hi = np.searchsorted(self.sorted_values, keys, side="right")
        counts = hi - lo
        positions = self.order[_expand_ranges(lo, counts)]
        return positions, counts

    def lookup_range(self, low, high) -> np.ndarray:
        """Row positions with ``low <= key <= high`` (inclusive both ends)."""
        lo = int(np.searchsorted(self.sorted_values, low, side="left"))
        hi = int(np.searchsorted(self.sorted_values, high, side="right"))
        return self.order[lo:hi]

    def match_counts(self, keys: np.ndarray) -> np.ndarray:
        """Per-key match counts without materializing positions."""
        lo = np.searchsorted(self.sorted_values, keys, side="left")
        hi = np.searchsorted(self.sorted_values, keys, side="right")
        return hi - lo


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (s, c) pair, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, counts)
    cum = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    return base + offsets


class Table:
    """A columnar table instance.

    Parameters
    ----------
    schema:
        The :class:`~repro.catalog.schema.TableSchema` describing columns.
    data:
        Mapping of column name to NumPy array; all arrays must share length.
    clustered_on:
        Column the rows are physically ordered by, or ``None`` for heap
        order.  The constructor does not re-sort; use :meth:`cluster_on`.
    """

    def __init__(self, schema: TableSchema, data: dict[str, np.ndarray],
                 clustered_on: str | None = None):
        lengths = {name: len(arr) for name, arr in data.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns in table {schema.name!r}: {lengths}")
        missing = set(schema.column_names) - set(data)
        if missing:
            raise ValueError(f"table {schema.name!r} missing columns {sorted(missing)}")
        self.schema = schema
        self.data = {name: np.asarray(data[name]) for name in schema.column_names}
        self.n_rows = 0 if not data else len(next(iter(self.data.values())))
        self.clustered_on = clustered_on
        self.indexes: dict[str, SortedIndex] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_width(self) -> int:
        return self.schema.row_width

    def column(self, name: str) -> np.ndarray:
        return self.data[name]

    def cluster_on(self, column: str) -> None:
        """Physically sort the table rows by ``column`` (clustered index)."""
        order = np.argsort(self.data[column], kind="stable")
        self.data = {name: arr[order] for name, arr in self.data.items()}
        self.clustered_on = column
        # Any existing secondary indexes refer to old positions; rebuild.
        for key in list(self.indexes):
            self.create_index(key)

    def create_index(self, column: str) -> SortedIndex:
        """Create (or rebuild) a secondary index on ``column``."""
        if column not in self.data:
            raise KeyError(f"no column {column!r} in table {self.name!r}")
        index = SortedIndex(column, self.data[column])
        self.indexes[column] = index
        return index

    def drop_index(self, column: str) -> None:
        self.indexes.pop(column, None)

    def has_index(self, column: str) -> bool:
        """True when seeks on ``column`` are possible (secondary or clustered)."""
        return column in self.indexes or column == self.clustered_on

    def seek_index(self, column: str) -> SortedIndex:
        """Return an index usable for seeks on ``column``.

        Falls back to a transient index over the clustered order when the
        table is clustered on the column (a clustered index *is* an index).
        """
        if column in self.indexes:
            return self.indexes[column]
        if column == self.clustered_on:
            return self.create_index(column)
        raise KeyError(f"no index on {self.name}.{column}")

    def is_sorted_on(self, column: str) -> bool:
        return self.clustered_on == column


@dataclass
class Database:
    """A named collection of table instances, plus the schema."""

    schema: DatabaseSchema
    tables: dict[str, Table] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.schema.name

    def add(self, table: Table) -> None:
        self.tables[table.name] = table
        if table.name not in self.schema.tables:
            self.schema.add(table.schema)

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise KeyError(f"no table {name!r} in database {self.name!r}")
        return self.tables[name]

    def table_of_column(self, column: str) -> Table:
        return self.table(self.schema.table_of_column(column).name)

    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.tables.values())
