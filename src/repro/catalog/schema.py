"""Schema metadata: columns, tables and databases.

Only numeric column types are supported (``int64`` / ``float64``).  String
attributes of the original benchmarks are modelled as dictionary-encoded
integer codes, which is how a column store would hold them anyway and is
sufficient for progress estimation: what matters is cardinalities, widths
and value distributions, not the bytes of the strings themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Globally unique column name.  Benchmark generators keep names unique
        across a whole database (TPC-H style ``l_``/``o_`` prefixes) so that
        joins never need qualified names.
    dtype:
        Either ``"int64"`` or ``"float64"``.
    width:
        Logical width in bytes of the column as it would be stored in a
        row-oriented engine.  Used by the Bytes-Processed model of progress
        (Luo et al.), which counts bytes read/written.
    """

    name: str
    dtype: str = "int64"
    width: int = 8

    def __post_init__(self) -> None:
        if self.dtype not in ("int64", "float64"):
            raise ValueError(f"unsupported dtype {self.dtype!r} for column {self.name!r}")
        if self.width <= 0:
            raise ValueError(f"column {self.name!r} must have positive width")


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table: named columns plus a primary key."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        for key in self.primary_key:
            if key not in names:
                raise ValueError(f"primary key column {key!r} not in table {self.name!r}")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_width(self) -> int:
        """Logical bytes per row (sum of column widths)."""
        return sum(c.width for c in self.columns)


@dataclass
class DatabaseSchema:
    """A named collection of table schemas."""

    name: str
    tables: dict[str, TableSchema] = field(default_factory=dict)

    def add(self, table: TableSchema) -> None:
        if table.name in self.tables:
            raise ValueError(f"table {table.name!r} already in schema {self.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        if name not in self.tables:
            raise KeyError(f"no table {name!r} in schema {self.name!r}")
        return self.tables[name]

    def table_of_column(self, column: str) -> TableSchema:
        """Find the unique table owning ``column``."""
        owners = [t for t in self.tables.values() if t.has_column(column)]
        if not owners:
            raise KeyError(f"no table owns column {column!r}")
        if len(owners) > 1:
            names = [t.name for t in owners]
            raise KeyError(f"column {column!r} is ambiguous across tables {names}")
        return owners[0]
