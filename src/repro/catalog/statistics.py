"""Optimizer statistics: equi-depth histograms and distinct counts.

These are deliberately the *classic* single-column statistics with the
classic assumptions (uniformity within buckets, independence across
predicates, containment for joins).  The point of the reproduction is that
cardinality-estimation errors must arise *naturally* — on skewed data the
independence assumption mis-estimates exactly the way a real optimizer
does, and those errors are what make the TGN estimator fragile and the
estimator-selection problem interesting (paper §4.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.table import Database, Table


class EquiDepthHistogram:
    """Equi-depth histogram over a numeric column."""

    def __init__(self, values: np.ndarray, n_buckets: int = 32):
        if len(values) == 0:
            self.boundaries = np.array([0.0, 0.0])
            self.counts = np.array([0.0])
            self.n_rows = 0
            self.n_distinct = 0
            return
        self.n_rows = len(values)
        sorted_vals = np.sort(np.asarray(values, dtype=np.float64))
        self.n_distinct = int(len(np.unique(sorted_vals)))
        n_buckets = max(1, min(n_buckets, self.n_distinct))
        # Bucket boundaries at quantiles; first boundary is the minimum.
        quantiles = np.linspace(0.0, 1.0, n_buckets + 1)
        self.boundaries = np.quantile(sorted_vals, quantiles)
        # Exact counts per bucket (last bucket right-inclusive).
        edges = self.boundaries.copy()
        edges[-1] = np.nextafter(edges[-1], np.inf)
        self.counts = np.histogram(sorted_vals, bins=edges)[0].astype(np.float64)

    @property
    def min_value(self) -> float:
        return float(self.boundaries[0])

    @property
    def max_value(self) -> float:
        return float(self.boundaries[-1])

    def selectivity_range(self, low: float, high: float) -> float:
        """Estimated fraction of rows with ``low <= value <= high``.

        Uses linear interpolation within buckets (uniformity assumption).
        """
        if self.n_rows == 0 or high < low:
            return 0.0
        total = self.counts.sum()
        if total == 0:
            return 0.0
        sel = 0.0
        for i in range(len(self.counts)):
            b_lo, b_hi = self.boundaries[i], self.boundaries[i + 1]
            if b_hi < low or b_lo > high:
                continue
            span = b_hi - b_lo
            if span <= 0:
                overlap = 1.0 if low <= b_lo <= high else 0.0
            else:
                overlap = (min(high, b_hi) - max(low, b_lo)) / span
                overlap = min(1.0, max(0.0, overlap))
            sel += self.counts[i] * overlap
        return float(min(1.0, sel / total))

    def selectivity_eq(self, value: float) -> float:
        """Estimated fraction of rows equal to ``value`` (uniform-ndv)."""
        if self.n_rows == 0 or self.n_distinct == 0:
            return 0.0
        if value < self.min_value or value > self.max_value:
            return 0.0
        return 1.0 / self.n_distinct


@dataclass
class ColumnStatistics:
    """Statistics for one column."""

    name: str
    histogram: EquiDepthHistogram
    n_distinct: int
    min_value: float
    max_value: float


@dataclass
class TableStatistics:
    """Statistics for one table: row count plus per-column stats."""

    table: str
    n_rows: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        if name not in self.columns:
            raise KeyError(f"no statistics for column {name!r} of {self.table!r}")
        return self.columns[name]


@dataclass
class DatabaseStatistics:
    """Statistics for all tables of a database."""

    database: str
    tables: dict[str, TableStatistics] = field(default_factory=dict)

    def table(self, name: str) -> TableStatistics:
        if name not in self.tables:
            raise KeyError(f"no statistics for table {name!r}")
        return self.tables[name]


def build_table_statistics(table: Table, n_buckets: int = 32) -> TableStatistics:
    stats = TableStatistics(table=table.name, n_rows=table.n_rows)
    for name, values in table.data.items():
        hist = EquiDepthHistogram(values, n_buckets=n_buckets)
        stats.columns[name] = ColumnStatistics(
            name=name,
            histogram=hist,
            n_distinct=hist.n_distinct,
            min_value=hist.min_value,
            max_value=hist.max_value,
        )
    return stats


def build_statistics(db: Database, n_buckets: int = 32) -> DatabaseStatistics:
    """Build statistics for every table of ``db``.

    ``n_buckets`` trades estimation quality for build time; 32 buckets is
    roughly what commercial systems default to for small tables.
    """
    stats = DatabaseStatistics(database=db.name)
    for name, table in db.tables.items():
        stats.tables[name] = build_table_statistics(table, n_buckets=n_buckets)
    return stats
