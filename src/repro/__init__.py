"""repro — a reproduction of König et al., "A Statistical Approach Towards
Robust Progress Estimation" (VLDB 2011).

The package is organized bottom-up (see DESIGN.md for the full map):

* substrates: :mod:`repro.catalog`, :mod:`repro.datagen`, :mod:`repro.query`,
  :mod:`repro.plan`, :mod:`repro.engine`, :mod:`repro.optimizer`;
* the estimator zoo and metrics: :mod:`repro.progress`;
* learning: :mod:`repro.features`, :mod:`repro.learning`;
* the paper's contribution: :mod:`repro.core` (estimator selection and the
  online progress monitor);
* persistence: :mod:`repro.trace` (recorded execution traces, replay,
  the ``REPRO_TRACE_DIR`` cache, the ``python -m repro.trace`` store CLI);
* serving: :mod:`repro.service` (concurrent multi-query progress service
  with batched selector scoring, live or replayed sessions);
* parallelism: :mod:`repro.runtime` (deterministic process-pool fan-out
  behind ``REPRO_JOBS``/``--jobs``, results crossing processes through
  the trace format);
* evaluation assets: :mod:`repro.workloads`, :mod:`repro.experiments`.

Quickstart
----------
>>> from repro import quickstart_components
>>> db, planner, executor = quickstart_components()
(or see examples/quickstart.py for the end-to-end walkthrough.)
"""

from repro.core import (
    EstimatorSelector,
    ProgressMonitor,
    collect_training_data,
    evaluate_selection,
    train_selector,
)
from repro.engine import ExecutionHandle, ExecutorConfig, QueryExecutor
from repro.features import FeatureExtractor
from repro.learning import MARTParams, MARTRegressor
from repro.progress import all_estimators, original_estimators
from repro.service import ProgressService
from repro.trace import ReplayExecutor, TraceStore, replay_monitor

__version__ = "1.0.0"

__all__ = [
    "EstimatorSelector",
    "ProgressMonitor",
    "collect_training_data",
    "train_selector",
    "evaluate_selection",
    "QueryExecutor",
    "ExecutionHandle",
    "ExecutorConfig",
    "ProgressService",
    "FeatureExtractor",
    "MARTRegressor",
    "MARTParams",
    "TraceStore",
    "ReplayExecutor",
    "replay_monitor",
    "all_estimators",
    "original_estimators",
    "quickstart_components",
    "__version__",
]


def quickstart_components(lineitem_rows: int = 10_000, z: float = 1.0,
                          seed: int = 7):
    """Build a small skewed TPC-H database with a planner and an executor.

    Convenience for interactive exploration; the examples and benchmarks
    use :class:`repro.experiments.ExperimentHarness` instead.
    """
    from repro.catalog.statistics import build_statistics
    from repro.datagen.tpch import generate_tpch
    from repro.optimizer.planner import Planner

    db = generate_tpch(lineitem_rows=lineitem_rows, z=z, seed=seed)
    planner = Planner(db, build_statistics(db))
    executor = QueryExecutor(db)
    return db, planner, executor
