"""Synthetic stand-ins for the paper's two proprietary workloads.

* "Real-1": a 9GB decision-support/reporting *Sales* database; most queries
  join 5-8 tables and contain nested sub-queries (477 distinct queries).
* "Real-2": a 12GB database with even more complex queries, typically ~12
  joins (632 queries).

The actual databases are Microsoft-internal.  For the generalization
experiments what matters is that these schemas are *structurally different*
from the training workloads (different fan-outs, deeper snowflakes, wider
rows, correlated columns), so the learned estimator-selection model cannot
simply memorize plan shapes.  ``generate_real1`` builds a star schema with
two fact tables and correlated dimension attributes; ``generate_real2``
builds a deep snowflake (sub-dimension chains) wide enough to support
12-way join queries.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.datagen.zipf import skewed_fanout, zipf_sample


def _dim(db: Database, name: str, prefix: str, n: int,
         extra: dict[str, np.ndarray], widths: dict[str, int] | None = None,
         dtypes: dict[str, str] | None = None) -> None:
    """Add a dimension table with a dense surrogate key ``<prefix>_key``."""
    widths = widths or {}
    dtypes = dtypes or {}
    key = f"{prefix}_key"
    columns = [Column(key)]
    data = {key: np.arange(n)}
    for col_name, values in extra.items():
        columns.append(Column(col_name, dtypes.get(col_name, "int64"),
                              widths.get(col_name, 8)))
        data[col_name] = values
    db.add(Table(TableSchema(name, tuple(columns), primary_key=(key,)),
                 data, clustered_on=key))


def generate_real1(fact_rows: int = 50_000, seed: int = 23) -> Database:
    """Generate the "Real-1"-shaped Sales reporting database.

    Star schema: ``sales`` and ``returns`` facts around product (with a
    category hierarchy), store, employee, customer, promotion and calendar
    dimensions — enough tables for the paper's typical 5-8-way joins.
    Correlations (e.g. price depends on category; returns skewed to a few
    products) defeat the optimizer's independence assumption, producing the
    realistic cardinality errors the selection model must cope with.
    """
    rng = np.random.default_rng(seed)
    db = Database(schema=DatabaseSchema(name="real1"))
    z = 1.2  # real data is heavily skewed

    n_category = 40
    n_product = max(fact_rows // 40, 60)
    n_store = 25
    n_employee = max(fact_rows // 200, 40)
    n_customer = max(fact_rows // 12, 80)
    n_promo = 50
    n_days = 730

    category = zipf_sample(rng, n_product, n_category, 0.8, shuffle_ranks=True)
    base_price = rng.uniform(2.0, 40.0, n_category)  # price correlates w/ category
    _dim(db, "product", "prod", n_product, {
        "prod_category": category,
        "prod_price": (base_price[category] * rng.lognormal(0, 0.4, n_product)).round(2),
        "prod_weight": rng.uniform(0.1, 25.0, n_product).round(2),
    }, widths={"prod_category": 30}, dtypes={"prod_price": "float64",
                                             "prod_weight": "float64"})
    _dim(db, "category", "cat", n_category, {
        "cat_department": rng.integers(0, 8, n_category),
    }, widths={"cat_department": 30})
    _dim(db, "store", "store", n_store, {
        "store_region": rng.integers(0, 6, n_store),
        "store_sqft": rng.integers(2_000, 40_000, n_store),
    })
    _dim(db, "employee", "emp", n_employee, {
        "emp_store": rng.integers(0, n_store, n_employee),
        "emp_level": zipf_sample(rng, n_employee, 5, 1.0),
    })
    _dim(db, "customer_r1", "cust", n_customer, {
        "cust_segment": zipf_sample(rng, n_customer, 8, 0.9, shuffle_ranks=True),
        "cust_region": rng.integers(0, 6, n_customer),
    }, widths={"cust_segment": 20})
    _dim(db, "promotion_r1", "promo", n_promo, {
        "promo_kind": rng.integers(0, 6, n_promo),
    }, widths={"promo_kind": 20})
    _dim(db, "calendar", "day", n_days, {
        "day_month": (np.arange(n_days) // 30) % 12 + 1,
        "day_quarter": ((np.arange(n_days) // 91) % 4) + 1,
        "day_year": 2009 + np.arange(n_days) // 365,
    })

    day_fk = skewed_fanout(rng, n_days, fact_rows, 0.4)
    day_fk.sort()
    prod_fk = skewed_fanout(rng, n_product, fact_rows, z)
    qty = 1 + zipf_sample(rng, fact_rows, 20, 1.0, shuffle_ranks=True)
    price = db.table("product").column("prod_price")[prod_fk]
    db.add(Table(TableSchema("sales", (
        Column("sale_day"),
        Column("sale_product"),
        Column("sale_store"),
        Column("sale_employee"),
        Column("sale_customer"),
        Column("sale_promo"),
        Column("sale_quantity"),
        Column("sale_amount", "float64"),
        Column("sale_discount", "float64"),
    )), {
        "sale_day": day_fk,
        "sale_product": prod_fk,
        "sale_store": rng.integers(0, n_store, fact_rows),
        "sale_employee": skewed_fanout(rng, n_employee, fact_rows, 0.8),
        "sale_customer": skewed_fanout(rng, n_customer, fact_rows, z),
        "sale_promo": rng.integers(0, n_promo, fact_rows),
        "sale_quantity": qty,
        "sale_amount": (price * qty).round(2),
        "sale_discount": rng.integers(0, 30, fact_rows) / 100.0,
    }, clustered_on="sale_day"))

    n_returns = max(fact_rows // 8, 50)
    ret_prod = skewed_fanout(rng, n_product, n_returns, 1.6)  # few products dominate returns
    ret_day = skewed_fanout(rng, n_days, n_returns, 0.4)
    ret_day.sort()
    db.add(Table(TableSchema("returns", (
        Column("ret_day"),
        Column("ret_product"),
        Column("ret_store"),
        Column("ret_customer"),
        Column("ret_quantity"),
        Column("ret_reason", width=30),
    )), {
        "ret_day": ret_day,
        "ret_product": ret_prod,
        "ret_store": rng.integers(0, n_store, n_returns),
        "ret_customer": skewed_fanout(rng, n_customer, n_returns, z),
        "ret_quantity": 1 + zipf_sample(rng, n_returns, 10, 1.0),
        "ret_reason": zipf_sample(rng, n_returns, 12, 1.0, shuffle_ranks=True),
    }, clustered_on="ret_day"))

    return db


def generate_real2(fact_rows: int = 60_000, seed: int = 29) -> Database:
    """Generate the "Real-2"-shaped logistics snowflake database.

    A ``shipments`` fact with dimension chains (port -> country -> region;
    commodity -> commodity group; carrier -> alliance) deep enough that a
    typical reporting query joins ~12 tables, matching the paper's
    description of the second real workload.
    """
    rng = np.random.default_rng(seed)
    db = Database(schema=DatabaseSchema(name="real2"))

    n_region = 8
    n_country = 60
    n_port = max(fact_rows // 400, 40)
    n_carrier = 30
    n_alliance = 6
    n_vessel = max(fact_rows // 500, 35)
    n_commodity_group = 20
    n_commodity = 240
    n_shipper = max(fact_rows // 60, 60)
    n_consignee = max(fact_rows // 80, 50)
    n_days = 1_095

    _dim(db, "ship_region", "sregion", n_region, {})
    _dim(db, "country", "country", n_country, {
        "country_region": rng.integers(0, n_region, n_country),
    })
    _dim(db, "port", "port", n_port, {
        "port_country": zipf_sample(rng, n_port, n_country, 0.7, shuffle_ranks=True),
        "port_capacity": rng.integers(100, 100_000, n_port),
    })
    _dim(db, "alliance", "alliance", n_alliance, {})
    _dim(db, "carrier", "carrier", n_carrier, {
        "carrier_alliance": rng.integers(0, n_alliance, n_carrier),
    })
    _dim(db, "vessel", "vessel", n_vessel, {
        "vessel_carrier": zipf_sample(rng, n_vessel, n_carrier, 0.8, shuffle_ranks=True),
        "vessel_teu": rng.integers(500, 24_000, n_vessel),
    })
    _dim(db, "commodity_group", "cgroup", n_commodity_group, {
        "cgroup_hazard": rng.integers(0, 3, n_commodity_group),
    })
    _dim(db, "commodity", "comm", n_commodity, {
        "comm_group": zipf_sample(rng, n_commodity, n_commodity_group, 0.9,
                                  shuffle_ranks=True),
        "comm_value_density": rng.uniform(0.5, 800.0, n_commodity).round(2),
    }, dtypes={"comm_value_density": "float64"})
    _dim(db, "shipper", "shipper", n_shipper, {
        "shipper_country": zipf_sample(rng, n_shipper, n_country, 0.8,
                                       shuffle_ranks=True),
        "shipper_tier": zipf_sample(rng, n_shipper, 4, 1.0),
    })
    _dim(db, "consignee", "consignee", n_consignee, {
        "consignee_country": zipf_sample(rng, n_consignee, n_country, 0.8,
                                         shuffle_ranks=True),
    })
    _dim(db, "calendar2", "sday", n_days, {
        "sday_month": (np.arange(n_days) // 30) % 12 + 1,
        "sday_year": 2008 + np.arange(n_days) // 365,
    })

    day_fk = skewed_fanout(rng, n_days, fact_rows, 0.3)
    day_fk.sort()
    comm_fk = skewed_fanout(rng, n_commodity, fact_rows, 1.3)
    teu = 1 + zipf_sample(rng, fact_rows, 40, 1.1, shuffle_ranks=True)
    value_density = db.table("commodity").column("comm_value_density")[comm_fk]
    db.add(Table(TableSchema("shipments", (
        Column("shp_day"),
        Column("shp_origin_port"),
        Column("shp_dest_port"),
        Column("shp_vessel"),
        Column("shp_carrier"),
        Column("shp_commodity"),
        Column("shp_shipper"),
        Column("shp_consignee"),
        Column("shp_teu"),
        Column("shp_value", "float64"),
        Column("shp_delay_days"),
    )), {
        "shp_day": day_fk,
        "shp_origin_port": skewed_fanout(rng, n_port, fact_rows, 1.2),
        "shp_dest_port": skewed_fanout(rng, n_port, fact_rows, 1.2),
        "shp_vessel": skewed_fanout(rng, n_vessel, fact_rows, 1.0),
        "shp_carrier": skewed_fanout(rng, n_carrier, fact_rows, 1.0),
        "shp_commodity": comm_fk,
        "shp_shipper": skewed_fanout(rng, n_shipper, fact_rows, 1.1),
        "shp_consignee": skewed_fanout(rng, n_consignee, fact_rows, 1.1),
        "shp_teu": teu,
        "shp_value": (teu * value_density).round(2),
        "shp_delay_days": zipf_sample(rng, fact_rows, 30, 1.5),
    }, clustered_on="shp_day"))

    return db
