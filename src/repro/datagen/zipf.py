"""Seeded Zipfian sampling, in the style of the TPCD-Skew generator.

The paper generates TPC-H databases "using a Zipfian skew-factor Z=1 [1],
to induce variance in the per-tuple work".  The referenced tool draws
attribute values and foreign keys from a Zipf(z) distribution over the
value domain; ``z = 0`` degenerates to uniform.  We reproduce exactly that:
``P(rank i) ∝ 1 / i^z`` over a domain of ``n`` values, sampled by inverse
CDF so a fixed seed yields a fixed database.
"""

from __future__ import annotations

import numpy as np

# Domains larger than this are sampled via a "head + uniform tail" split to
# keep the CDF small; the head carries virtually all Zipfian mass.
_MAX_EXACT_DOMAIN = 1 << 22


def zipf_probabilities(n: int, z: float) -> np.ndarray:
    """Probability vector of the Zipf(z) distribution over ranks ``1..n``."""
    if n <= 0:
        raise ValueError("domain size must be positive")
    if z < 0:
        raise ValueError("skew z must be non-negative")
    if z == 0.0:
        return np.full(n, 1.0 / n)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_sample(rng: np.random.Generator, size: int, n: int, z: float,
                shuffle_ranks: bool = False) -> np.ndarray:
    """Draw ``size`` values in ``[0, n)`` from a Zipf(z) distribution.

    With ``shuffle_ranks`` the mapping of probability-rank to value is a
    seeded permutation, so the most frequent value is not always ``0``;
    TPCD-Skew does the same to decorrelate skew from key order.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if size == 0:
        return np.empty(0, dtype=np.int64)
    if z == 0.0:
        values = rng.integers(0, n, size=size, dtype=np.int64)
    elif n <= _MAX_EXACT_DOMAIN:
        cdf = np.cumsum(zipf_probabilities(n, z))
        u = rng.random(size)
        values = np.searchsorted(cdf, u, side="left").astype(np.int64)
        np.clip(values, 0, n - 1, out=values)
    else:
        values = _zipf_sample_large(rng, size, n, z)
    if shuffle_ranks:
        perm = rng.permutation(n)
        values = perm[values]
    return values


def _zipf_sample_large(rng: np.random.Generator, size: int, n: int,
                       z: float) -> np.ndarray:
    """Approximate Zipf sampling for very large domains.

    The first ``head`` ranks are sampled exactly; the remaining mass is
    spread uniformly over the tail.  For z >= 0.5 the head holds nearly all
    probability, so the approximation error is negligible.
    """
    head = _MAX_EXACT_DOMAIN
    ranks = np.arange(1, head + 1, dtype=np.float64)
    head_weights = ranks ** (-z)
    # Integral approximation of the tail mass sum_{head+1..n} i^-z.
    if z == 1.0:
        tail_mass = np.log(n / head)
    else:
        tail_mass = (n ** (1 - z) - head ** (1 - z)) / (1 - z)
    total = head_weights.sum() + max(tail_mass, 0.0)
    cdf = np.cumsum(head_weights) / total
    u = rng.random(size)
    values = np.searchsorted(cdf, u, side="left").astype(np.int64)
    in_tail = values >= head
    n_tail = int(in_tail.sum())
    if n_tail:
        values[in_tail] = rng.integers(head, n, size=n_tail, dtype=np.int64)
    return values


def skewed_fanout(rng: np.random.Generator, n_parents: int, n_children: int,
                  z: float) -> np.ndarray:
    """Assign each of ``n_children`` rows a parent key with Zipfian skew.

    Guarantees every value is a valid parent key in ``[0, n_parents)``.
    Used for foreign keys (e.g. ``l_orderkey`` -> ``orders``): with z > 0 a
    few parents get many children, which is precisely the "variance in
    per-tuple work" that breaks driver-node estimators.
    """
    return zipf_sample(rng, n_children, n_parents, z, shuffle_ranks=True)
