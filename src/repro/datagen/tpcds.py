"""TPC-DS-shaped database generator (a representative subset).

The paper draws "over 200 randomly chosen queries from the TPC-DS
benchmark" on a ~10GB database.  TPC-DS has 24 tables; progress-estimation
behaviour is driven by its *snowflake* shape — multiple fact tables of very
different sizes sharing conformed dimensions — so we generate the three
sales fact tables and the seven most commonly joined dimensions.  Widths
and fan-outs follow the specification's ratios.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.datagen.zipf import skewed_fanout, zipf_sample

_N_DATES = 1_000  # date_dim days covered by the sales window


def generate_tpcds(fact_rows: int = 40_000, z: float = 0.5,
                   seed: int = 11) -> Database:
    """Generate a TPC-DS-shaped :class:`~repro.catalog.table.Database`.

    ``fact_rows`` sizes ``store_sales``; ``catalog_sales`` and ``web_sales``
    are generated at the spec's ~2/3 and ~1/2 ratios.  TPC-DS data is
    mildly skewed by design, hence the default ``z = 0.5``.
    """
    rng = np.random.default_rng(seed)
    schema = DatabaseSchema(name="tpcds")
    db = Database(schema=schema)

    n_item = max(fact_rows // 25, 50)
    n_customer = max(fact_rows // 15, 50)
    n_address = max(n_customer // 2, 25)
    n_store = 12
    n_promo = 30
    n_warehouse = 8

    db.add(Table(TableSchema("date_dim", (
        Column("d_date_sk"),
        Column("d_year"),
        Column("d_moy"),
        Column("d_dow"),
    ), primary_key=("d_date_sk",)), {
        "d_date_sk": np.arange(_N_DATES),
        "d_year": 1998 + np.arange(_N_DATES) // 365,
        "d_moy": (np.arange(_N_DATES) // 30) % 12 + 1,
        "d_dow": np.arange(_N_DATES) % 7,
    }, clustered_on="d_date_sk"))

    db.add(Table(TableSchema("item", (
        Column("i_item_sk"),
        Column("i_category", width=50),
        Column("i_brand", width=50),
        Column("i_current_price", "float64"),
        Column("i_class", width=50),
    ), primary_key=("i_item_sk",)), {
        "i_item_sk": np.arange(n_item),
        "i_category": zipf_sample(rng, n_item, 10, z, shuffle_ranks=True),
        "i_brand": zipf_sample(rng, n_item, 100, z, shuffle_ranks=True),
        "i_current_price": rng.uniform(0.5, 300.0, n_item).round(2),
        "i_class": rng.integers(0, 16, n_item),
    }, clustered_on="i_item_sk"))

    db.add(Table(TableSchema("customer_dim", (
        Column("cd_customer_sk"),
        Column("cd_address_sk"),
        Column("cd_birth_year"),
    ), primary_key=("cd_customer_sk",)), {
        "cd_customer_sk": np.arange(n_customer),
        "cd_address_sk": rng.integers(0, n_address, n_customer),
        "cd_birth_year": rng.integers(1930, 2000, n_customer),
    }, clustered_on="cd_customer_sk"))

    db.add(Table(TableSchema("customer_address", (
        Column("ca_address_sk"),
        Column("ca_state", width=2),
        Column("ca_zip", width=10),
    ), primary_key=("ca_address_sk",)), {
        "ca_address_sk": np.arange(n_address),
        "ca_state": zipf_sample(rng, n_address, 50, z, shuffle_ranks=True),
        "ca_zip": rng.integers(0, 10_000, n_address),
    }, clustered_on="ca_address_sk"))

    db.add(Table(TableSchema("store", (
        Column("st_store_sk"),
        Column("st_state", width=2),
        Column("st_floor_space"),
    ), primary_key=("st_store_sk",)), {
        "st_store_sk": np.arange(n_store),
        "st_state": rng.integers(0, 10, n_store),
        "st_floor_space": rng.integers(5_000_000, 10_000_000, n_store),
    }, clustered_on="st_store_sk"))

    db.add(Table(TableSchema("promotion", (
        Column("pr_promo_sk"),
        Column("pr_channel", width=16),
    ), primary_key=("pr_promo_sk",)), {
        "pr_promo_sk": np.arange(n_promo),
        "pr_channel": rng.integers(0, 5, n_promo),
    }, clustered_on="pr_promo_sk"))

    db.add(Table(TableSchema("warehouse", (
        Column("wh_warehouse_sk"),
        Column("wh_sq_ft"),
    ), primary_key=("wh_warehouse_sk",)), {
        "wh_warehouse_sk": np.arange(n_warehouse),
        "wh_sq_ft": rng.integers(50_000, 1_000_000, n_warehouse),
    }, clustered_on="wh_warehouse_sk"))

    def fact(prefix: str, n: int) -> dict[str, np.ndarray]:
        date_fk = skewed_fanout(rng, _N_DATES, n, z / 2)
        date_fk.sort()  # facts arrive in date order (clustered on date)
        qty = 1 + zipf_sample(rng, n, 100, z, shuffle_ranks=True)
        price = rng.uniform(0.5, 300.0, n)
        return {
            f"{prefix}_sold_date_sk": date_fk,
            f"{prefix}_item_sk": skewed_fanout(rng, n_item, n, z),
            f"{prefix}_customer_sk": skewed_fanout(rng, n_customer, n, z),
            f"{prefix}_promo_sk": rng.integers(0, n_promo, n),
            f"{prefix}_quantity": qty,
            f"{prefix}_sales_price": price.round(2),
            f"{prefix}_net_profit": (price * qty * rng.uniform(-0.1, 0.4, n)).round(2),
        }

    def fact_schema(name: str, prefix: str, extra: tuple[Column, ...] = ()) -> TableSchema:
        return TableSchema(name, (
            Column(f"{prefix}_sold_date_sk"),
            Column(f"{prefix}_item_sk"),
            Column(f"{prefix}_customer_sk"),
            Column(f"{prefix}_promo_sk"),
            Column(f"{prefix}_quantity"),
            Column(f"{prefix}_sales_price", "float64"),
            Column(f"{prefix}_net_profit", "float64"),
        ) + extra)

    n_ss = fact_rows
    ss_data = fact("ss", n_ss)
    ss_data["ss_store_sk"] = rng.integers(0, n_store, n_ss)
    db.add(Table(fact_schema("store_sales", "ss", (Column("ss_store_sk"),)),
                 ss_data, clustered_on="ss_sold_date_sk"))

    n_cs = max(2 * fact_rows // 3, 100)
    cs_data = fact("cs", n_cs)
    cs_data["cs_warehouse_sk"] = rng.integers(0, n_warehouse, n_cs)
    db.add(Table(fact_schema("catalog_sales", "cs", (Column("cs_warehouse_sk"),)),
                 cs_data, clustered_on="cs_sold_date_sk"))

    n_ws = max(fact_rows // 2, 100)
    ws_data = fact("ws", n_ws)
    ws_data["ws_warehouse_sk"] = rng.integers(0, n_warehouse, n_ws)
    db.add(Table(fact_schema("web_sales", "ws", (Column("ws_warehouse_sk"),)),
                 ws_data, clustered_on="ws_sold_date_sk"))

    return db
