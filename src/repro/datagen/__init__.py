"""Data generation substrate.

The paper evaluates on TPC-H (generated with Microsoft's skewed ``dbgen``
variant), TPC-DS, and two proprietary decision-support databases.  None of
those generators/datasets are available offline, so this package provides
NumPy-based generators that preserve the properties progress estimation
cares about: schema shape (fan-outs between tables), value skew (a Zipfian
``z`` parameter, like the TPCD-Skew tool), and realistic row widths.

* :mod:`repro.datagen.zipf` — seeded Zipfian sampling.
* :mod:`repro.datagen.tpch` — the 8-table TPC-H schema, scaled + skewed.
* :mod:`repro.datagen.tpcds` — a TPC-DS-shaped subset (3 facts, 7 dims).
* :mod:`repro.datagen.sales` — "Real-1"/"Real-2"-shaped decision-support
  schemas matching the join widths reported in the paper (5-8 and ~12).
"""

from repro.datagen.sales import generate_real1, generate_real2
from repro.datagen.tpch import generate_tpch
from repro.datagen.tpcds import generate_tpcds
from repro.datagen.zipf import zipf_probabilities, zipf_sample

__all__ = [
    "zipf_probabilities",
    "zipf_sample",
    "generate_tpch",
    "generate_tpcds",
    "generate_real1",
    "generate_real2",
]
