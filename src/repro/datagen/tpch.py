"""TPC-H-shaped database generator with Zipfian skew.

Generates the full 8-table TPC-H schema, preserving the SF-relative table
size ratios and foreign-key fan-outs of ``dbgen``, with a skew knob ``z``
applied to foreign keys and value columns the way Microsoft's TPCD-Skew
tool does (z = 0 is uniform, z = 1/2 increasingly skewed).

Scale is expressed as the target number of ``lineitem`` rows instead of the
benchmark's SF so that tests and benchmarks can pick laptop-friendly sizes;
SF 1 corresponds to roughly six million lineitem rows.

String attributes are dictionary-encoded integers (see
:mod:`repro.catalog.schema`); column widths mirror the byte widths of the
original columns so the Bytes-Processed progress model sees realistic
volumes.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, DatabaseSchema, TableSchema
from repro.catalog.table import Database, Table
from repro.datagen.zipf import skewed_fanout, zipf_sample

#: days relative to 1992-01-01, spanning the 7-year TPC-H order window
_DATE_RANGE = 7 * 365


def _schema() -> DatabaseSchema:
    schema = DatabaseSchema(name="tpch")
    schema.add(TableSchema("region", (
        Column("r_regionkey"),
    ), primary_key=("r_regionkey",)))
    schema.add(TableSchema("nation", (
        Column("n_nationkey"),
        Column("n_regionkey"),
    ), primary_key=("n_nationkey",)))
    schema.add(TableSchema("supplier", (
        Column("s_suppkey"),
        Column("s_nationkey"),
        Column("s_acctbal", "float64"),
    ), primary_key=("s_suppkey",)))
    schema.add(TableSchema("customer", (
        Column("c_custkey"),
        Column("c_nationkey"),
        Column("c_acctbal", "float64"),
        Column("c_mktsegment", width=10),
    ), primary_key=("c_custkey",)))
    schema.add(TableSchema("part", (
        Column("p_partkey"),
        Column("p_size"),
        Column("p_retailprice", "float64"),
        Column("p_brand", width=10),
        Column("p_type", width=25),
        Column("p_container", width=10),
    ), primary_key=("p_partkey",)))
    schema.add(TableSchema("partsupp", (
        Column("ps_partkey"),
        Column("ps_suppkey"),
        Column("ps_availqty"),
        Column("ps_supplycost", "float64"),
    ), primary_key=("ps_partkey", "ps_suppkey")))
    schema.add(TableSchema("orders", (
        Column("o_orderkey"),
        Column("o_custkey"),
        Column("o_orderdate"),
        Column("o_totalprice", "float64"),
        Column("o_orderstatus", width=1),
        Column("o_orderpriority", width=15),
        Column("o_shippriority"),
    ), primary_key=("o_orderkey",)))
    schema.add(TableSchema("lineitem", (
        Column("l_orderkey"),
        Column("l_partkey"),
        Column("l_suppkey"),
        Column("l_linenumber"),
        Column("l_quantity", "float64"),
        Column("l_extendedprice", "float64"),
        Column("l_discount", "float64"),
        Column("l_tax", "float64"),
        Column("l_shipdate"),
        Column("l_commitdate"),
        Column("l_receiptdate"),
        Column("l_returnflag", width=1),
        Column("l_linestatus", width=1),
        Column("l_shipmode", width=10),
        Column("l_shipinstruct", width=25),
    ), primary_key=("l_orderkey", "l_linenumber")))
    return schema


def generate_tpch(lineitem_rows: int = 60_000, z: float = 0.0,
                  seed: int = 7) -> Database:
    """Generate a TPC-H-shaped :class:`~repro.catalog.table.Database`.

    Parameters
    ----------
    lineitem_rows:
        Target size of the largest table; the other tables scale with the
        same ratios as ``dbgen`` (orders = lineitem/4, customer = orders/10,
        part = lineitem/30, supplier = customer/15, partsupp = 4*part).
    z:
        Zipfian skew factor applied to foreign keys and value columns.
        ``z = 0`` reproduces uniform dbgen data; the paper uses z of 0, 1, 2.
    seed:
        RNG seed; the same (rows, z, seed) triple is bit-reproducible.
    """
    if lineitem_rows < 100:
        raise ValueError("lineitem_rows must be at least 100")
    rng = np.random.default_rng(seed)
    schema = _schema()
    db = Database(schema=DatabaseSchema(name=f"tpch_z{z:g}"))

    n_orders = max(lineitem_rows // 4, 25)
    n_customer = max(n_orders // 10, 20)
    n_part = max(lineitem_rows // 30, 20)
    n_supplier = max(n_customer // 15, 10)
    n_partsupp = n_part * 4
    n_nation, n_region = 25, 5

    db.add(Table(schema.table("region"), {
        "r_regionkey": np.arange(n_region),
    }, clustered_on="r_regionkey"))

    db.add(Table(schema.table("nation"), {
        "n_nationkey": np.arange(n_nation),
        "n_regionkey": rng.integers(0, n_region, n_nation),
    }, clustered_on="n_nationkey"))

    db.add(Table(schema.table("supplier"), {
        "s_suppkey": np.arange(n_supplier),
        "s_nationkey": rng.integers(0, n_nation, n_supplier),
        "s_acctbal": rng.uniform(-999.99, 9999.99, n_supplier).round(2),
    }, clustered_on="s_suppkey"))

    db.add(Table(schema.table("customer"), {
        "c_custkey": np.arange(n_customer),
        "c_nationkey": rng.integers(0, n_nation, n_customer),
        "c_acctbal": rng.uniform(-999.99, 9999.99, n_customer).round(2),
        "c_mktsegment": zipf_sample(rng, n_customer, 5, z / 2),
    }, clustered_on="c_custkey"))

    db.add(Table(schema.table("part"), {
        "p_partkey": np.arange(n_part),
        "p_size": 1 + zipf_sample(rng, n_part, 50, z, shuffle_ranks=True),
        "p_retailprice": (900 + rng.uniform(0, 1200, n_part)).round(2),
        "p_brand": rng.integers(0, 25, n_part),
        "p_type": zipf_sample(rng, n_part, 150, z / 2, shuffle_ranks=True),
        "p_container": rng.integers(0, 40, n_part),
    }, clustered_on="p_partkey"))

    ps_part = np.repeat(np.arange(n_part), 4)
    db.add(Table(schema.table("partsupp"), {
        "ps_partkey": ps_part,
        "ps_suppkey": rng.integers(0, n_supplier, n_partsupp),
        "ps_availqty": rng.integers(1, 10_000, n_partsupp),
        "ps_supplycost": rng.uniform(1.0, 1000.0, n_partsupp).round(2),
    }, clustered_on="ps_partkey"))

    o_orderdate = rng.integers(0, _DATE_RANGE, n_orders)
    db.add(Table(schema.table("orders"), {
        "o_orderkey": np.arange(n_orders),
        "o_custkey": skewed_fanout(rng, n_customer, n_orders, z),
        "o_orderdate": o_orderdate,
        "o_totalprice": rng.uniform(850.0, 500_000.0, n_orders).round(2),
        "o_orderstatus": rng.integers(0, 3, n_orders),
        "o_orderpriority": zipf_sample(rng, n_orders, 5, z / 2),
        "o_shippriority": np.zeros(n_orders, dtype=np.int64),
    }, clustered_on="o_orderkey"))

    # Lineitems per order follow dbgen's 1..7 pattern; with skew the
    # distribution of per-order fan-out itself becomes skewed.
    l_orderkey = skewed_fanout(rng, n_orders, lineitem_rows, z)
    l_orderkey.sort()  # clustered on orderkey, as in practice
    l_shipdate = o_orderdate[l_orderkey] + rng.integers(1, 122, lineitem_rows)
    l_quantity = 1.0 + zipf_sample(rng, lineitem_rows, 50, z,
                                   shuffle_ranks=True).astype(np.float64)
    l_price = (l_quantity * rng.uniform(900.0, 2100.0, lineitem_rows)).round(2)
    db.add(Table(schema.table("lineitem"), {
        "l_orderkey": l_orderkey,
        "l_partkey": skewed_fanout(rng, n_part, lineitem_rows, z),
        "l_suppkey": skewed_fanout(rng, n_supplier, lineitem_rows, z),
        "l_linenumber": np.arange(lineitem_rows) % 7,
        "l_quantity": l_quantity,
        "l_extendedprice": l_price,
        "l_discount": rng.integers(0, 11, lineitem_rows) / 100.0,
        "l_tax": rng.integers(0, 9, lineitem_rows) / 100.0,
        "l_shipdate": l_shipdate,
        "l_commitdate": l_shipdate + rng.integers(-30, 31, lineitem_rows),
        "l_receiptdate": l_shipdate + rng.integers(1, 31, lineitem_rows),
        "l_returnflag": rng.integers(0, 3, lineitem_rows),
        "l_linestatus": rng.integers(0, 2, lineitem_rows),
        "l_shipmode": zipf_sample(rng, lineitem_rows, 7, z / 2),
        "l_shipinstruct": rng.integers(0, 4, lineitem_rows),
    }, clustered_on="l_orderkey"))

    return db
