"""CLI: manage a content-keyed trace store from the command line.

Works on ``--root DIR`` or, when omitted, on ``REPRO_TRACE_DIR``.

Examples
--------
List every recorded trace with metadata and on-disk size::

    python -m repro.trace list

Verify round-trip integrity (decode every run, re-encode it, compare
bit-for-bit against the stored bytes)::

    python -m repro.trace verify            # whole store
    python -m repro.trace verify KEY [...]  # specific keys

Garbage-collect unreadable leftovers — traces recorded under another
format version, orphaned ``write_trace`` staging directories, and stale
single-flight claim files::

    python -m repro.trace gc --dry-run
    python -m repro.trace gc
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import time
from pathlib import Path

import numpy as np

from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    run_to_manifest,
    run_to_members,
)
from repro.trace.store import (
    MANIFEST_NAME,
    RUNS_NAME,
    TRACE_DIR_ENV,
    TraceStore,
    _content_digest,
)


def _store_from_args(args) -> TraceStore:
    root = args.root or os.environ.get(TRACE_DIR_ENV)
    if not root:
        raise SystemExit(
            f"no trace store given: pass --root DIR or set {TRACE_DIR_ENV}")
    return TraceStore(root)


def _raw_manifest(path: Path) -> dict:
    """The manifest JSON without a version check (for list/gc, which must
    be able to describe traces this build cannot replay)."""
    return json.loads((path / MANIFEST_NAME).read_text())


def _human_size(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover


def cmd_list(args) -> int:
    store = _store_from_args(args)
    keys = store.keys()
    if not keys:
        print(f"empty trace store at {store.root}")
        return 0
    total = 0
    for key in keys:
        manifest = _raw_manifest(store.path(key))
        size = store.size_bytes(key)
        total += size
        version = manifest.get("format_version")
        stale = "" if version == TRACE_FORMAT_VERSION else \
            f"  [stale format v{version}]"
        meta = manifest.get("meta") or {}
        meta_text = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        print(f"{key}  runs={len(manifest.get('runs', []))}  "
              f"size={_human_size(size)}  {meta_text}{stale}")
    claims, staging = store.claims(), store.staging_dirs()
    print(f"{len(keys)} trace(s), {_human_size(total)} total"
          + (f"; {len(claims)} claim file(s)" if claims else "")
          + (f"; {len(staging)} staging dir(s)" if staging else ""))
    return 0


def cmd_verify(args) -> int:
    store = _store_from_args(args)
    keys = args.keys or store.keys()
    failures = 0
    for key in keys:
        problem = _verify_key(store, key)
        if problem is None:
            print(f"ok       {key}")
        else:
            failures += 1
            print(f"CORRUPT  {key}: {problem}")
    print(f"{len(keys) - failures}/{len(keys)} trace(s) verified")
    return 1 if failures else 0


def _verify_key(store: TraceStore, key: str) -> str | None:
    """Round-trip one trace; returns a problem description or None.

    Two layers: the recorded content digest (npz bytes + run entries)
    must match — catching bit-rot and tampering — and every run must
    decode and *re-encode* to the stored bytes exactly, catching
    truncated blobs, shape corruption and codec drift.  Pre-digest
    recordings only get the second layer.
    """
    try:
        runs = store.load(key)
        manifest = store.manifest(key)
        with np.load(store.path(key) / RUNS_NAME) as stored:
            stored_members = {name: stored[name] for name in stored.files}
    except Exception as exc:  # noqa: BLE001 — report, don't crash the sweep
        return f"unreadable ({exc})"
    integrity = manifest.get("integrity")
    if integrity is not None:
        recomputed = _content_digest(store.path(key) / RUNS_NAME,
                                     manifest["runs"])
        if recomputed != integrity.get("digest"):
            return "content digest mismatch (bit-rot or tampering)"
    reencoded: dict[str, np.ndarray] = {}
    for run, entry in zip(runs, manifest["runs"]):
        expected_entry = run_to_manifest(run)
        expected_entry["prefix"] = entry.get("prefix")
        if expected_entry != entry:
            return f"manifest entry for {run.query_name!r} does not re-encode"
        reencoded.update(run_to_members(run, entry["prefix"]))
    if set(reencoded) != set(stored_members):
        return "member set mismatch between manifest and runs.npz"
    for name, expected in reencoded.items():
        if not np.array_equal(expected, stored_members[name]):
            return f"member {name!r} diverges from its re-encoding"
    return None


def cmd_gc(args) -> int:
    store = _store_from_args(args)
    now = time.time()
    removals: list[tuple[Path, str]] = []
    for key in store.keys():
        version = _raw_manifest(store.path(key)).get("format_version")
        if version != TRACE_FORMAT_VERSION:
            removals.append((store.path(key),
                             f"stale format v{version} "
                             f"(current v{TRACE_FORMAT_VERSION})"))
    for staging in store.staging_dirs():
        if now - staging.stat().st_mtime > args.stale_after:
            removals.append((staging, "orphaned staging directory"))
    for claim in store.claims():
        if now - claim.stat().st_mtime > args.stale_after:
            removals.append((claim, "stale single-flight claim"))
    verb = "would remove" if args.dry_run else "removed"
    for path, reason in removals:
        if not args.dry_run:
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink(missing_ok=True)
        print(f"{verb} {path.name}: {reason}")
    print(f"{verb} {len(removals)} item(s)"
          + (f" (in-progress items younger than {args.stale_after:.0f}s "
             f"are kept; lower --stale-after to force)"
             if not removals else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect, verify and garbage-collect a trace store.")
    parser.add_argument("--root", default=None,
                        help=f"store directory (default ${TRACE_DIR_ENV})")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list keys with meta and size") \
        .set_defaults(func=cmd_list)
    verify = commands.add_parser(
        "verify", help="bit-for-bit round-trip check of recorded traces")
    verify.add_argument("keys", nargs="*",
                        help="keys to verify (default: every key)")
    verify.set_defaults(func=cmd_verify)
    gc = commands.add_parser(
        "gc", help="remove stale-format traces, orphaned staging dirs "
                   "and stale claims")
    gc.add_argument("--dry-run", action="store_true",
                    help="print what would be removed without removing")
    gc.add_argument("--stale-after", type=float, default=3600.0,
                    help="age in seconds before staging dirs/claims count "
                         "as orphaned (default 3600)")
    gc.set_defaults(func=cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
