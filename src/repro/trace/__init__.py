"""repro.trace — persistent execution traces: record once, replay everywhere.

The paper's pipeline (§4.1 selection, §6 evaluation) consumes counter
*trajectories*, not live queries, and capturing every estimator's signals
costs no more than capturing one (§6.4).  This package makes the capture
durable:

* :mod:`repro.trace.format` — the versioned on-disk schema: a plain-JSON
  manifest (plan/pipeline metadata) plus compressed ``.npz`` trajectory
  matrices per run; replays are bit-identical to the execution.
* :mod:`repro.trace.store` — trace directories and the content-keyed
  :class:`TraceStore` behind the ``REPRO_TRACE_DIR`` cache used by the
  experiment harness and all benchmarks.
* :mod:`repro.trace.replay` — feeding recordings back through the *live*
  monitoring code paths: :class:`ReplayExecutor` / :class:`ReplayHandle`
  for :class:`~repro.service.service.ProgressService` sessions, and
  :func:`replay_monitor` for solo monitoring.
"""

from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    run_from_members,
    run_to_manifest,
    run_to_members,
)
from repro.trace.replay import (
    ReplayContext,
    ReplayExecutor,
    ReplayHandle,
    replay_monitor,
)
from repro.trace.store import (
    TRACE_DIR_ENV,
    TraceStore,
    content_key,
    read_trace,
    write_trace,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TRACE_DIR_ENV",
    "TraceStore",
    "content_key",
    "read_trace",
    "write_trace",
    "run_to_manifest",
    "run_to_members",
    "run_from_members",
    "ReplayContext",
    "ReplayExecutor",
    "ReplayHandle",
    "replay_monitor",
]
