"""Replaying recorded runs through the monitoring stack.

A recorded :class:`~repro.engine.run.QueryRun` holds everything the
observation callback ever saw: counter matrices per snapshot, done flags
(``D``), pipeline windows and plan metadata.  :class:`ReplayContext`
re-materializes, observation by observation, the exact duck-typed surface
of :class:`~repro.engine.executor.ExecContext` that
:meth:`ProgressMonitor.snapshot <repro.core.monitor.ProgressMonitor.snapshot>`
and :func:`~repro.engine.run.live_pipeline_run` consume — so the *same*
causal snapshot code runs against the recording, and a replayed monitor
produces bit-identical reports to the live one, without touching the
engine.

:class:`ReplayExecutor` mirrors :class:`QueryExecutor.begin`'s shape, so a
:class:`~repro.service.session.QuerySession` (and therefore the whole
:class:`~repro.service.service.ProgressService`) can be driven by
recordings: each :meth:`ReplayHandle.step` advances one recorded
observation and fires the ``on_observation`` callback, exactly as the live
engine fires it from inside ``charge``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.counters import LogRow
from repro.engine.run import QueryRun, live_pipeline_run


class _ReplayNode:
    """Static plan-node stand-in rebuilt from recorded :class:`NodeInfo`."""

    __slots__ = ("node_id", "op", "table", "est_rows", "est_row_width",
                 "children")

    def __init__(self, info):
        self.node_id = info.node_id
        self.op = info.op
        self.table = info.table
        self.est_rows = info.est_rows
        self.est_row_width = info.est_row_width
        self.children: list["_ReplayNode"] = []


class _ReplayPlan:
    def __init__(self, nodes: list[_ReplayNode]):
        self._nodes = nodes
        self.n_nodes = len(nodes)

    def walk(self):
        # NodeInfo is recorded in plan preorder, so iteration order (and
        # with it every order-dependent float reduction downstream, e.g.
        # the monitor's ΣE weights) matches the live plan's walk().
        return iter(self._nodes)


class _ReplayPipe:
    """Stand-in for :class:`repro.plan.pipelines.Pipeline`."""

    __slots__ = ("pid", "nodes", "node_ids", "driver_ids")

    def __init__(self, info, node_by_id):
        self.pid = info.pid
        self.node_ids = list(info.node_ids)
        self.driver_ids = list(info.driver_ids)
        self.nodes = [node_by_id[i] for i in info.node_ids]

    @property
    def terminal(self):
        return self.nodes[0]


class _ReplayTable:
    __slots__ = ("n_rows",)

    def __init__(self, n_rows: float):
        self.n_rows = n_rows


class _ReplayDB:
    def __init__(self, name: str, table_rows: dict[str, float]):
        self.name = name
        self._tables = {t: _ReplayTable(r) for t, r in table_rows.items()}

    def table(self, name: str) -> _ReplayTable:
        return self._tables[name]


class _ReplayCounters:
    """Row views of the recorded K / D matrices at the current snapshot."""

    __slots__ = ("K", "done", "n_nodes")

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.K: np.ndarray | None = None
        self.done: np.ndarray | None = None


class _ReplayLog:
    def __init__(self, ctx: "ReplayContext"):
        self._ctx = ctx

    def __len__(self) -> int:
        # causal length: rows up to (and including) the current observation
        return self._ctx.observation_index + 1

    def row(self, i: int) -> LogRow:
        """One recorded snapshot, shaped like the live log's rows."""
        run = self._ctx.run
        return LogRow(float(run.times[i]), run.K[i], run.R[i], run.W[i],
                      run.LB[i], run.UB[i], run.D[i])

    def start_index(self, t_start: float) -> int:
        run = self._ctx.run
        return int(np.searchsorted(run.times[:len(self)], t_start,
                                   side="left"))

    def as_arrays(self) -> dict[str, np.ndarray]:
        ctx = self._ctx
        stop = ctx.observation_index + 1
        return {"times": ctx.run.times[:stop], "K": ctx.run.K[:stop],
                "R": ctx.run.R[:stop], "W": ctx.run.W[:stop],
                "LB": ctx.run.LB[:stop], "UB": ctx.run.UB[:stop],
                "D": ctx.run.D[:stop]}


class _ReplayClock:
    __slots__ = ("now",)

    def __init__(self):
        self.now = 0.0


class ReplayContext:
    """Observation-indexed view of a recorded run, ExecContext-shaped."""

    def __init__(self, run: QueryRun, query_name: str | None = None):
        if run.D is None:
            raise ValueError(
                "run lacks the done-flag matrix D and cannot be replayed; "
                "record it with the current engine (or a current trace)")
        if len(run.times) == 0:
            raise ValueError("run has no recorded observations")
        self.run = run
        self.query_name = query_name or run.query_name
        nodes = [_ReplayNode(info) for info in run.nodes]
        by_id = {n.node_id: n for n in nodes}
        self.parents: dict[int, int] = {}
        for info in run.nodes:
            if info.parent >= 0:
                self.parents[info.node_id] = info.parent
                by_id[info.parent].children.append(by_id[info.node_id])
        # parent pointers recover children in preorder (ids ascend within
        # each sibling list), matching the live plan's child order
        for node in nodes:
            node.children.sort(key=lambda n: n.node_id)
        self.plan = _ReplayPlan(nodes)
        self.pipelines = [_ReplayPipe(info, by_id) for info in run.pipelines]
        self.db = _ReplayDB(run.db_name, {
            info.table: info.table_rows
            for info in run.nodes if info.table is not None})
        self.counters = _ReplayCounters(len(nodes))
        self.log = _ReplayLog(self)
        self.clock = _ReplayClock()
        self._t_starts = np.array([p.t_start for p in run.pipelines])
        self.pipe_first = np.full(len(run.pipelines), np.nan)
        self.observation_index = -1
        self.seek(0)

    @property
    def n_observations(self) -> int:
        return len(self.run.times)

    def seek(self, index: int) -> None:
        """Position the context at recorded observation ``index``."""
        if not 0 <= index < self.n_observations:
            raise IndexError(f"observation index {index} out of range "
                             f"[0, {self.n_observations})")
        self.observation_index = index
        now = float(self.run.times[index])
        self.clock.now = now
        self.counters.K = self.run.K[index]
        self.counters.done = self.run.D[index]
        # a pipeline has started by now iff its first charge is in the past
        self.pipe_first = np.where(self._t_starts <= now,
                                   self._t_starts, np.nan)

    def live_pipeline_run(self, pipe, query_name: str = "(online)",
                          min_observations: int = 2):
        """Causal pipeline snapshot at the current observation (same code
        path as the live executor)."""
        return live_pipeline_run(self, pipe, query_name=query_name,
                                 min_observations=min_observations)


class ReplayHandle:
    """Drop-in for :class:`~repro.engine.executor.ExecutionHandle` over a
    recording: each step replays one observation instead of one unit of
    engine work."""

    def __init__(self, run: QueryRun,
                 on_observation: Callable[[ReplayContext], None] | None = None,
                 query_name: str | None = None):
        self.query_name = query_name or run.query_name
        self.ctx = ReplayContext(run, query_name=self.query_name)
        self._on_observation = on_observation
        self._run: QueryRun | None = None
        self._emit()  # the t=0 snapshot, as ExecutionHandle.__init__ does

    def _emit(self) -> None:
        if self._on_observation is not None:
            self._on_observation(self.ctx)

    @property
    def done(self) -> bool:
        return self._run is not None

    @property
    def result(self) -> QueryRun:
        if self._run is None:
            raise RuntimeError("replay has not finished; call step() "
                               "until it returns False (or run_to_completion)")
        return self._run

    def step(self) -> bool:
        """Replay the next observation; True while observations remain."""
        if self._run is not None:
            return False
        nxt = self.ctx.observation_index + 1
        if nxt < self.ctx.n_observations:
            self.ctx.seek(nxt)
            self._emit()
            return True
        self._run = self.ctx.run
        return False

    def skip(self, k: int) -> int:
        """Advance up to ``k`` observations without firing callbacks.

        The bulk-stepping primitive of the service's vectorized path: the
        deferred capture there reconstructs report rows from the recording
        directly, so per-observation emission is pure overhead.  Returns
        the number of observations actually advanced (the terminal
        transition past the last observation still requires :meth:`step`).
        """
        if self._run is not None or k <= 0:
            return 0
        take = min(k, self.ctx.n_observations - 1 - self.ctx.observation_index)
        if take > 0:
            self.ctx.seek(self.ctx.observation_index + take)
        return take

    def run_to_completion(self) -> QueryRun:
        while self.step():
            pass
        return self.result


class ReplayExecutor:
    """Mirror of :class:`~repro.engine.executor.QueryExecutor` that 'runs'
    a recorded :class:`QueryRun`.  ``begin`` ignores the plan argument —
    the recording *is* the plan plus its execution."""

    def __init__(self, run: QueryRun):
        if run.D is None:
            raise ValueError("run lacks the done-flag matrix D and cannot "
                             "be replayed")
        self.run = run
        self.on_observation: Callable[[ReplayContext], None] | None = None

    def begin(self, plan=None, query_name: str | None = None) -> ReplayHandle:
        return ReplayHandle(self.run, self.on_observation,
                            query_name=query_name)

    def execute(self, plan=None, query_name: str | None = None) -> QueryRun:
        return self.begin(plan, query_name).run_to_completion()


def replay_monitor(monitor, run: QueryRun) -> list:
    """Solo equivalent of :meth:`ProgressMonitor.run` over a recording.

    Produces the bit-identical report list the live monitor produced (or
    would have produced) for this execution — same snapshot cadence
    (``refresh_every``), same feature vectors, same selections — without
    executing anything.
    """
    from repro.core.monitor import MonitorState

    reports = []
    state = MonitorState()

    def observe(ctx: ReplayContext) -> None:
        state.ticks += 1
        if state.ticks % monitor.refresh_every:
            return
        report = monitor.finalize(monitor.snapshot(ctx, state), state)
        reports.append(report)
        if monitor.on_report is not None:
            monitor.on_report(report)

    ReplayHandle(run, observe).run_to_completion()
    return reports
