"""The on-disk trace format: one recorded query execution, split into a
JSON-safe manifest entry (plan/pipeline metadata, scalars) and a set of
dense NumPy array members (the §3.1 counter trajectories).

Conventions follow :mod:`repro.learning.serialize`: plain JSON, no pickle,
an explicit ``format_version`` checked up front — so traces can cross
Python versions and be inspected by hand.  Arrays are kept out of the JSON
and written as ``.npz`` members instead (binary float64 round-trips are
exact there, which the bit-identical-replay guarantee relies on; JSON would
survive it too via repr round-tripping, but at 10× the size).

Per run, the five same-shaped ``(T, n)`` counter matrices are stacked into
one ``(5, T, n)`` member ``C`` (order :data:`COUNTER_KEYS`) next to
``times``, the done-flag matrix ``D`` and the totals ``N`` — four members
per run instead of eight.  ``np.load`` pays a fixed header-parsing cost
per member, and warm-starting a 64-query workload from a trace is ~3×
faster this way (stack/unstack is bit-exact, so nothing else changes).

A trace *directory* (see :mod:`repro.trace.store`) bundles one manifest
with a single ``runs.npz`` holding every recorded run's members under an
``r<index>_`` prefix.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.engine.run import NodeInfo, PipelineInfo, QueryRun
from repro.learning.serialize import require_format_version
from repro.plan.nodes import Op

#: Version of the trace directory layout + per-run payload schema.
#: v2: the engine's worst-case bounds for nested-loop probe sides changed
#: (an inner INDEX_SEEK is bounded by outer-bound × table rows, not by the
#: table alone), so v1 recordings carry unsound UB trajectories.
#: v3: node manifests gained ``join_kind`` (LEFT OUTER / SEMI / ANTI join
#: support); join bounds are kind-aware, so v2 recordings of non-inner
#: plans could not be told apart from inner ones.
TRACE_FORMAT_VERSION = 3

#: Stacking order of the counter matrices inside the ``C`` member.
COUNTER_KEYS = ("K", "R", "W", "LB", "UB")

#: Per-run ``.npz`` member names (appended to the run's prefix).
MEMBER_KEYS = ("C", "times", "D", "N")


def _encode_float(x: float) -> float | None:
    """JSON-safe float: NaN (never-started pipelines, tableless nodes)
    becomes ``null`` so manifests stay standard JSON."""
    x = float(x)
    return None if np.isnan(x) else x


def _decode_float(x: float | None) -> float:
    return np.nan if x is None else float(x)


def run_to_manifest(run: QueryRun) -> dict[str, Any]:
    """Everything about ``run`` except the trajectories, as a JSON dict."""
    if run.D is None:
        raise ValueError(
            "QueryRun lacks the per-observation done-flag matrix D; "
            "re-execute with the current engine before recording a trace")
    return {
        "query_name": run.query_name,
        "db_name": run.db_name,
        "total_time": run.total_time,
        "output_rows": int(run.output_rows),
        "spill_events": int(run.spill_events),
        "nodes": [{
            "node_id": n.node_id,
            "op": n.op.value,
            "table": n.table,
            "est_rows": n.est_rows,
            "est_row_width": n.est_row_width,
            "table_rows": _encode_float(n.table_rows),
            "pid": n.pid,
            "parent": n.parent,
            "is_driver": n.is_driver,
            "is_build_side": n.is_build_side,
            "join_kind": n.join_kind,
        } for n in run.nodes],
        "pipelines": [{
            "pid": p.pid,
            "node_ids": list(p.node_ids),
            "driver_ids": list(p.driver_ids),
            "t_start": _encode_float(p.t_start),
            "t_end": _encode_float(p.t_end),
        } for p in run.pipelines],
    }


def run_to_members(run: QueryRun, prefix: str = "") -> dict[str, np.ndarray]:
    """The run's trajectory matrices as prefixed ``.npz`` member arrays."""
    if run.D is None:
        raise ValueError(
            "QueryRun lacks the per-observation done-flag matrix D; "
            "re-execute with the current engine before recording a trace")
    return {
        f"{prefix}C": np.stack([getattr(run, k) for k in COUNTER_KEYS]),
        f"{prefix}times": run.times,
        f"{prefix}D": run.D,
        f"{prefix}N": run.N,
    }


def run_from_members(manifest: dict[str, Any],
                     members: Mapping[str, np.ndarray],
                     prefix: str = "") -> QueryRun:
    """Assemble a :class:`QueryRun` back from its recorded halves.

    ``members`` is anything indexable by member name (an open ``np.load``
    handle or a plain dict).  The result is bit-identical to the executed
    original (modulo the deliberately-unrecorded ``output`` chunk): every
    matrix is the stored float64/bool binary, every scalar round-trips
    exactly through JSON.
    """
    try:
        arrays = {key: members[prefix + key] for key in MEMBER_KEYS}
    except KeyError as exc:
        raise ValueError(f"trace arrays missing member {exc}") from exc
    C = np.asarray(arrays["C"], dtype=np.float64)
    if C.ndim != 3 or C.shape[0] != len(COUNTER_KEYS):
        raise ValueError(f"counter block must be (5, T, n), got {C.shape}")
    counters = dict(zip(COUNTER_KEYS, C))
    nodes = [NodeInfo(
        node_id=int(n["node_id"]),
        op=Op(n["op"]),
        table=n["table"],
        est_rows=float(n["est_rows"]),
        est_row_width=float(n["est_row_width"]),
        table_rows=_decode_float(n["table_rows"]),
        pid=int(n["pid"]),
        parent=int(n["parent"]),
        is_driver=bool(n["is_driver"]),
        is_build_side=bool(n["is_build_side"]),
        join_kind=str(n["join_kind"]),
    ) for n in manifest["nodes"]]
    pipelines = [PipelineInfo(
        pid=int(p["pid"]),
        node_ids=[int(i) for i in p["node_ids"]],
        driver_ids=[int(i) for i in p["driver_ids"]],
        t_start=_decode_float(p["t_start"]),
        t_end=_decode_float(p["t_end"]),
    ) for p in manifest["pipelines"]]
    return QueryRun(
        query_name=manifest["query_name"],
        db_name=manifest["db_name"],
        nodes=nodes,
        pipelines=pipelines,
        times=np.asarray(arrays["times"], dtype=np.float64),
        K=counters["K"],
        R=counters["R"],
        W=counters["W"],
        LB=counters["LB"],
        UB=counters["UB"],
        N=np.asarray(arrays["N"], dtype=np.float64),
        total_time=float(manifest["total_time"]),
        output_rows=int(manifest["output_rows"]),
        spill_events=int(manifest["spill_events"]),
        D=np.asarray(arrays["D"], dtype=bool),
    )


def check_trace_version(manifest: dict[str, Any]) -> None:
    """Raise a clear error unless ``manifest`` is readable by this build."""
    require_format_version(manifest, TRACE_FORMAT_VERSION, "trace")


# -- report rows (the sharded service's wire format) --------------------------

#: Per-batch ``.npz`` member names of the report-row codec.
REPORT_MEMBER_KEYS = ("time", "progress", "active_pid", "active_est",
                      "pp_off", "pp_pid", "pp_val", "pe_off", "pe_pid",
                      "pe_est")


def reports_to_columns(reports) -> "tuple[dict[str, Any], dict[str, np.ndarray]]":
    """Encode a batch of :class:`~repro.core.monitor.ProgressReport` rows.

    Columnar split in the spirit of :func:`run_to_members`: every float
    crosses as binary float64 (bit-exact), strings are interned into one
    estimator-name table in the JSON-safe header entry, and the two
    variable-length per-report maps (``pipeline_progress`` /
    ``pipeline_estimator``) flatten into value arrays with offset arrays,
    CSR-style.  This is the sharded service's per-tick wire format — a
    decoded report compares equal to the original field by field, which
    the cross-shard bit-identity guarantee rides on.
    """
    names: list[str] = []
    index: dict[str, int] = {}

    def intern(name: str | None) -> int:
        if name is None:
            return -1
        at = index.get(name)
        if at is None:
            at = index[name] = len(names)
            names.append(name)
        return at

    n = len(reports)
    time = np.empty(n, dtype=np.float64)
    progress = np.empty(n, dtype=np.float64)
    active_pid = np.empty(n, dtype=np.int64)
    active_est = np.empty(n, dtype=np.int64)
    pp_off = np.zeros(n + 1, dtype=np.int64)
    pe_off = np.zeros(n + 1, dtype=np.int64)
    pp_pid: list[int] = []
    pp_val: list[float] = []
    pe_pid: list[int] = []
    pe_est: list[int] = []
    for i, report in enumerate(reports):
        time[i] = report.time
        progress[i] = report.progress
        active_pid[i] = report.active_pid
        active_est[i] = intern(report.active_estimator)
        for pid, value in report.pipeline_progress.items():
            pp_pid.append(pid)
            pp_val.append(value)
        pp_off[i + 1] = len(pp_pid)
        for pid, name in report.pipeline_estimator.items():
            pe_pid.append(pid)
            pe_est.append(intern(name))
        pe_off[i + 1] = len(pe_pid)
    entry = {"count": n, "estimators": names}
    members = {
        "time": time, "progress": progress,
        "active_pid": active_pid, "active_est": active_est,
        "pp_off": pp_off,
        "pp_pid": np.asarray(pp_pid, dtype=np.int64),
        "pp_val": np.asarray(pp_val, dtype=np.float64),
        "pe_off": pe_off,
        "pe_pid": np.asarray(pe_pid, dtype=np.int64),
        "pe_est": np.asarray(pe_est, dtype=np.int64),
    }
    return entry, members


def reports_from_columns(entry: dict[str, Any],
                         members: Mapping[str, np.ndarray],
                         prefix: str = "") -> list:
    """Decode :func:`reports_to_columns` output back into report objects."""
    from repro.core.monitor import ProgressReport

    names = list(entry["estimators"])
    col = {key: members[f"{prefix}{key}"] for key in REPORT_MEMBER_KEYS}
    reports = []
    for i in range(int(entry["count"])):
        pp_lo, pp_hi = int(col["pp_off"][i]), int(col["pp_off"][i + 1])
        pe_lo, pe_hi = int(col["pe_off"][i]), int(col["pe_off"][i + 1])
        est = int(col["active_est"][i])
        reports.append(ProgressReport(
            time=float(col["time"][i]),
            progress=float(col["progress"][i]),
            active_pid=int(col["active_pid"][i]),
            active_estimator=None if est < 0 else names[est],
            pipeline_progress={
                int(pid): float(value)
                for pid, value in zip(col["pp_pid"][pp_lo:pp_hi],
                                      col["pp_val"][pp_lo:pp_hi])},
            pipeline_estimator={
                int(pid): names[int(at)]
                for pid, at in zip(col["pe_pid"][pe_lo:pe_hi],
                                   col["pe_est"][pe_lo:pe_hi])},
        ))
    return reports
