"""Writing and reading trace directories, plus the content-keyed store.

A *trace* is one directory::

    <path>/
      manifest.json          # format version, optional meta, run index
      runs.npz               # all runs' trajectory members, r<i>_ prefixed

:func:`write_trace` / :func:`read_trace` handle one directory; a
:class:`TraceStore` manages a root of them, addressed by *content keys* —
stable hashes of the parameters that produced the runs (workload, scale,
seeds, format version), so a cache hit is only possible when the recording
would be byte-identical anyway.  ``TraceStore.from_env()`` turns the
``REPRO_TRACE_DIR`` environment variable into a store, which is how the
experiment harness and every benchmark warm-start across processes.

Writes go to a temp directory first and are renamed into place, so a
killed process never leaves a half-written trace behind a valid manifest.
Cold starts are additionally *single-flight*: ``load_or_compute`` guards
each missing key with a claim file, so concurrent processes warming the
same key execute it once instead of N times (see
:meth:`TraceStore.load_or_compute`).  ``python -m repro.trace`` lists,
verifies and garbage-collects a store from the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.engine.run import QueryRun
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    check_trace_version,
    run_from_members,
    run_to_manifest,
    run_to_members,
)

MANIFEST_NAME = "manifest.json"
RUNS_NAME = "runs.npz"
CLAIM_SUFFIX = ".claim"

#: Environment variable naming the shared trace cache directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def content_key(payload: dict[str, Any]) -> str:
    """Stable short hash of a JSON-able parameter dict."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _content_digest(npz_path: Path, entries: list[dict]) -> str:
    """Digest of one trace's payload: raw npz bytes + canonical entries."""
    digest = hashlib.sha256(npz_path.read_bytes())
    digest.update(json.dumps(entries, sort_keys=True,
                             separators=(",", ":")).encode())
    return digest.hexdigest()


def write_trace(path: str | Path, runs: list[QueryRun],
                meta: dict[str, Any] | None = None) -> Path:
    """Record ``runs`` into the trace directory ``path`` (replacing it).

    Concurrent-writer safe for the content-keyed cache: each writer
    stages into its own hidden temp directory and renames it into place,
    so two processes cold-starting the same key never corrupt each other
    — the loser of the rename race discards its staging copy (the
    winner's content is equivalent by construction of the key).
    """
    if not runs:
        raise ValueError("refusing to write an empty trace")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}.tmp-"))
    entries = []
    members: dict[str, np.ndarray] = {}
    for i, run in enumerate(runs):
        entry = run_to_manifest(run)
        entry["prefix"] = f"r{i:04d}_"
        members.update(run_to_members(run, entry["prefix"]))
        entries.append(entry)
    np.savez_compressed(tmp / RUNS_NAME, **members)
    manifest = {
        "format_version": TRACE_FORMAT_VERSION,
        "meta": meta or {},
        "runs": entries,
        # content digest over the npz bytes + the run entries, so
        # `python -m repro.trace verify` can detect bit-rot or tampering
        # (absent from pre-digest recordings; readers never require it)
        "integrity": {"algo": "sha256",
                      "digest": _content_digest(tmp / RUNS_NAME, entries)},
    }
    (tmp / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))
    # Rename into place without ever deleting a *shared* path: an existing
    # trace is first rotated onto a process-private graveyard name, so
    # concurrent writers only ever rmtree directories they themselves
    # created (deleting `path` directly would race another writer's
    # rename and can fail half-way, leaving a corrupt trace visible).
    for attempt in range(8):
        try:
            os.replace(tmp, path)
            return path
        except OSError:
            pass  # path exists and is non-empty: rotate it aside
        graveyard = path.parent / f".{path.name}.old-{os.getpid()}-{attempt}"
        try:
            os.rename(path, graveyard)
        except OSError:
            continue  # another writer rotated it first; retry the replace
        shutil.rmtree(graveyard, ignore_errors=True)
    # contended beyond reason: a concurrent writer's copy is in place and
    # equivalent by construction of the content key — keep theirs
    shutil.rmtree(tmp, ignore_errors=True)
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load and version-check a trace directory's manifest."""
    manifest = json.loads((Path(path) / MANIFEST_NAME).read_text())
    check_trace_version(manifest)
    return manifest


def read_trace(path: str | Path) -> tuple[list[QueryRun], dict[str, Any]]:
    """Replay every run recorded at ``path``; returns (runs, manifest).

    Retries briefly on a vanished file: a concurrent ``write_trace`` to
    the same path rotates the old directory aside for a moment before
    the fresh copy lands, so a reader can catch the gap between opening
    the manifest and opening ``runs.npz``.  The replacement is equivalent
    content (that is the content-key contract), so retrying is correct.
    """
    path = Path(path)
    for attempt in range(5):
        try:
            manifest = read_manifest(path)
            with np.load(path / RUNS_NAME) as members:
                runs = [run_from_members(entry, members, entry["prefix"])
                        for entry in manifest["runs"]]
            return runs, manifest
        except FileNotFoundError:
            if attempt == 4:
                raise
            time.sleep(0.01 * (attempt + 1))


class TraceStore:
    """A directory of traces addressed by content key."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @classmethod
    def from_env(cls, var: str = TRACE_DIR_ENV) -> "TraceStore | None":
        """The store named by ``REPRO_TRACE_DIR``, or None when unset."""
        root = os.environ.get(var)
        return cls(root) if root else None

    def path(self, key: str) -> Path:
        return self.root / key

    def exists(self, key: str) -> bool:
        return (self.path(key) / MANIFEST_NAME).is_file()

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.parent.name
                      for p in self.root.glob(f"*/{MANIFEST_NAME}")
                      if not p.parent.name.startswith("."))  # staging dirs

    def save(self, key: str, runs: list[QueryRun],
             meta: dict[str, Any] | None = None) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        return write_trace(self.path(key), runs, meta=meta)

    def load(self, key: str) -> list[QueryRun]:
        runs, _ = read_trace(self.path(key))
        return runs

    def manifest(self, key: str) -> dict[str, Any]:
        return read_manifest(self.path(key))

    def size_bytes(self, key: str) -> int:
        """Total on-disk size of one recorded trace."""
        return sum(p.stat().st_size for p in self.path(key).glob("*")
                   if p.is_file())

    # -- single-flight cold starts ----------------------------------------
    #
    # Concurrent processes cold-starting the same content key would each
    # pay the full execution and then race the rename in write_trace —
    # harmless for correctness (the key guarantees equivalent content) but
    # N× the work.  A *claim file* next to the trace directory makes the
    # cold start single-flight: the first process to O_EXCL-create the
    # claim executes; everyone else polls until the manifest appears and
    # replays.  A claim older than ``stale_after`` is presumed orphaned
    # (its owner was killed between claiming and saving) and is stolen.

    def claim_path(self, key: str) -> Path:
        return self.root / f".{key}{CLAIM_SUFFIX}"

    def claims(self) -> list[Path]:
        """Outstanding (possibly stale) claim files in this store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f".*{CLAIM_SUFFIX}"))

    def staging_dirs(self) -> list[Path]:
        """Hidden in-progress (or orphaned) write_trace work dirs —
        ``.tmp-`` staging copies and ``.old-`` rotation graveyards."""
        if not self.root.is_dir():
            return []
        return sorted(p for pattern in (".*.tmp-*", ".*.old-*")
                      for p in self.root.glob(pattern) if p.is_dir())

    def _try_claim(self, key: str) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.claim_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            json.dump({"pid": os.getpid(), "claimed_at": time.time()}, handle)
        return True

    def release_claim(self, key: str) -> None:
        self.claim_path(key).unlink(missing_ok=True)

    def _steal_claim(self, key: str, observed_mtime: float) -> None:
        """Remove a stale claim — but only if it is still the claim we
        observed.  A waiter preempted between its staleness check and the
        removal must not delete a *fresh* claim some new owner created in
        between (the mtime re-check catches that; a fresh claim is always
        newer).  The instruction-scale window that remains can at worst
        cause a duplicate computation, which is benign: same-key saves
        are content-equivalent and ``write_trace`` is concurrent-safe.
        """
        try:
            if self.claim_path(key).stat().st_mtime == observed_mtime:
                self.release_claim(key)
        except OSError:
            pass  # already released or stolen by another waiter

    def load_or_compute(self, key: str,
                        compute: Callable[[], list[QueryRun]],
                        meta: dict[str, Any] | None = None, *,
                        timeout: float = 600.0,
                        stale_after: float = 600.0,
                        poll_interval: float = 0.02
                        ) -> tuple[list[QueryRun], str]:
        """Load ``key``, or single-flight ``compute()`` + record it.

        Returns ``(runs, source)`` with ``source`` one of ``"hit"`` (the
        trace existed, or a concurrent winner recorded it while we
        waited) or ``"computed"`` (this process executed).  Among any
        number of concurrent callers for a missing key, exactly one
        computes; the rest wait up to ``timeout`` seconds and replay the
        winner's recording.  If ``compute`` raises, the claim is released
        so a waiting process can take over.
        """
        deadline = time.monotonic() + timeout
        while True:
            if self.exists(key):
                return self.load(key), "hit"
            if self._try_claim(key):
                try:
                    if self.exists(key):
                        # a winner finished between our exists() check and
                        # the claim: replay its recording
                        return self.load(key), "hit"
                    runs = compute()
                    self.save(key, runs, meta=meta)
                finally:
                    self.release_claim(key)
                return runs, "computed"
            try:
                claim_mtime = self.claim_path(key).stat().st_mtime
            except OSError:  # holder just released; re-check immediately
                continue
            if time.time() - claim_mtime > stale_after:
                self._steal_claim(key, claim_mtime)
                continue
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"timed out after {timeout:.0f}s waiting for another "
                    f"process to record trace key {key!r} (claim file "
                    f"{self.claim_path(key)}); remove the claim to retry")
            time.sleep(poll_interval)
