"""Writing and reading trace directories, plus the content-keyed store.

A *trace* is one directory::

    <path>/
      manifest.json          # format version, optional meta, run index
      runs.npz               # all runs' trajectory members, r<i>_ prefixed

:func:`write_trace` / :func:`read_trace` handle one directory; a
:class:`TraceStore` manages a root of them, addressed by *content keys* —
stable hashes of the parameters that produced the runs (workload, scale,
seeds, format version), so a cache hit is only possible when the recording
would be byte-identical anyway.  ``TraceStore.from_env()`` turns the
``REPRO_TRACE_DIR`` environment variable into a store, which is how the
experiment harness and every benchmark warm-start across processes.

Writes go to a temp directory first and are renamed into place, so a
killed process never leaves a half-written trace behind a valid manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.engine.run import QueryRun
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    check_trace_version,
    run_from_members,
    run_to_manifest,
    run_to_members,
)

MANIFEST_NAME = "manifest.json"
RUNS_NAME = "runs.npz"

#: Environment variable naming the shared trace cache directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


def content_key(payload: dict[str, Any]) -> str:
    """Stable short hash of a JSON-able parameter dict."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def write_trace(path: str | Path, runs: list[QueryRun],
                meta: dict[str, Any] | None = None) -> Path:
    """Record ``runs`` into the trace directory ``path`` (replacing it).

    Concurrent-writer safe for the content-keyed cache: each writer
    stages into its own hidden temp directory and renames it into place,
    so two processes cold-starting the same key never corrupt each other
    — the loser of the rename race discards its staging copy (the
    winner's content is equivalent by construction of the key).
    """
    if not runs:
        raise ValueError("refusing to write an empty trace")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=f".{path.name}.tmp-"))
    entries = []
    members: dict[str, np.ndarray] = {}
    for i, run in enumerate(runs):
        entry = run_to_manifest(run)
        entry["prefix"] = f"r{i:04d}_"
        members.update(run_to_members(run, entry["prefix"]))
        entries.append(entry)
    np.savez_compressed(tmp / RUNS_NAME, **members)
    manifest = {
        "format_version": TRACE_FORMAT_VERSION,
        "meta": meta or {},
        "runs": entries,
    }
    (tmp / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))
    if path.exists():
        shutil.rmtree(path)
    try:
        os.replace(tmp, path)
    except OSError:
        # a concurrent writer renamed its copy in between: keep theirs
        shutil.rmtree(tmp, ignore_errors=True)
    return path


def read_manifest(path: str | Path) -> dict[str, Any]:
    """Load and version-check a trace directory's manifest."""
    manifest = json.loads((Path(path) / MANIFEST_NAME).read_text())
    check_trace_version(manifest)
    return manifest


def read_trace(path: str | Path) -> tuple[list[QueryRun], dict[str, Any]]:
    """Replay every run recorded at ``path``; returns (runs, manifest)."""
    path = Path(path)
    manifest = read_manifest(path)
    with np.load(path / RUNS_NAME) as members:
        runs = [run_from_members(entry, members, entry["prefix"])
                for entry in manifest["runs"]]
    return runs, manifest


class TraceStore:
    """A directory of traces addressed by content key."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    @classmethod
    def from_env(cls, var: str = TRACE_DIR_ENV) -> "TraceStore | None":
        """The store named by ``REPRO_TRACE_DIR``, or None when unset."""
        root = os.environ.get(var)
        return cls(root) if root else None

    def path(self, key: str) -> Path:
        return self.root / key

    def exists(self, key: str) -> bool:
        return (self.path(key) / MANIFEST_NAME).is_file()

    def keys(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.parent.name
                      for p in self.root.glob(f"*/{MANIFEST_NAME}")
                      if not p.parent.name.startswith("."))  # staging dirs

    def save(self, key: str, runs: list[QueryRun],
             meta: dict[str, Any] | None = None) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        return write_trace(self.path(key), runs, meta=meta)

    def load(self, key: str) -> list[QueryRun]:
        runs, _ = read_trace(self.path(key))
        return runs

    def manifest(self, key: str) -> dict[str, Any]:
        return read_manifest(self.path(key))
