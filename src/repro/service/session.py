"""One live query inside the progress service.

A :class:`QuerySession` bundles everything the service tracks per query:
the resumable :class:`~repro.engine.executor.ExecutionHandle`, the
per-query :class:`~repro.core.monitor.MonitorState` (sticky estimator
choices + tick counter), the queue of causally-captured
:class:`~repro.core.monitor.ReportDraft` objects awaiting finalization,
and the finalized :class:`~repro.core.monitor.ProgressReport` stream.

Sessions are passive: the :class:`~repro.service.service.ProgressService`
steps their handles, batches their pending estimator selections, and
finalizes their drafts.

Capture comes in two flavours.  In the default (scalar) mode the
observation callback snapshots a full :class:`ReportDraft` per due report,
exactly like the solo monitor.  In *deferred* mode — enabled by the
service when its vectorized flush owns report production — the callback
only records which observation rows are due (``pending_reports``; for
live executions also a copy of the pipeline-start vector, the one causal
input that later rows cannot reconstruct); the flush rebuilds the drafts
from those rows.  Deferred replay sessions additionally support *bulk*
stepping: a whole time slice advances in one seek, with the due report
rows derived arithmetically, skipping per-observation callbacks entirely.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.core.monitor import (
    MonitorState,
    ProgressMonitor,
    ProgressReport,
    ReportDraft,
)
from repro.engine.executor import ExecutionHandle, QueryExecutor
from repro.engine.run import QueryRun


class SessionStatus(enum.Enum):
    PENDING = "pending"    # submitted, waiting for a live slot
    RUNNING = "running"
    DONE = "done"


class QuerySession:
    """State of one monitored query managed by the service.

    ``executor`` is either a live :class:`QueryExecutor` or a
    :class:`~repro.trace.replay.ReplayExecutor` over a recorded run — the
    session only relies on the shared ``begin()`` / ``on_observation``
    surface, so live and replayed queries are scheduled identically.
    """

    def __init__(self, session_id: int, executor: "QueryExecutor | object",
                 plan, query_name: str, monitor: ProgressMonitor,
                 deferred: bool = False):
        self.session_id = session_id
        self.query_name = query_name
        self.status = SessionStatus.PENDING
        self.state = MonitorState()
        self.reports: list[ProgressReport] = []
        self.drafts: deque[ReportDraft] = deque()
        #: deferred capture: observation-log row index per due report
        self.pending_reports: list[int] = []
        #: deferred live capture: pipe_first copy per due report (the only
        #: mutable causal input the log row itself does not record)
        self.pending_starts: list = []
        self.deferred = deferred
        self.steps = 0
        self.released = False
        self._monitor = monitor
        self._executor = executor
        self._plan = plan
        self._handle: ExecutionHandle | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Create the execution handle (runs the t=0 observation)."""
        assert self.status is SessionStatus.PENDING
        self.status = SessionStatus.RUNNING
        # Binding on_observation per-session: the executor instance is owned
        # by this session, so the callback can close over its state.
        self._executor.on_observation = (
            self._observe_deferred if self.deferred else self._observe)
        self._handle = self._executor.begin(self._plan, self.query_name)

    def step(self) -> bool:
        """Advance by one unit of work; returns False when the query ends."""
        assert self._handle is not None
        self.steps += 1
        more = self._handle.step()
        if not more:
            self.status = SessionStatus.DONE
        return more

    @property
    def can_bulk(self) -> bool:
        """True when a slice can advance without per-observation callbacks
        (deferred capture over a seekable replay handle)."""
        return self.deferred and hasattr(self._handle, "skip")

    def step_bulk(self, k: int) -> int:
        """Advance up to ``k`` replay steps in one seek; steps used.

        Mirrors ``k`` iterations of :meth:`step` under deferred capture:
        the tick counter advances per skipped observation and the due
        report rows (every ``refresh_every``-th tick) are derived from
        the tick arithmetic instead of callbacks.  Relies on the replay
        invariant ``ticks == observation_index + 1`` (every observation,
        including the t=0 emit, bumps the counter exactly once).
        """
        assert self._handle is not None
        ctx = self._handle.ctx
        index = ctx.observation_index
        take = self._handle.skip(k)
        if take:
            self.steps += take
            ticks = self.state.ticks
            self.state.ticks = ticks + take
            refresh = self._monitor.refresh_every
            first = (ticks // refresh + 1) * refresh
            for t in range(first, ticks + take + 1, refresh):
                self.pending_reports.append(index + (t - ticks))
        used = take
        if take < k:
            self.step()  # the terminal transition past the last observation
            used += 1
        return used

    @property
    def done(self) -> bool:
        return self.status is SessionStatus.DONE

    def release(self) -> None:
        """Drop everything but the tombstone (id, status, step count).

        The sharded service's drain protocol calls this once a finished
        session's reports have been shipped: the execution handle (which
        pins the whole recorded run for replay sessions), the queued
        capture state and the report list all go, so shard memory scales
        with live sessions under churn.  Idempotent.
        """
        if not self.done:
            raise RuntimeError(
                f"session {self.session_id} is {self.status.value}; only "
                f"completed sessions can be released")
        self.released = True
        self.reports = []
        self.drafts.clear()
        self.pending_reports = []
        self.pending_starts = []
        self.state = MonitorState()
        self._executor = None
        self._plan = None
        self._handle = None

    @property
    def result(self) -> QueryRun:
        assert self._handle is not None
        return self._handle.result

    @property
    def handle_ctx(self):
        """The execution/replay context (flush-side accessor)."""
        assert self._handle is not None
        return self._handle.ctx

    # -- observation capture -------------------------------------------------

    def _observe(self, ctx) -> None:
        """Observation callback: causal capture only, no scoring.

        Mirrors the solo :meth:`ProgressMonitor.run` callback except that
        the draft is queued instead of finalized — the service resolves
        pending selections for *all* sessions in one batched pass at the
        end of the scheduler round, then finalizes queued drafts in order.
        """
        self.state.ticks += 1
        if self.state.ticks % self._monitor.refresh_every:
            return
        self.drafts.append(self._monitor.snapshot(ctx, self.state))

    def _observe_deferred(self, ctx) -> None:
        """Deferred capture: record only *which* row is due a report."""
        self.state.ticks += 1
        if self.state.ticks % self._monitor.refresh_every:
            return
        index = getattr(ctx, "observation_index", None)
        if index is None:  # live execution: the row just logged
            self.pending_reports.append(len(ctx.log) - 1)
            self.pending_starts.append(ctx.pipe_first.copy())
        else:  # replay: the row the context sits on
            self.pending_reports.append(index)
