"""One live query inside the progress service.

A :class:`QuerySession` bundles everything the service tracks per query:
the resumable :class:`~repro.engine.executor.ExecutionHandle`, the
per-query :class:`~repro.core.monitor.MonitorState` (sticky estimator
choices + tick counter), the queue of causally-captured
:class:`~repro.core.monitor.ReportDraft` objects awaiting finalization,
and the finalized :class:`~repro.core.monitor.ProgressReport` stream.

Sessions are passive: the :class:`~repro.service.service.ProgressService`
steps their handles, batches their pending estimator selections, and
finalizes their drafts.
"""

from __future__ import annotations

import enum
from collections import deque

from repro.core.monitor import (
    MonitorState,
    ProgressMonitor,
    ProgressReport,
    ReportDraft,
)
from repro.engine.executor import ExecutionHandle, QueryExecutor
from repro.engine.run import QueryRun


class SessionStatus(enum.Enum):
    PENDING = "pending"    # submitted, waiting for a live slot
    RUNNING = "running"
    DONE = "done"


class QuerySession:
    """State of one monitored query managed by the service.

    ``executor`` is either a live :class:`QueryExecutor` or a
    :class:`~repro.trace.replay.ReplayExecutor` over a recorded run — the
    session only relies on the shared ``begin()`` / ``on_observation``
    surface, so live and replayed queries are scheduled identically.
    """

    def __init__(self, session_id: int, executor: "QueryExecutor | object",
                 plan, query_name: str, monitor: ProgressMonitor):
        self.session_id = session_id
        self.query_name = query_name
        self.status = SessionStatus.PENDING
        self.state = MonitorState()
        self.reports: list[ProgressReport] = []
        self.drafts: deque[ReportDraft] = deque()
        self.steps = 0
        self._monitor = monitor
        self._executor = executor
        self._plan = plan
        self._handle: ExecutionHandle | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Create the execution handle (runs the t=0 observation)."""
        assert self.status is SessionStatus.PENDING
        self.status = SessionStatus.RUNNING
        # Binding on_observation per-session: the executor instance is owned
        # by this session, so the callback can close over its state.
        self._executor.on_observation = self._observe
        self._handle = self._executor.begin(self._plan, self.query_name)

    def step(self) -> bool:
        """Advance by one unit of work; returns False when the query ends."""
        assert self._handle is not None
        self.steps += 1
        more = self._handle.step()
        if not more:
            self.status = SessionStatus.DONE
        return more

    @property
    def done(self) -> bool:
        return self.status is SessionStatus.DONE

    @property
    def result(self) -> QueryRun:
        assert self._handle is not None
        return self._handle.result

    # -- observation capture -------------------------------------------------

    def _observe(self, ctx) -> None:
        """Observation callback: causal capture only, no scoring.

        Mirrors the solo :meth:`ProgressMonitor.run` callback except that
        the draft is queued instead of finalized — the service resolves
        pending selections for *all* sessions in one batched pass at the
        end of the scheduler round, then finalizes queued drafts in order.
        """
        self.state.ticks += 1
        if self.state.ticks % self._monitor.refresh_every:
            return
        self.drafts.append(self._monitor.snapshot(ctx, self.state))
