"""The vectorized flush: one NumPy pass per estimator kind per tick.

The scalar flush finalizes each session's drafts one by one, advancing
that session's streaming states in Python — O(sessions × estimators)
interpreter work per tick.  :class:`VectorizedFlush` replaces the whole
flush phase when every estimator in the monitor's pool has a native
structure-of-arrays kernel (:mod:`repro.progress.soa`):

1. **plan** — sessions capture only *which* observation rows are due
   reports (:attr:`QuerySession.pending_reports`); the flush rebuilds
   each due report's :class:`~repro.core.monitor.ReportDraft` causally
   from the log rows (pipeline status as of the row, cursor advancement,
   selection bookkeeping through the monitor's own ``_selection_needs``),
   registering every running pipeline's delta rows against its pool slot;
2. **resolve** — pending estimator selections of all sessions are
   deduplicated and scored in one batched pass, exactly like the scalar
   flush;
3. **gather/advance** — all registered rows are gathered into flat
   ``(rows, width)`` zero-padded arrays and every needed estimator kind
   advances once over the whole batch;
4. **finalize** — the per-row results are handed to
   :meth:`ProgressMonitor.finalize` via its ``values`` argument, draft by
   draft in capture order, so report assembly, selection commitment and
   the report surface stay shared with the scalar path.

Causality notes (why this reproduces the callback-time captures
bit-for-bit):

* a pipeline's *started* status at row ``R`` is reconstructed from the
  recorded start times (replay: ``t_start <= times[R]``, the same rule
  ``ReplayContext.seek`` applies) or from a copy of ``pipe_first`` taken
  in the observation callback (live: zero-cost charges may start a
  pipeline at exactly ``times[R]`` *after* the observation fired, so the
  reconstruction from times alone would not be causal);
* *done* status comes from the logged done-flag row, which is what the
  callback-time capture read;
* per-slot row sets mirror the scalar capture rule as of the END of the
  previous flush (captures run in callbacks before the scalar flush, so
  all drafts of one flush see the pre-flush prune state) — slot flags
  are therefore read during planning and updated only after finalize;
* feature extraction at a selection-opening row rebuilds the causal
  trajectory view with the scalar code path itself: replay contexts are
  seeked to ``R`` and restored, live contexts get an as-of adapter over
  the append-only observation log.
"""

from __future__ import annotations

import numpy as np

from repro.core.monitor import (
    DYNAMIC,
    PipeSnapshot,
    ProgressMonitor,
    ReportDraft,
    _capture_tick,
    _pipeline_meta,
)
from repro.engine.run import live_pipeline_run
from repro.progress.soa import FlushBatch, SoAPool, batched_states
from repro.progress.streaming import tick_driver_fraction


class _AsOfLog:
    """Truncated view of a live observation log (rows ``< stop``)."""

    __slots__ = ("_log", "_stop")

    def __init__(self, log, stop: int):
        self._log = log
        self._stop = stop

    def as_arrays(self):
        return self._log.as_arrays(stop=self._stop)


class _AsOfCounters:
    __slots__ = ("K", "done")

    def __init__(self, row):
        self.K = row.K
        self.done = row.D


class _AsOfClock:
    __slots__ = ("now",)

    def __init__(self, now: float):
        self.now = now


class _AsOfLive:
    """ExecContext view of a live execution *as of* an earlier row.

    Presents exactly the surface :func:`live_pipeline_run` consumes, with
    every mutable input rolled back to observation ``row_index``: the log
    truncated (rows are append-only, so the prefix is the historical
    log), counters/done flags from the logged row, the clock at the row's
    time and the ``pipe_first`` copy captured in the callback.
    """

    __slots__ = ("log", "counters", "clock", "pipe_first", "parents", "db")

    def __init__(self, ctx, row_index: int, pipe_first: np.ndarray):
        row = ctx.log.row(row_index)
        self.log = _AsOfLog(ctx.log, row_index + 1)
        self.counters = _AsOfCounters(row)
        self.clock = _AsOfClock(float(row.time))
        self.pipe_first = pipe_first
        self.parents = ctx.parents
        self.db = ctx.db


class _SlotRec:
    """Per-(session, pipeline) flush bookkeeping, mirroring the scalar
    :class:`~repro.core.monitor.PipelineStreams` lifecycle flags."""

    __slots__ = ("slot", "advanced", "pruned", "keep_all", "luo_alive")

    def __init__(self, slot: int, has_stateful: bool):
        self.slot = slot
        #: finalized at least once (scalar: streams object exists)
        self.advanced = False
        #: selection became final; non-chosen states dropped
        self.pruned = False
        #: capture every row since the cursor (scalar: streams.stateful
        #: non-empty, or streams not yet created)
        self.keep_all = True
        #: the stateful (LUO) slot state still advances
        self.luo_alive = has_stateful


class _Item:
    """One running pipeline inside one draft."""

    __slots__ = ("snap", "rec", "pos", "name")

    def __init__(self, snap: PipeSnapshot, rec: _SlotRec, pos: int):
        self.snap = snap
        self.rec = rec
        self.pos = pos  # index of the report row within the slot's rows
        self.name = None


class VectorizedFlush:
    """Flush-phase driver advancing all sessions' states per kind at once."""

    def __init__(self, monitor: ProgressMonitor, pool: SoAPool, states):
        self.monitor = monitor
        self.pool = pool
        self.states = states
        self._stateful_names = {n for n, s in states.items() if s.stateful}
        self._has_stateful = bool(self._stateful_names)
        #: session_id -> pid -> slot record
        self._recs: dict[int, dict[int, _SlotRec]] = {}
        self._to_release: list[_SlotRec] = []

    @classmethod
    def create(cls, monitor: ProgressMonitor) -> "VectorizedFlush | None":
        """A flush driver for ``monitor``, or ``None`` when the scalar
        path must be kept (batch-mode monitor, or an estimator without a
        native SoA kernel)."""
        if not monitor.incremental:
            return None
        pool = SoAPool()
        states = batched_states(monitor.estimators, pool)
        if states is None:
            return None
        return cls(monitor, pool, states)

    def release_session(self, session) -> None:
        """Free every slot a completed session still holds."""
        recs = self._recs.pop(session.session_id, None)
        if recs:
            for rec in recs.values():
                self._release(rec)

    def _release(self, rec: _SlotRec) -> None:
        self.pool.release(rec.slot)
        for st in self.states.values():
            st.release(rec.slot)

    # -- the flush -----------------------------------------------------------

    def flush(self, drafted, scorer, stats, on_report) -> None:
        """Produce every due report of ``drafted`` (ascending session id)."""
        slot_lists: dict[int, list[int]] = {}
        slot_meta: dict[int, object] = {}
        slot_session: dict[int, object] = {}
        slot_recs: dict[int, _SlotRec] = {}
        planned = [
            (session, self._plan_session(session, slot_lists, slot_meta,
                                         slot_session, slot_recs))
            for session in drafted]

        # batched selection resolve — same dedup rule as the scalar flush
        requests: list[tuple[str, object]] = []
        targets: list[tuple[object, int, str]] = []
        for session, per in planned:
            seen: set[tuple[int, str]] = set()
            for draft, _items in per:
                for snap in draft.pending_selections(session.state):
                    key = (snap.pid, snap.kind)
                    if key in seen:
                        continue  # first observation wins, as in solo mode
                    seen.add(key)
                    requests.append((snap.kind, snap.features))
                    targets.append((session, snap.pid, snap.kind))
        if requests:
            names = scorer.resolve(requests)
            for (session, pid, kind), name in zip(targets, names):
                made = (session.state.dynamic_choices if kind == DYNAMIC
                        else session.state.static_choices)
                made[pid] = name

        # peek each item's (now committed) choice; the kinds to advance
        monitor = self.monitor
        needed: set[str] = set()
        for session, per in planned:
            state = session.state
            for _draft, items in per:
                for it in items:
                    pid = it.snap.pid
                    if it.snap.kind == DYNAMIC:
                        name = state.dynamic_choices[pid]
                    elif monitor.static_selector is None:
                        name = state.static_choices.get(pid, monitor.fallback)
                    else:
                        name = state.static_choices[pid]
                    it.name = name
                    needed.add(name)

        # gather all rows once; one advance per kind over the whole batch
        arrs: dict[str, np.ndarray] = {}
        flat_lo: dict[int, int] = {}
        if slot_lists:
            batch = self._gather(slot_lists, slot_meta, slot_session, flat_lo)
            for name in needed - self._stateful_names:
                arrs[name] = self.states[name].advance(batch)
            if self._has_stateful:
                alive = np.zeros(len(batch), dtype=bool)
                for slot, (lo, hi) in batch.slot_rows.items():
                    if slot_recs[slot].luo_alive:
                        alive[lo:hi] = True
                for name in self._stateful_names:
                    out = self.states[name].advance(batch, row_mask=alive)
                    if name in needed:
                        arrs[name] = out

        # finalize in capture order; apply end-of-flush prune bookkeeping
        no_dynamic = monitor.dynamic_selector is None
        for session, per in planned:
            for draft, items in per:
                values = {
                    it.snap.pid: float(arrs[it.name][flat_lo[it.rec.slot]
                                                     + it.pos])
                    for it in items}
                report = monitor.finalize(draft, session.state, values=values)
                session.reports.append(report)
                stats.reports += 1
                if on_report is not None:
                    on_report(session, report)
                for it in items:
                    rec = it.rec
                    rec.advanced = True
                    if not rec.pruned:
                        if it.snap.kind == DYNAMIC or no_dynamic:
                            rec.pruned = True
                            alive_now = it.name in self._stateful_names
                            rec.keep_all = alive_now
                            rec.luo_alive = alive_now
                        else:
                            rec.keep_all = self._has_stateful

        # slots of pipelines that reported done are safe to recycle now
        for rec in self._to_release:
            self._release(rec)
        self._to_release.clear()

    # -- phase 1: causal planning --------------------------------------------

    def _plan_session(self, session, slot_lists, slot_meta, slot_session,
                      slot_recs):
        monitor = self.monitor
        state = session.state
        ctx = session.handle_ctx
        replay = hasattr(ctx, "observation_index")
        recs = self._recs.setdefault(session.session_id, {})
        if state.weights is None:
            total_e = sum(max(n.est_rows, 0.0)
                          for n in ctx.plan.walk()) or 1.0
            state.weights = {
                pipe.pid: sum(max(n.est_rows, 0.0)
                              for n in pipe.nodes) / total_e
                for pipe in ctx.pipelines}
        per = []
        starts = session.pending_starts
        for j, R in enumerate(session.pending_reports):
            if replay:
                run = ctx.run
                time_R = float(run.times[R])
                D_R = run.D[R]
                pf = None
            else:
                row = ctx.log.row(R)
                time_R = float(row.time)
                D_R = row.D
                pf = starts[j]
            pipes: list[PipeSnapshot] = []
            items: list[_Item] = []
            for pipe in ctx.pipelines:
                pid = pipe.pid
                weight = state.weights[pid]
                if replay:
                    t_start = float(ctx._t_starts[pid])
                    started = t_start <= time_R
                else:
                    started = bool(np.isfinite(pf[pid]))
                    t_start = float(pf[pid]) if started else 0.0
                if not started:
                    pipes.append(PipeSnapshot(pid, weight, "unstarted"))
                    continue
                if D_R[pipe.terminal.node_id]:
                    pipes.append(PipeSnapshot(pid, weight, "done"))
                    rec = recs.pop(pid, None)
                    if rec is not None:
                        self._to_release.append(rec)
                    continue
                cursor = state.cursors.get(pid)
                if cursor is None:
                    # first sight: rows since the activity window opened,
                    # evaluated against the log as of row R
                    if replay:
                        start = int(np.searchsorted(run.times[:R + 1],
                                                    t_start, side="left"))
                    else:
                        start = ctx.log.start_index(t_start)
                    if R - start + 1 < 2:
                        pipes.append(PipeSnapshot(pid, weight, "short"))
                        continue
                meta = state.metas.get(pid)
                if meta is None:
                    meta = _pipeline_meta(ctx, pipe)
                    state.metas[pid] = meta
                rec = recs.get(pid)
                if rec is None:
                    slot = self.pool.pack(meta)
                    for st in self.states.values():
                        st.pack(slot)
                    rec = _SlotRec(slot, self._has_stateful)
                    recs[pid] = rec
                    slot_recs[slot] = rec
                if cursor is None:
                    lo_row = start
                elif not rec.advanced or rec.keep_all:
                    lo_row = cursor
                else:
                    lo_row = R  # memoryless-only: the report row suffices
                state.cursors[pid] = R + 1
                lst = slot_lists.setdefault(rec.slot, [])
                if rec.slot not in slot_meta:
                    slot_meta[rec.slot] = meta
                    slot_session[rec.slot] = session
                    slot_recs[rec.slot] = rec
                lst.extend(range(lo_row, R + 1))
                pos = len(lst) - 1

                def fraction(meta=meta, R=R, log=ctx.log):
                    return tick_driver_fraction(
                        meta, _capture_tick(log.row(R), meta))

                def make_pr(pipe=pipe, R=R, pf=pf, ctx=ctx, replay=replay):
                    if replay:
                        save = ctx.observation_index
                        ctx.seek(R)
                        try:
                            return ctx.live_pipeline_run(pipe)
                        finally:
                            ctx.seek(save)
                    return live_pipeline_run(_AsOfLive(ctx, R, pf), pipe)

                kind, features = monitor._selection_needs(
                    pid, state, fraction, make_pr)
                snap = PipeSnapshot(pid, weight, "running", kind=kind,
                                    features=features)
                pipes.append(snap)
                items.append(_Item(snap, rec, pos))
            per.append((ReportDraft(time=time_R, pipes=pipes), items))
        session.pending_reports.clear()
        session.pending_starts.clear()
        return per

    # -- phase 3: gather ------------------------------------------------------

    def _gather(self, slot_lists, slot_meta, slot_session,
                flat_lo) -> FlushBatch:
        order = list(slot_lists)
        counts = [len(slot_lists[s]) for s in order]
        total = sum(counts)
        w = self.pool.width
        slots = np.empty(total, dtype=np.int64)
        times = np.empty(total)
        K = np.zeros((total, w))
        W = np.zeros((total, w))
        LB = np.zeros((total, w))
        UB = np.zeros((total, w))
        D = np.zeros((total, w), dtype=bool)
        CK = np.zeros((total, w))
        CD = np.zeros((total, w), dtype=bool)
        slot_rows: dict[int, tuple[int, int]] = {}
        lo = 0
        for slot, cnt in zip(order, counts):
            hi = lo + cnt
            slots[lo:hi] = slot
            slot_rows[slot] = (lo, hi)
            flat_lo[slot] = lo
            meta = slot_meta[slot]
            ctx = slot_session[slot].handle_ctx
            rows = slot_lists[slot]
            m = meta.n_nodes
            cols = meta.node_ids
            if hasattr(ctx, "observation_index"):
                run = ctx.run
                r = np.asarray(rows)
                sel = np.ix_(r, cols)
                times[lo:hi] = run.times[r]
                K[lo:hi, :m] = run.K[sel]
                W[lo:hi, :m] = run.W[sel]
                LB[lo:hi, :m] = run.LB[sel]
                UB[lo:hi, :m] = run.UB[sel]
                D[lo:hi, :m] = run.D[sel]
                if len(meta.mat_idx):
                    csel = np.ix_(r, meta.mat_child_ids)
                    CK[lo:hi, meta.mat_idx] = run.K[csel]
                    CD[lo:hi, meta.mat_idx] = run.D[csel]
            else:
                log = ctx.log
                rws = [log.row(i) for i in rows]
                times[lo:hi] = [rw.time for rw in rws]
                K[lo:hi, :m] = np.stack([rw.K for rw in rws])[:, cols]
                W[lo:hi, :m] = np.stack([rw.W for rw in rws])[:, cols]
                LB[lo:hi, :m] = np.stack([rw.LB for rw in rws])[:, cols]
                UB[lo:hi, :m] = np.stack([rw.UB for rw in rws])[:, cols]
                stacked_d = np.stack([rw.D for rw in rws])
                D[lo:hi, :m] = stacked_d[:, cols]
                if len(meta.mat_idx):
                    stacked_k = np.stack([rw.K for rw in rws])
                    CK[lo:hi, meta.mat_idx] = stacked_k[:, meta.mat_child_ids]
                    CD[lo:hi, meta.mat_idx] = stacked_d[:, meta.mat_child_ids]
            lo = hi
        ordinals = []
        for s_i in range(max(counts)):
            ordinals.append(np.array(
                [slot_rows[s][0] + s_i
                 for s, c in zip(order, counts) if c > s_i],
                dtype=np.int64))
        return FlushBatch(self.pool, slots, times, K, W, LB, UB, D, CK, CD,
                          slot_rows, ordinals)
