"""Batched estimator-selection scoring across sessions.

This is the service's key speed win over per-query monitoring: instead of
one :meth:`EstimatorSelector.predict_errors` pass per pipeline with an
open selection (the solo monitor's behaviour — one pass per query when
``finalize`` turns its drafts into reports), the scorer collects the
feature vectors of every pending selection across *all* live sessions and
issues a single scoring pass per selector kind per tick.  Each pass costs one :meth:`MARTRegressor.predict` per candidate
estimator whatever the batch size, so with S sessions needing selection in
the same tick the service makes S× fewer model invocations — tree
traversal is vectorized over the stacked feature matrix.

Batching is bit-transparent: MART scoring is row-independent (quantile
binning and tree descent are per-row), so the argmin choice for a feature
vector is identical whether it is scored alone or stacked with others.
The service's report-equivalence test locks this in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import DYNAMIC, STATIC
from repro.core.selection import EstimatorSelector


@dataclass
class ScoringStats:
    """Work accounting for one scorer (cumulative across ticks)."""

    batches: int = 0        # predict_errors passes issued
    rows: int = 0           # feature vectors scored

    @property
    def rows_per_batch(self) -> float:
        return self.rows / self.batches if self.batches else 0.0


class BatchedSelectorScorer:
    """Resolves pending selections for many sessions in one pass per kind."""

    def __init__(self, static_selector: EstimatorSelector | None,
                 dynamic_selector: EstimatorSelector | None):
        self.selectors = {STATIC: static_selector, DYNAMIC: dynamic_selector}
        self.stats = ScoringStats()

    def resolve(self, requests: list[tuple[str, np.ndarray]]) -> list[str]:
        """Chosen estimator name for each ``(kind, features)`` request.

        Requests of the same kind are stacked into one matrix and scored
        with a single :meth:`EstimatorSelector.select` call; results come
        back in request order.
        """
        results: list[str | None] = [None] * len(requests)
        for kind in (STATIC, DYNAMIC):
            idx = [i for i, (k, _) in enumerate(requests) if k == kind]
            if not idx:
                continue
            selector = self.selectors[kind]
            if selector is None:
                raise RuntimeError(
                    f"a session needs a {kind} selection but the service "
                    f"has no {kind} selector")
            X = np.vstack([requests[i][1] for i in idx])
            names = selector.select(X)
            for i, name in zip(idx, names):
                results[i] = name
            self.stats.batches += 1
            self.stats.rows += len(idx)
        return results  # type: ignore[return-value]
