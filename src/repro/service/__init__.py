"""Concurrent multi-query progress serving (the DBMS-side deployment).

König et al.'s selection framework is built to live inside a database
server that monitors *many* queries at once.  This package is that serving
layer for the reproduction:

* :mod:`repro.service.session` — per-query state: resumable execution
  handle, sticky selection state, queued report drafts;
* :mod:`repro.service.scheduler` — round-robin time slicing over
  :class:`~repro.engine.executor.ExecutionHandle` steps;
* :mod:`repro.service.scoring` — batched selector scoring: one
  vectorized :meth:`~repro.core.selection.EstimatorSelector.predict_errors`
  pass per selector kind per tick, shared by all sessions;
* :mod:`repro.service.service` — :class:`ProgressService`, tying the
  three together and exposing submit / tick / run_until_complete;
* :mod:`repro.service.sharded` — :class:`ShardedProgressService`,
  partitioning sessions deterministically across N worker processes
  (one vectorized ``ProgressService`` shard each, all IPC through the
  trace codec) with per-shard memory budgets and a graceful drain that
  reproduces the single-process report streams bit-for-bit;
* :mod:`repro.service.net` — the asyncio HTTP + WebSocket front end
  (:class:`~repro.service.net.ProgressServer` /
  :class:`~repro.service.net.ProgressClient`): per-tenant session
  routes, live report streams in the same columnar wire codec, 429/503
  admission control, graceful drain.  Run one with
  ``python -m repro.service.net``.

Pooled report streams are bit-identical to what a solo
:class:`~repro.core.monitor.ProgressMonitor` produces for each query —
the batching changes *when* model scoring happens, never its inputs.
"""

from repro.service.scheduler import RoundRobinScheduler
from repro.service.scoring import BatchedSelectorScorer, ScoringStats
from repro.service.service import ProgressService, ServiceStats
from repro.service.session import QuerySession, SessionStatus
from repro.service.sharded import (
    FleetStats,
    MemoryBudgetExceeded,
    ShardedProgressService,
    ShardStats,
    place_session,
)

__all__ = [
    "ProgressService",
    "ServiceStats",
    "QuerySession",
    "SessionStatus",
    "RoundRobinScheduler",
    "BatchedSelectorScorer",
    "ScoringStats",
    "ShardedProgressService",
    "ShardStats",
    "FleetStats",
    "MemoryBudgetExceeded",
    "place_session",
]
