"""Sharded multi-process progress serving.

:class:`ShardedProgressService` scales the pooled
:class:`~repro.service.service.ProgressService` across cores: sessions are
partitioned over N *shards*, each shard runs its own vectorized
``ProgressService`` (in a worker process, or inline for the serial path),
and a supervisor drives all shards through lockstep tick rounds, merging
their report streams in submission order.

Design rules, all inherited from :mod:`repro.runtime`:

* **Deterministic placement** — a session's shard depends only on its
  submission index (``round_robin``, the default) or on a stable CRC32 of
  its query name (``hash``); never on scheduling, load, or Python's
  salted ``hash()``.  The same submissions land on the same shards in
  every run.
* **Trace-codec transport** — recorded runs reach their shard through
  :func:`~repro.runtime.transport.runs_to_payload` and finished report
  rows come back through
  :func:`~repro.runtime.transport.reports_to_payload`; engine objects are
  never pickled across the boundary.  Commands and reports are *batched*:
  one submit frame carries a whole wave of runs, one tick frame drives a
  round and returns every report it produced.
* **Order-preserving merge** — within a tick round the shard replies are
  merged by global session id (each shard already emits in local
  submission order, which placement keeps aligned with global order), so
  with unconstrained admission the merged stream is the bit-identical
  sequence the single-process pooled service emits.  Per-session report
  streams are bit-identical under *any* shard count, budget, or slice
  size — pooling transparency (PR 1) makes a session's reports depend
  only on its own recording and refresh cadence.

**Admission control**: each shard enforces a memory budget.  A run whose
trajectories alone exceed the budget is rejected at submit time
(:class:`MemoryBudgetExceeded`); otherwise admission is FIFO — a run that
does not currently fit waits in the shard's deferral queue and is retried
as retiring sessions release their bytes (the
:meth:`~repro.service.service.ProgressService` ``on_complete`` drain hook).

**Graceful drain**: :meth:`run_until_complete` ticks every shard in
lockstep until none has live, pending, or deferred work, then assembles
per-session results.  Shards release finished sessions the tick their
reports ship (``release_session``), so shard memory tracks *live*
sessions; ``keep_reports=False`` additionally drops the supervisor-side
buffers for soak-style runs where only the stats matter.

Streaming consumers observe the fleet through the ``on_report(sid, report)``
and ``on_complete(sid)`` supervisor hooks — ``on_complete`` fires after
all of a round's reports, in ascending session id, which is what lets
:mod:`repro.service.net` serve this fleet over HTTP/WebSocket with
bit-identical streams (see ``docs/api.md``).
"""

from __future__ import annotations

import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.monitor import ProgressMonitor, ProgressReport
from repro.engine.run import QueryRun
from repro.runtime.pool import _mp_context, available_cpus
from repro.runtime.transport import (
    reports_from_payload,
    reports_to_payload,
    runs_from_payload,
    runs_to_payload,
)
from repro.service.service import ProgressService, ServiceStats

PLACEMENTS = ("round_robin", "hash")


class MemoryBudgetExceeded(RuntimeError):
    """A single session's footprint exceeds the per-shard memory budget —
    it could never be admitted, so it is rejected at submit time."""


def place_session(index: int, query_name: str, n_shards: int,
                  placement: str = "round_robin") -> int:
    """Deterministic session→shard placement.

    ``round_robin`` spreads by submission index; ``hash`` pins by a
    stable CRC32 of the query name (so resubmissions of a named query
    always land on the same shard — cache affinity for the calibration
    layer to come).  Both are pure functions of their arguments:
    placement is reproducible across runs, processes, and Python builds.
    """
    if placement == "round_robin":
        return index % n_shards
    if placement == "hash":
        return zlib.crc32(query_name.encode()) % n_shards
    raise ValueError(
        f"unknown placement {placement!r}; choose from {PLACEMENTS}")


@dataclass
class ShardStats:
    """One shard's accounting: its service stats plus the memory/latency
    bookkeeping the supervisor rolls into :class:`FleetStats`."""

    shard_id: int
    service: ServiceStats = field(default_factory=ServiceStats)
    #: bytes of admitted-but-not-yet-retired session trajectories
    bytes_live: int = 0
    #: high-water mark of ``bytes_live``
    bytes_peak: int = 0
    #: sessions currently waiting behind the memory budget
    deferred: int = 0
    #: cumulative count of ticks on which a session was budget-deferred
    deferrals: int = 0
    #: shard-side wall-clock seconds per tick round
    tick_seconds: list[float] = field(default_factory=list)

    def to_wire(self) -> dict:
        """JSON-safe snapshot (``tick_seconds`` ships as deltas)."""
        return {
            "shard_id": self.shard_id,
            "service": vars(self.service).copy(),
            "bytes_live": self.bytes_live,
            "bytes_peak": self.bytes_peak,
            "deferred": self.deferred,
            "deferrals": self.deferrals,
        }

    def absorb(self, wire: dict, new_tick_seconds: list[float]) -> None:
        """Overwrite from a worker's :meth:`to_wire` snapshot."""
        self.service = ServiceStats(**wire["service"])
        self.bytes_live = wire["bytes_live"]
        self.bytes_peak = wire["bytes_peak"]
        self.deferred = wire["deferred"]
        self.deferrals = wire["deferrals"]
        self.tick_seconds.extend(new_tick_seconds)


@dataclass
class FleetStats:
    """Fleet-level roll-up over all shards."""

    shards: list[ShardStats]
    #: supervisor-side wall-clock seconds per lockstep round (includes
    #: IPC, merge and callback time — what a client of the fleet feels)
    round_seconds: list[float] = field(default_factory=list)

    @property
    def service(self) -> ServiceStats:
        """Merged service counters (see :meth:`ServiceStats.merge`)."""
        return ServiceStats.merge(s.service for s in self.shards)

    @property
    def bytes_live(self) -> int:
        return sum(s.bytes_live for s in self.shards)

    @property
    def bytes_peak(self) -> int:
        """Sum of per-shard peaks (an upper bound on the fleet peak)."""
        return sum(s.bytes_peak for s in self.shards)

    @property
    def deferrals(self) -> int:
        return sum(s.deferrals for s in self.shards)

    def round_latency(self, q: float) -> float:
        """Supervisor round-latency percentile (``q`` in [0, 100])."""
        if not self.round_seconds:
            return 0.0
        return float(np.percentile(np.asarray(self.round_seconds), q))

    def tick_latency(self, q: float) -> float:
        """Shard-side tick-latency percentile across all shards."""
        samples = [t for s in self.shards for t in s.tick_seconds]
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), q))


class ShardWorker:
    """One shard: a vectorized :class:`ProgressService` plus budgeted
    admission and per-tick report capture.

    The same object backs both deployment modes — inline in the
    supervisor's process (``processes=False``, the serial path) and
    inside a worker process driven by :func:`shard_worker_main` — so the
    sharded service has one shard implementation and one behaviour.
    """

    def __init__(self, shard_id: int, monitor: ProgressMonitor,
                 slice_steps: int = 8, max_live: int | None = None,
                 memory_budget_bytes: int | None = None,
                 vectorized: bool = True):
        self.stats = ShardStats(shard_id)
        self.memory_budget_bytes = memory_budget_bytes
        self.service = ProgressService(
            monitor, slice_steps=slice_steps, max_live=max_live,
            vectorized=vectorized, on_report=self._capture,
            on_complete=self._complete)
        self.stats.service = self.service.stats
        #: budget-deferred admissions, FIFO: (global_sid, run, name, bytes)
        self._waiting: deque[tuple[int, QueryRun, str | None, int]] = deque()
        self._global_sid: dict[int, int] = {}      # local -> global
        self._session_bytes: dict[int, int] = {}   # local -> nbytes
        self._emitted: list[tuple[int, ProgressReport]] = []
        self._completed: list[int] = []            # global sids, finish order

    # -- admission -----------------------------------------------------------

    def enqueue(self, global_sid: int, run: QueryRun,
                query_name: str | None = None) -> None:
        """Accept a replay session; admission happens on the next tick."""
        nbytes = run.nbytes
        if (self.memory_budget_bytes is not None
                and nbytes > self.memory_budget_bytes):
            raise MemoryBudgetExceeded(
                f"session {global_sid} ({query_name or run.query_name!r}) "
                f"needs {nbytes} bytes but the shard budget is "
                f"{self.memory_budget_bytes}")
        self._waiting.append((global_sid, run, query_name, nbytes))

    def _admit_waiting(self) -> None:
        """Admit deferred sessions FIFO while the budget allows.

        The queue head blocks the rest, so local session ids are always
        assigned in global submission order — the invariant the
        supervisor's sorted merge relies on.
        """
        budget = self.memory_budget_bytes
        while self._waiting:
            global_sid, run, query_name, nbytes = self._waiting[0]
            if (budget is not None
                    and self.stats.bytes_live + nbytes > budget):
                self.stats.deferrals += 1
                break
            self._waiting.popleft()
            local = self.service.submit_replay(run, query_name=query_name)
            self._global_sid[local] = global_sid
            self._session_bytes[local] = nbytes
            self.stats.bytes_live += nbytes
            self.stats.bytes_peak = max(self.stats.bytes_peak,
                                        self.stats.bytes_live)
        self.stats.deferred = len(self._waiting)

    # -- service hooks -------------------------------------------------------

    def _capture(self, session, report: ProgressReport) -> None:
        self._emitted.append((self._global_sid[session.session_id], report))

    def _complete(self, session) -> None:
        """Drain hook: a session finished and its reports have flushed —
        release its budget share and its heavy state, and queue the
        completion for the supervisor (it rides the next tick reply)."""
        self.stats.bytes_live -= self._session_bytes.pop(
            session.session_id, 0)
        self._completed.append(self._global_sid.pop(session.session_id))
        self.service.release_session(session.session_id)

    # -- driving -------------------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self._waiting) or self.service.active

    def tick(self) -> bool:
        """One shard round: retry deferred admissions, tick the service."""
        started = time.perf_counter()
        self._admit_waiting()
        if self.service.active:
            self.service.tick()
        self.stats.deferred = len(self._waiting)
        self.stats.tick_seconds.append(time.perf_counter() - started)
        return self.active

    def take_emitted(self) -> list[tuple[int, ProgressReport]]:
        emitted, self._emitted = self._emitted, []
        return emitted

    def take_completed(self) -> list[int]:
        """Global sids of sessions finished since the last call."""
        completed, self._completed = self._completed, []
        return completed


def shard_worker_main(conn, shard_id: int, make_monitor,
                      options: dict) -> None:
    """Worker-process entry: serve one shard over a duplex connection.

    Commands are small picklable frames; all bulk traffic (runs in,
    report rows out) is trace-codec bytes.  The loop exits on ``stop`` —
    the last leg of the drain protocol — or when the supervisor dies and
    the pipe breaks.
    """
    try:
        worker = ShardWorker(shard_id, make_monitor(), **options)
        shipped_ticks = 0
        while True:
            frame = conn.recv()
            cmd = frame[0]
            if cmd == "submit":
                runs = runs_from_payload(frame[1])
                for (global_sid, query_name), run in zip(frame[2], runs):
                    worker.enqueue(global_sid, run, query_name)
            elif cmd == "tick":
                more = False
                for _ in range(frame[1]):
                    more = worker.tick()
                    if not more:
                        break
                ticks = worker.stats.tick_seconds
                conn.send(("reports", more,
                           reports_to_payload(worker.take_emitted()),
                           worker.stats.to_wire(), ticks[shipped_ticks:],
                           worker.take_completed()))
                shipped_ticks = len(ticks)
            elif cmd == "stop":
                conn.send(("bye",))
                return
            else:
                raise ValueError(f"unknown shard command {cmd!r}")
    except EOFError:  # supervisor went away; nothing left to serve
        pass
    except Exception as exc:  # ship the failure instead of hanging the fleet
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        raise
    finally:
        conn.close()


class ShardedProgressService:
    """Partitions progress-monitoring sessions across N service shards.

    Parameters
    ----------
    monitor:
        A :class:`ProgressMonitor` instance (inline mode) or a zero-arg
        factory returning one.  With ``processes=True`` a factory is
        required: each worker builds its *own* monitor, so no model
        objects cross the process boundary.
    n_shards:
        Shard count; default one per available CPU
        (affinity/cgroup-aware, see
        :func:`~repro.runtime.pool.available_cpus`).
    slice_steps / max_live / vectorized:
        Forwarded to each shard's inner :class:`ProgressService`
        (``max_live`` is per shard).
    memory_budget_bytes:
        Per-shard cap on the summed trajectory bytes of admitted
        sessions.  Over-budget admissions queue FIFO and retry as
        sessions retire; a session that could never fit raises
        :class:`MemoryBudgetExceeded` at submit time.
    placement:
        ``round_robin`` (by submission index, default) or ``hash`` (by
        CRC32 of the query name).  Deterministic either way.
    processes:
        Run shards in worker processes (the scaling deployment).
        ``False`` runs the identical shard code inline — serial semantics
        with zero IPC, mirroring the runtime pool's ``jobs <= 1``
        contract.  Inline report batches still round-trip through the
        wire codec, so parity checks exercise the exact bytes a process
        deployment would ship.
    on_report:
        ``on_report(global_sid, report)``, fired in merged order (global
        submission order within each lockstep round).
    on_complete:
        ``on_complete(global_sid)``, fired exactly once per session, in
        ascending-sid order within the lockstep round the session
        finished — strictly after every ``on_report`` of that round, so
        the hook observes the session's full stream (the network front
        end closes its live subscriptions here).
    keep_reports:
        ``False`` drops report frames after accounting (and after
        ``on_report``), for soak runs where results would otherwise
        accumulate without bound; :meth:`run_until_complete` then
        returns ``{}``.
    """

    def __init__(self, monitor, n_shards: int | None = None,
                 slice_steps: int = 8, max_live: int | None = None,
                 memory_budget_bytes: int | None = None,
                 placement: str = "round_robin",
                 processes: bool = False,
                 vectorized: bool = True,
                 on_report: Callable[[int, ProgressReport], None]
                 | None = None,
                 on_complete: Callable[[int], None] | None = None,
                 keep_reports: bool = True):
        if n_shards is None:
            n_shards = available_cpus()
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}")
        self.n_shards = n_shards
        self.placement = placement
        self.memory_budget_bytes = memory_budget_bytes
        self.processes = processes
        self.on_report = on_report
        self.on_complete = on_complete
        self.keep_reports = keep_reports
        self.stats = FleetStats([ShardStats(i) for i in range(n_shards)])
        self._runs: dict[int, QueryRun] = {}
        self._names: dict[int, str | None] = {}
        self._n_submitted = 0
        #: per-shard buffered submissions awaiting the next tick's frame
        self._outbox: list[list[tuple[int, QueryRun, str | None]]] = [
            [] for _ in range(n_shards)]
        self._shard_active = [False] * n_shards
        #: merged (global_sid, report) pairs, in emission order
        self._collected: list[tuple[int, ProgressReport]] = []
        self._closed = False
        options = dict(slice_steps=slice_steps, max_live=max_live,
                       memory_budget_bytes=memory_budget_bytes,
                       vectorized=vectorized)
        make_monitor = monitor if callable(monitor) else None
        if processes:
            if make_monitor is None:
                raise ValueError(
                    "processes=True needs a zero-arg monitor factory, not "
                    "a ProgressMonitor instance — each worker builds its "
                    "own monitor so models never cross the pipe as state")
            ctx = _mp_context()
            self._conns = []
            self._workers = []
            for shard_id in range(n_shards):
                parent, child = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=shard_worker_main,
                    args=(child, shard_id, make_monitor, options),
                    daemon=True)
                proc.start()
                child.close()
                self._conns.append(parent)
                self._workers.append(proc)
            self._shards = None
        else:
            self._conns = self._workers = None
            self._shards = [
                ShardWorker(i, make_monitor() if make_monitor else monitor,
                            **options)
                for i in range(n_shards)]
            for shard_id, shard in enumerate(self._shards):
                self.stats.shards[shard_id] = shard.stats

    # -- submission ----------------------------------------------------------

    def submit_replay(self, run: QueryRun,
                      query_name: str | None = None) -> int:
        """Register a recorded run for sharded serving; global session id.

        Oversized runs (``run.nbytes`` beyond the per-shard budget) are
        rejected here, synchronously; everything else is buffered and
        ships to its shard in one batched frame on the next tick.
        """
        budget = self.memory_budget_bytes
        if budget is not None and run.nbytes > budget:
            raise MemoryBudgetExceeded(
                f"run {query_name or run.query_name!r} needs {run.nbytes} "
                f"bytes but the per-shard budget is {budget}")
        sid = self._n_submitted
        self._n_submitted += 1
        shard = place_session(sid, query_name or run.query_name,
                              self.n_shards, self.placement)
        self._outbox[shard].append((sid, run, query_name))
        self._runs[sid] = run
        self._names[sid] = query_name
        return sid

    # -- driving -------------------------------------------------------------

    @property
    def active(self) -> bool:
        return (any(self._shard_active)
                or any(self._outbox[i] for i in range(self.n_shards)))

    @property
    def sessions_submitted(self) -> int:
        """Sessions ever accepted by :meth:`submit_replay`."""
        return self._n_submitted

    @property
    def sessions_inflight(self) -> int:
        """Submitted-but-not-yet-completed sessions, fleet-wide — the
        admission-control headroom the network front end budgets against."""
        return self._n_submitted - self.stats.service.sessions_completed

    def tick(self, rounds: int = 1) -> bool:
        """One lockstep round across all shards (``rounds`` shard ticks
        per frame amortize IPC for drain-heavy phases).  Returns True
        while any shard still has work."""
        if self._closed:
            raise RuntimeError("service is closed")
        started = time.perf_counter()
        self._flush_outboxes()
        completed: list[int] = []
        if self.processes:
            polled = [i for i in range(self.n_shards) if self._shard_active[i]]
            for i in polled:  # all sends first: shards tick concurrently
                self._conns[i].send(("tick", rounds))
            batches = []
            for i in polled:
                reply = self._recv(i)
                self._shard_active[i] = reply[1]
                batches.append(reports_from_payload(reply[2]))
                self.stats.shards[i].absorb(reply[3], reply[4])
                completed.extend(reply[5])
        else:
            batches = []
            for i in range(self.n_shards):
                if not self._shard_active[i]:
                    continue
                shard = self._shards[i]
                more = False
                for _ in range(rounds):
                    more = shard.tick()
                    if not more:
                        break
                self._shard_active[i] = more
                # inline batches still cross the wire codec (bit-exact),
                # so parity tests cover the exact process-mode bytes
                batches.append(reports_from_payload(
                    reports_to_payload(shard.take_emitted())))
                completed.extend(shard.take_completed())
        self._merge(batches, completed)
        self.stats.round_seconds.append(time.perf_counter() - started)
        return self.active

    def run_until_complete(self, max_ticks: int | None = None,
                           rounds: int = 1
                           ) -> dict[int, tuple[QueryRun, list[ProgressReport]]]:
        """Drain the fleet; per-session ``(run, reports)`` by global id.

        The drain protocol: lockstep rounds until every shard reports no
        live, pending, or budget-deferred work; per-session report
        streams are then assembled from the merged frames.  Sessions'
        streams are bit-identical to the single-process pooled path
        regardless of ``n_shards`` — and with unconstrained admission the
        merged emission *order* matches it too.
        """
        ticks = 0
        while self.tick(rounds=rounds):
            ticks += 1
            if max_ticks is not None and ticks >= max_ticks:
                raise RuntimeError(
                    f"sharded service did not drain within {max_ticks} "
                    f"tick rounds")
        if not self.keep_reports:
            return {}
        out: dict[int, tuple[QueryRun, list[ProgressReport]]] = {}
        for sid, report in self._collected:
            if sid not in out:
                out[sid] = (self._runs[sid], [])
            out[sid][1].append(report)
        # sessions that finished without emitting (too short for a single
        # refresh) still completed; give them their empty stream
        done = self.stats.service.sessions_completed
        if done == self._n_submitted:
            for sid, run in self._runs.items():
                out.setdefault(sid, (run, []))
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the shard workers (no-op inline, idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.processes:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except OSError:
                    continue
            for conn in self._conns:
                try:
                    conn.recv()  # "bye"
                except (EOFError, OSError):
                    pass
                conn.close()
            for proc in self._workers:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - drain-stuck guard
                    proc.terminate()

    def __enter__(self) -> "ShardedProgressService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def worker_pids(self) -> list[int]:
        """Shard worker process ids (empty inline) — for RSS sampling."""
        if not self.processes:
            return []
        return [proc.pid for proc in self._workers]

    # -- internals -----------------------------------------------------------

    def _flush_outboxes(self) -> None:
        for shard_id in range(self.n_shards):
            batch = self._outbox[shard_id]
            if not batch:
                continue
            self._outbox[shard_id] = []
            self._shard_active[shard_id] = True
            if self.processes:
                payload = runs_to_payload([run for _, run, _ in batch])
                metas = [(sid, name) for sid, _, name in batch]
                self._conns[shard_id].send(("submit", payload, metas))
            else:
                for sid, run, name in batch:
                    self._shards[shard_id].enqueue(sid, run, name)

    def _recv(self, shard_id: int):
        reply = self._conns[shard_id].recv()
        if reply[0] == "error":
            raise RuntimeError(
                f"shard {shard_id} worker failed: {reply[1]}")
        return reply

    def _merge(self, batches: list[list[tuple[int, ProgressReport]]],
               completed: list[int]) -> None:
        """Merge one round's shard batches in global submission order.

        Each batch is already sorted by global sid (shards emit in local
        submission order and placement preserves relative global order),
        so a stable sort over the concatenation is a k-way merge.
        Completion hooks fire last: a session's ``on_complete`` always
        observes every report of its stream.
        """
        merged = sorted((pair for batch in batches for pair in batch),
                        key=lambda pair: pair[0])
        if self.on_report is not None:
            for sid, report in merged:
                self.on_report(sid, report)
        if self.keep_reports:
            self._collected.extend(merged)
        else:
            # soak mode: account, then drop (and release the run refs of
            # retired sessions so supervisor memory stays flat too)
            for sid in completed:
                self._runs.pop(sid, None)
                self._names.pop(sid, None)
        if self.on_complete is not None:
            for sid in sorted(completed):
                self.on_complete(sid)
