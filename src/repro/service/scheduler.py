"""Round-robin time slicing over live query sessions.

The scheduler decides which sessions run during a service tick and for how
many engine steps.  Slices are counted in :meth:`ExecutionHandle.step`
units (one opened iterator tree or one root chunk), the granularity at
which the simulated engine can be preempted.  The rotation offset advances
every round so no session is systematically favoured when slices don't
divide work evenly.
"""

from __future__ import annotations

from repro.service.session import QuerySession, SessionStatus


class RoundRobinScheduler:
    """Fair fixed-quantum scheduling of sessions.

    Parameters
    ----------
    slice_steps:
        Engine steps granted to each live session per round.
    """

    def __init__(self, slice_steps: int = 8):
        if slice_steps <= 0:
            raise ValueError("slice_steps must be positive")
        self.slice_steps = slice_steps
        self._offset = 0

    def plan_round(self, sessions: list[QuerySession]) -> list[QuerySession]:
        """The sessions to run this round, in rotated submission order."""
        live = [s for s in sessions if s.status is SessionStatus.RUNNING]
        if not live:
            return []
        k = self._offset % len(live)
        self._offset += 1
        return live[k:] + live[:k]

    def run_slice(self, session: QuerySession) -> int:
        """Step one session for up to ``slice_steps``; returns steps used."""
        if session.can_bulk:
            return session.step_bulk(self.slice_steps)
        used = 0
        while used < self.slice_steps:
            used += 1
            if not session.step():
                break
        return used
