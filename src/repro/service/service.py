"""The multi-query progress service.

:class:`ProgressService` is the serving layer the ROADMAP's north star
asks for: it admits many query sessions, interleaves their execution in
round-robin time slices over resumable
:class:`~repro.engine.executor.ExecutionHandle` objects, and produces the
same per-query :class:`~repro.core.monitor.ProgressReport` streams a solo
:class:`~repro.core.monitor.ProgressMonitor` would — bit-identical, which
the service test suite verifies — while scoring estimator selection for
*all* sessions in one batched pass per tick
(:mod:`repro.service.scoring`) and, when every estimator in the pool has
a native structure-of-arrays kernel, advancing *all* sessions' streaming
states in one NumPy pass per estimator kind per tick
(:mod:`repro.service.batched`).

A tick is one scheduler round:

1. admission — pending sessions are started while live slots are free;
2. execution — every live session runs for ``slice_steps`` engine steps;
   observation callbacks fire inside the steps and queue causal report
   drafts (scalar path) or due report rows (vectorized path) on their
   session;
3. flush — pending estimator selections of this round's sessions are
   deduplicated (first observation wins, exactly like the solo monitor),
   scored in one batch per selector kind, committed into each session's
   state, and the queued drafts are finalized into reports in capture
   order.

The service tracks sessions in three index structures so per-tick cost
scales with *live* sessions, not with every session ever submitted:
``sessions`` (all, for id lookup), ``_pending`` (submitted, not yet
admitted, FIFO) and ``_live`` (admitted and running, submission order).
Completed sessions leave ``_live`` the tick they finish and are never
scanned again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.catalog.table import Database
from repro.core.monitor import DYNAMIC, ProgressMonitor, ProgressReport
from repro.engine.clock import CostModel
from repro.engine.executor import ExecutorConfig, QueryExecutor
from repro.engine.run import QueryRun
from repro.plan.nodes import PlanNode
from repro.service.batched import VectorizedFlush
from repro.service.scheduler import RoundRobinScheduler
from repro.service.scoring import BatchedSelectorScorer
from repro.service.session import QuerySession, SessionStatus
from repro.trace.replay import ReplayExecutor


@dataclass
class ServiceStats:
    """Cumulative work accounting across ticks.

    Invariants (asserted by the test suite): once the service drains,
    ``sessions_completed == sessions_submitted``; ``ticks``, ``steps``
    and ``reports`` only ever grow; ``sessions_scanned`` grows by the
    number of *live* sessions per tick — flat as completed sessions
    accumulate, which is the regression guard for the session indices.
    """

    ticks: int = 0
    steps: int = 0
    reports: int = 0
    sessions_submitted: int = 0
    sessions_completed: int = 0
    #: sum over ticks of live sessions scanned that tick
    sessions_scanned: int = 0

    @property
    def reports_per_tick(self) -> float:
        # guard the zero-tick divide: a merged roll-up may legitimately
        # cover shards that never ticked (admitted nothing yet)
        return self.reports / self.ticks if self.ticks else 0.0

    @classmethod
    def merge(cls, parts: "Iterable[ServiceStats]") -> "ServiceStats":
        """Fleet roll-up: the component-wise sum of per-shard stats.

        Session-level counters (submitted / completed / steps / reports)
        are additive across disjoint session sets, so the merge of shard
        stats equals the stats of serving the concatenated set — the
        Hypothesis property in ``tests/test_service_stats.py``.  ``ticks``
        and ``sessions_scanned`` sum too, but count per-shard scheduler
        rounds: shards tick concurrently, so the merged ``ticks`` is
        total rounds *worked*, not wall-clock rounds.
        """
        total = cls()
        for part in parts:
            total.ticks += part.ticks
            total.steps += part.steps
            total.reports += part.reports
            total.sessions_submitted += part.sessions_submitted
            total.sessions_completed += part.sessions_completed
            total.sessions_scanned += part.sessions_scanned
        return total


class ProgressService:
    """Monitors many concurrently executing queries.

    Parameters
    ----------
    monitor:
        The (stateless-per-query) :class:`ProgressMonitor` providing the
        selection policy, estimator pool and report logic shared by all
        sessions.  Its ``on_report`` hook is ignored here — use the
        service-level ``on_report``.
    slice_steps:
        Engine steps each live session gets per tick.
    max_live:
        Admission-control bound on concurrently executing sessions;
        ``None`` means unbounded.
    on_report:
        Called as ``on_report(session, report)`` for every finalized
        report, in per-session capture order.
    on_complete:
        Called as ``on_complete(session)`` once per session, on the tick
        it finishes — strictly *after* its final reports flushed, so the
        hook may release the session (the sharded service frees its
        memory-budget share and drops heavy state here).
    vectorized:
        Advance all sessions' streaming states through the
        structure-of-arrays fast path (default).  Engages only when the
        monitor is incremental and every estimator in its pool has a
        native SoA kernel; otherwise the service silently keeps the
        scalar per-session flush.  ``False`` forces the scalar path —
        the parity oracle the fuzz suite compares against.
    """

    def __init__(self, monitor: ProgressMonitor, slice_steps: int = 8,
                 max_live: int | None = None,
                 on_report: Callable[[QuerySession, ProgressReport], None]
                 | None = None,
                 vectorized: bool = True,
                 on_complete: Callable[[QuerySession], None] | None = None):
        self.monitor = monitor
        self.scheduler = RoundRobinScheduler(slice_steps)
        self.scorer = BatchedSelectorScorer(monitor.static_selector,
                                            monitor.dynamic_selector)
        if max_live is not None and max_live <= 0:
            raise ValueError("max_live must be positive (or None)")
        self.max_live = max_live
        self.on_report = on_report
        self.on_complete = on_complete
        self.sessions: list[QuerySession] = []
        self._pending: deque[QuerySession] = deque()
        self._live: list[QuerySession] = []
        self._live_set: set[int] = set()
        self._vector = VectorizedFlush.create(monitor) if vectorized else None
        self.stats = ServiceStats()

    @property
    def vectorized(self) -> bool:
        """True when the SoA fast path is driving this service's flushes."""
        return self._vector is not None

    # -- submission ----------------------------------------------------------

    def submit(self, db: Database, plan: PlanNode, query_name: str = "query",
               config: ExecutorConfig | None = None,
               cost_model: CostModel | None = None) -> int:
        """Register a query for execution; returns its session id."""
        executor = QueryExecutor(db, config=config, cost_model=cost_model)
        session = QuerySession(len(self.sessions), executor, plan,
                               query_name, self.monitor,
                               deferred=self._vector is not None)
        self.sessions.append(session)
        self._pending.append(session)
        self.stats.sessions_submitted += 1
        return session.session_id

    def submit_replay(self, run: QueryRun,
                      query_name: str | None = None) -> int:
        """Register a *recorded* query for replay; returns its session id.

        The session is scheduled, monitored and reported exactly like a
        live one — each step replays one recorded observation instead of
        one unit of engine work — so throughput experiments can run the
        full service stack against recorded workloads (e.g. traces loaded
        via :mod:`repro.trace`) without paying engine cost.  Report
        streams are bit-identical to monitoring the original execution.
        """
        executor = ReplayExecutor(run)
        session = QuerySession(len(self.sessions), executor, None,
                               query_name or run.query_name, self.monitor,
                               deferred=self._vector is not None)
        self.sessions.append(session)
        self._pending.append(session)
        self.stats.sessions_submitted += 1
        return session.session_id

    def session(self, session_id: int) -> QuerySession:
        return self.sessions[session_id]

    # -- driving -------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while any session still has work to do."""
        return bool(self._pending or self._live)

    def tick(self) -> bool:
        """One scheduler round (admission, slices, batched flush).

        Returns True while work remains.
        """
        self._admit()
        round_sessions = self.scheduler.plan_round(self._live)
        self.stats.sessions_scanned += len(self._live)
        for session in round_sessions:
            used = self.scheduler.run_slice(session)
            self.stats.steps += used
            if session.done:
                self._retire(session)
        if round_sessions:
            self.stats.ticks += 1
        self._flush(round_sessions)
        if self._vector is not None:
            # slots are freed only after the retiring sessions' final
            # drafts have flushed through them
            for session in round_sessions:
                if session.done:
                    self._vector.release_session(session)
        if self.on_complete is not None:
            # fires after the flush (and SoA slot release): the session's
            # final reports are already emitted, so the hook may drain it
            for session in round_sessions:
                if session.done:
                    self.on_complete(session)
        return self.active

    def run_until_complete(self, max_ticks: int | None = None
                           ) -> dict[int, tuple[QueryRun, list[ProgressReport]]]:
        """Drive all sessions to completion; per-session (run, reports)."""
        ticks = 0
        while self.tick():
            ticks += 1
            if max_ticks is not None and ticks >= max_ticks:
                raise RuntimeError(
                    f"service did not drain within {max_ticks} ticks")
        return {s.session_id: (s.result, s.reports)
                for s in self.sessions if s.done and not s.released}

    def release_session(self, session_id: int) -> None:
        """Drain hook: drop a completed session's heavy state.

        After its reports have been consumed (shipped over the wire by
        the sharded service, or simply read), the session keeps only a
        tombstone — status, id, counters — so a long-lived service's
        memory tracks *live* sessions, not every session ever served.
        Released sessions are excluded from :meth:`run_until_complete`
        results.  Idempotent; refuses sessions that are still running.
        """
        self.sessions[session_id].release()

    # -- internals -----------------------------------------------------------

    def _admit(self) -> None:
        while self._pending:
            if self.max_live is not None and len(self._live) >= self.max_live:
                break
            session = self._pending.popleft()
            session.start()
            self._live.append(session)
            self._live_set.add(session.session_id)

    def _retire(self, session: QuerySession) -> None:
        """Move a finished session out of the live index, exactly once."""
        if session.session_id in self._live_set:
            self._live_set.discard(session.session_id)
            self._live.remove(session)
            self.stats.sessions_completed += 1

    def _flush(self, round_sessions: list[QuerySession]) -> None:
        """Batch-resolve pending selections, then finalize queued drafts.

        Only this round's sessions can hold unflushed work (every flush
        drains completely), so the scan is bounded by the round — not by
        the total ever submitted.  Sessions are flushed in submission
        order, undoing the scheduler's rotation, to keep report emission
        order identical to the historical full-list scan.
        """
        drafted = sorted(
            (s for s in round_sessions if s.drafts or s.pending_reports),
            key=lambda s: s.session_id)
        if not drafted:
            return
        if self._vector is not None:
            self._vector.flush(drafted, self.scorer, self.stats,
                               self.on_report)
            return
        requests: list[tuple[str, object]] = []
        targets: list[tuple[QuerySession, int, str]] = []
        for session in drafted:
            seen: set[tuple[int, str]] = set()
            for draft in session.drafts:
                for snap in draft.pending_selections(session.state):
                    key = (snap.pid, snap.kind)
                    if key in seen:
                        continue  # first observation wins, as in solo mode
                    seen.add(key)
                    requests.append((snap.kind, snap.features))
                    targets.append((session, snap.pid, snap.kind))
        if requests:
            names = self.scorer.resolve(requests)
            for (session, pid, kind), name in zip(targets, names):
                made = (session.state.dynamic_choices if kind == DYNAMIC
                        else session.state.static_choices)
                made[pid] = name
        for session in drafted:
            while session.drafts:
                draft = session.drafts.popleft()
                report = self.monitor.finalize(draft, session.state)
                session.reports.append(report)
                self.stats.reports += 1
                if self.on_report is not None:
                    self.on_report(session, report)
