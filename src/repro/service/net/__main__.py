"""Run a progress server: ``python -m repro.service.net``.

Serves :class:`~repro.service.net.server.ProgressServer` on the given
address until SIGINT/SIGTERM, then drains gracefully: admissions stop
(503 + Retry-After), every admitted session finishes serving and its
subscribers receive their completion frames, and only then does the
process exit.  A second signal aborts immediately.

Example::

    python -m repro.service.net --port 8765 --shards 4 --processes
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import signal
import sys

from repro.core.monitor import ProgressMonitor
from repro.service.net.server import ProgressServer
from repro.service.sharded import PLACEMENTS


def _make_monitor(refresh_every: int) -> ProgressMonitor:
    """Module-level monitor factory (picklable for ``--processes``)."""
    return ProgressMonitor(refresh_every=refresh_every)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.net",
        description="Serve robust progress estimation over HTTP/WebSocket.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="listen address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8765,
                        help="listen port, 0 for ephemeral "
                        "(default: %(default)s)")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard count (default: %(default)s)")
    parser.add_argument("--processes", action="store_true",
                        help="run shards in worker processes")
    parser.add_argument("--placement", choices=PLACEMENTS,
                        default="round_robin",
                        help="session->shard placement "
                        "(default: %(default)s)")
    parser.add_argument("--slice-steps", type=int, default=8,
                        help="engine steps per session per tick "
                        "(default: %(default)s)")
    parser.add_argument("--max-live", type=int, default=None,
                        help="live-session cap per shard")
    parser.add_argument("--memory-budget-bytes", type=int, default=None,
                        help="per-shard admission budget in bytes")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="fleet-wide inflight-session cap (excess "
                        "submissions get 429)")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        help="seconds advertised in Retry-After headers "
                        "(default: %(default)s)")
    parser.add_argument("--refresh-every", type=int, default=5,
                        help="monitor report cadence in engine steps "
                        "(default: %(default)s)")
    return parser


async def serve(args: argparse.Namespace) -> None:
    server = ProgressServer(
        functools.partial(_make_monitor, args.refresh_every),
        host=args.host, port=args.port, n_shards=args.shards,
        slice_steps=args.slice_steps, max_live=args.max_live,
        memory_budget_bytes=args.memory_budget_bytes,
        placement=args.placement, processes=args.processes,
        max_inflight=args.max_inflight, retry_after=args.retry_after)
    host, port = await server.start()
    print(f"progress server listening on http://{host}:{port} "
          f"({args.shards} shard(s), "
          f"{'processes' if args.processes else 'inline'})", flush=True)

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    for sig in (signal.SIGINT, signal.SIGTERM):  # second signal: hard exit
        loop.remove_signal_handler(sig)
    print("draining: admissions stopped, serving remaining sessions...",
          flush=True)
    await server.shutdown()
    print("drained; bye", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
