"""Stdlib asyncio client for :class:`~repro.service.net.server.ProgressServer`.

:class:`ProgressClient` keeps one keep-alive connection for the
request/response routes and opens a dedicated connection per WebSocket
stream (a stream hijacks its socket until the session completes).  It is
the reference consumer of the API — the parity tests, the fuzz oracle's
``network`` layer and the soak benchmark all speak through it — and a
worked example for anyone writing a client in another language.

Two levels of API:

* :meth:`ProgressClient.request` — raw ``(status, headers, body)``, for
  callers that want to see 4xx/5xx themselves (the error-path tests);
* typed helpers (:meth:`submit_runs`, :meth:`stream`, ...) that raise
  :class:`ServiceError` on any non-2xx status, carrying the server's
  error envelope and the ``Retry-After`` hint when admission pushed back.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from urllib.parse import quote

from repro.core.monitor import ProgressReport
from repro.engine.run import QueryRun
from repro.runtime.transport import reports_from_payload, runs_to_payload
from repro.service.net import websocket as ws
from repro.service.net.http import JSON_TYPE, RUNS_TYPE, read_response


class ServiceError(Exception):
    """A non-2xx response, decoded from the server's error envelope."""

    def __init__(self, status: int, detail: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.detail = detail
        #: seconds the server asked us to back off (429/503), else None
        self.retry_after = retry_after


class ProgressClient:
    """Talk to a progress server at ``(host, port)``.

    All methods are coroutines; drive them from one task (the control
    connection is not multiplexed).  Use as an async context manager to
    close the connection deterministically.
    """

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "ProgressClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    # -- transport -----------------------------------------------------------

    async def request(self, method: str, path: str, body: bytes = b"",
                      content_type: str | None = None,
                      headers: dict[str, str] | None = None
                      ) -> tuple[int, dict[str, str], bytes]:
        """One request on the keep-alive connection; raw response triple."""
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self._host, self._port)
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self._host}:{self._port}"]
        if body or method == "POST":
            lines.append(f"Content-Length: {len(body)}")
        if content_type is not None:
            lines.append(f"Content-Type: {content_type}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        status, response_headers, payload = await read_response(self._reader)
        if response_headers.get("connection", "").lower() == "close":
            await self.aclose()
        return status, response_headers, payload

    @staticmethod
    def _checked(status: int, headers: dict[str, str], body: bytes) -> dict:
        """Decode a JSON reply, raising :class:`ServiceError` on non-2xx."""
        if status >= 400:
            try:
                detail = json.loads(body)["error"]["detail"]
            except Exception:
                detail = body.decode("utf-8", "replace")
            retry = headers.get("retry-after")
            raise ServiceError(status, detail,
                               float(retry) if retry else None)
        return json.loads(body) if body else {}

    # -- session lifecycle ---------------------------------------------------

    async def healthz(self) -> dict:
        return self._checked(*await self.request("GET", "/healthz"))

    async def stats(self, tenant: str) -> dict:
        return self._checked(
            *await self.request("GET", f"/v1/{quote(tenant)}/stats"))

    async def submit_runs(self, tenant: str, runs: list[QueryRun],
                          name: str | None = None) -> list[int]:
        """POST recorded runs as one trace-codec payload; global sids."""
        path = f"/v1/{quote(tenant)}/sessions"
        if name is not None:
            path += f"?name={quote(name)}"
        payload = self._checked(*await self.request(
            "POST", path, runs_to_payload(runs), RUNS_TYPE))
        return [entry["session"] for entry in payload["sessions"]]

    async def submit_runs_json(self, tenant: str, runs: list[QueryRun],
                               name: str | None = None) -> list[int]:
        """The JSON submission form (base64 body) — same result."""
        body: dict = {"runs_b64": base64.b64encode(
            runs_to_payload(runs)).decode("ascii")}
        if name is not None:
            body["name"] = name
        payload = self._checked(*await self.request(
            "POST", f"/v1/{quote(tenant)}/sessions",
            json.dumps(body).encode("utf-8"), JSON_TYPE))
        return [entry["session"] for entry in payload["sessions"]]

    async def list_sessions(self, tenant: str) -> list[dict]:
        payload = self._checked(*await self.request(
            "GET", f"/v1/{quote(tenant)}/sessions"))
        return payload["sessions"]

    async def get_session(self, tenant: str, sid: int) -> dict:
        return self._checked(*await self.request(
            "GET", f"/v1/{quote(tenant)}/sessions/{sid}"))

    async def delete_session(self, tenant: str, sid: int) -> dict:
        return self._checked(*await self.request(
            "DELETE", f"/v1/{quote(tenant)}/sessions/{sid}"))

    async def reports_payload(self, tenant: str, sid: int) -> bytes:
        """The session's full stream as raw ``reports_to_payload`` bytes."""
        status, headers, body = await self.request(
            "GET", f"/v1/{quote(tenant)}/sessions/{sid}/reports")
        if status >= 400:
            self._checked(status, headers, body)
        return body

    async def reports(self, tenant: str, sid: int
                      ) -> list[tuple[int, ProgressReport]]:
        return reports_from_payload(
            await self.reports_payload(tenant, sid))

    # -- streaming -----------------------------------------------------------

    async def stream(self, tenant: str, sid: int, start: int = 0
                     ) -> tuple[list[bytes], dict]:
        """Subscribe to a session's live stream until it completes.

        Returns ``(frames, done)``: each frame is one binary
        ``reports_to_payload`` batch exactly as the server sent it, and
        ``done`` is the decoded completion summary.  Use
        :meth:`stream_reports` for decoded rows.
        """
        reader, writer = await asyncio.open_connection(self._host,
                                                       self._port)
        try:
            key = base64.b64encode(os.urandom(16)).decode("ascii")
            path = f"/v1/{quote(tenant)}/sessions/{sid}/stream"
            if start:
                path += f"?from={start}"
            writer.write((f"GET {path} HTTP/1.1\r\n"
                          f"Host: {self._host}:{self._port}\r\n"
                          "Upgrade: websocket\r\n"
                          "Connection: Upgrade\r\n"
                          f"Sec-WebSocket-Key: {key}\r\n"
                          "Sec-WebSocket-Version: 13\r\n"
                          "\r\n").encode("latin-1"))
            await writer.drain()
            status, headers, body = await read_response(reader)
            if status != 101:
                self._checked(status, headers, body)
                raise ServiceError(status, "upgrade refused")
            if headers.get("sec-websocket-accept") != ws.accept_key(key):
                raise ws.ProtocolError("bad Sec-WebSocket-Accept key")
            frames: list[bytes] = []
            done: dict = {}
            while True:
                opcode, payload = await ws.read_frame(reader)
                if opcode == ws.OP_BINARY:
                    frames.append(payload)
                elif opcode == ws.OP_TEXT:
                    done = json.loads(payload)
                elif opcode == ws.OP_PING:
                    writer.write(ws.encode_frame(ws.OP_PONG, payload,
                                                 mask=True))
                    await writer.drain()
                elif opcode == ws.OP_CLOSE:
                    writer.write(ws.close_frame(mask=True))
                    await writer.drain()
                    break
            return frames, done
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def stream_reports(self, tenant: str, sid: int, start: int = 0
                             ) -> tuple[list[tuple[int, ProgressReport]],
                                        dict]:
        """Decoded form of :meth:`stream`: merged rows plus the summary."""
        frames, done = await self.stream(tenant, sid, start)
        rows: list[tuple[int, ProgressReport]] = []
        for frame in frames:
            rows.extend(reports_from_payload(frame))
        return rows, done
