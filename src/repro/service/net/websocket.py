"""Just enough RFC 6455 for live report streams.

The subscription endpoint (``GET .../stream``) upgrades its HTTP
connection to a WebSocket and pushes one *binary* frame per batch of new
report rows (the frame payload is :func:`~repro.runtime.transport.
reports_to_payload` bytes — the exact codec the shards use, so a network
subscriber receives the same bytes the supervisor merged), followed by
one *text* frame with the completion summary and a close handshake.

Only the parts of the RFC the front end exercises are implemented:

* the opening handshake (``Sec-WebSocket-Accept`` key transform);
* unfragmented data frames with 7/16/64-bit payload lengths;
* client-to-server masking (required by the RFC; the decoder unmasks,
  the client encoder masks) and unmasked server-to-client frames;
* CLOSE / PING / PONG control opcodes.

Fragmented messages and extensions are rejected loudly — neither end of
this repo produces them, and silent tolerance would mask a peer bug.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

#: Fixed GUID every WebSocket handshake concatenates (RFC 6455 §4.2.2).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Largest frame payload either side will accept (one report batch).
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(Exception):
    """A frame or handshake outside the supported RFC 6455 subset."""


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's nonce key."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(key: str) -> bytes:
    """The 101 response completing the upgrade for nonce ``key``."""
    return ("HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
            "\r\n").encode("latin-1")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One unfragmented frame (FIN set).  ``mask=True`` is the client
    side; servers send unmasked (RFC 6455 §5.1)."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


async def read_frame(reader: asyncio.StreamReader,
                     max_payload: int = MAX_FRAME_BYTES
                     ) -> tuple[int, bytes]:
    """Read one frame; ``(opcode, unmasked payload)``.

    Raises :class:`ProtocolError` on fragmentation, reserved bits or an
    oversized payload, and :class:`asyncio.IncompleteReadError` when the
    peer vanishes mid-frame.
    """
    b0, b1 = await reader.readexactly(2)
    if not b0 & 0x80:
        raise ProtocolError("fragmented frames are not supported")
    if b0 & 0x70:
        raise ProtocolError("reserved frame bits set (extensions are "
                            "not negotiated)")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > max_payload:
        raise ProtocolError(f"frame payload of {length} bytes exceeds the "
                            f"{max_payload}-byte limit")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def close_frame(code: int = 1000, reason: str = "",
                mask: bool = False) -> bytes:
    """An RFC-shaped CLOSE frame (2-byte code + UTF-8 reason)."""
    return encode_frame(OP_CLOSE,
                        struct.pack(">H", code) + reason.encode("utf-8"),
                        mask=mask)
