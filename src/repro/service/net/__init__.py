"""Progress estimation as a network service.

This package puts :class:`~repro.service.sharded.ShardedProgressService`
behind an asyncio HTTP + WebSocket API — the "DBMS-side deployment" of
König et al.'s robust progress estimators, reachable over a wire:

* :mod:`repro.service.net.http` — minimal HTTP/1.1 over asyncio streams
  (request parsing, Content-Length framing, the error envelope);
* :mod:`repro.service.net.websocket` — the RFC 6455 subset backing live
  report streams (handshake, unfragmented frames, close protocol);
* :mod:`repro.service.net.server` — :class:`ProgressServer`: per-tenant
  session lifecycle routes, streaming subscriptions, 429/503 admission
  control with ``Retry-After``, graceful drain;
* :mod:`repro.service.net.client` — :class:`ProgressClient`, the stdlib
  reference client used by the parity tests and the soak benchmark;
* ``python -m repro.service.net`` — run a server from the command line.

Everything on the wire reuses the repo's existing codecs: submissions
are :func:`~repro.runtime.transport.runs_to_payload` bytes, report rows
ship as :func:`~repro.runtime.transport.reports_to_payload` batches.  A
network subscriber therefore observes byte-for-byte the stream the
in-process sharded supervisor merges — the parity the fuzz oracle's
``network`` layer enforces.  See ``docs/api.md`` for the full API
reference and ``docs/architecture.md`` for the layer map.
"""

from repro.service.net.client import ProgressClient, ServiceError
from repro.service.net.server import ROUTES, ProgressServer

__all__ = [
    "ProgressServer",
    "ProgressClient",
    "ServiceError",
    "ROUTES",
]
