"""The asyncio network front end over :class:`ShardedProgressService`.

:class:`ProgressServer` is "progress estimation as a service": remote
clients create monitoring sessions by POSTing recorded runs (trace-codec
bytes), read/list/delete them under per-tenant namespaces, and subscribe
to live report streams over WebSocket.  One asyncio task — the *tick
loop* — drives the sharded fleet exactly as :meth:`ShardedProgressService.
run_until_complete` would, yielding to the event loop between lockstep
rounds so request handling and stream delivery interleave with serving.

**Wire parity.**  Every report row a client sees crossed the exact
columnar codec the shards use internally
(:func:`~repro.runtime.transport.reports_to_payload`): the streaming
endpoint frames each round's new rows as one binary payload, and the
``reports`` route returns the whole stream as one payload.  Decoding and
re-encoding a session's rows therefore reproduces the in-process bytes
bit-for-bit — the network parity test and the fuzz oracle's ``network``
layer both assert exactly that.

**Admission control** maps the fleet's existing budgets onto status
codes, always with ``Retry-After``:

* ``429 Too Many Requests`` — the fleet already has ``max_inflight``
  submitted-but-uncompleted sessions (supervisor-level backpressure; the
  per-shard FIFO deferral queues behind the memory budgets keep absorbing
  bursts below this bound);
* ``503 Service Unavailable`` — the submission can never be admitted
  right now: a run whose footprint exceeds the per-shard memory budget
  (:class:`~repro.service.sharded.MemoryBudgetExceeded`), or any
  submission while the server is draining.

**Graceful drain**: :meth:`begin_drain` stops admissions (503) while the
tick loop keeps running; once every admitted session has completed and
its final frames have been delivered, :meth:`shutdown` closes the
listener and the fleet.  Subscribers always receive their completion
frame before the connection closes.
"""

from __future__ import annotations

import asyncio
import base64
import re

from repro.runtime.transport import reports_to_payload, runs_from_payload
from repro.service.net import http
from repro.service.net import websocket as ws
from repro.service.net.http import (
    JSON_TYPE,
    REPORTS_TYPE,
    RUNS_TYPE,
    BadRequest,
    Request,
    error_body,
    json_body,
    response_bytes,
)
from repro.service.sharded import MemoryBudgetExceeded, ShardedProgressService

#: The served HTTP surface: ``(method, route pattern)``.  ``ci/check_docs.py``
#: fails CI unless every row appears verbatim in ``docs/api.md``.
ROUTES = (
    ("GET", "/healthz"),
    ("GET", "/v1/{tenant}/stats"),
    ("POST", "/v1/{tenant}/sessions"),
    ("GET", "/v1/{tenant}/sessions"),
    ("GET", "/v1/{tenant}/sessions/{sid}"),
    ("DELETE", "/v1/{tenant}/sessions/{sid}"),
    ("GET", "/v1/{tenant}/sessions/{sid}/reports"),
    ("GET", "/v1/{tenant}/sessions/{sid}/stream"),
)

#: Tenant namespaces: short, url-safe, no ambiguity with route segments.
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class SessionRecord:
    """Supervisor-side state of one served session.

    The sharded fleet runs with ``keep_reports=False`` — this record *is*
    the report buffer: rows arrive through the service's ``on_report``
    hook in merged submission order and stay until the tenant DELETEs the
    session.  ``changed`` wakes every subscribed stream task whenever new
    rows (or completion) land.
    """

    __slots__ = ("sid", "tenant", "name", "done", "reports", "changed")

    def __init__(self, sid: int, tenant: str, name: str):
        self.sid = sid
        self.tenant = tenant
        self.name = name
        self.done = False
        self.reports: list = []
        self.changed = asyncio.Event()

    def summary(self) -> dict:
        return {"session": self.sid, "name": self.name,
                "status": "done" if self.done else "active",
                "reports": len(self.reports),
                "progress": (self.reports[-1].progress
                             if self.reports else None)}


class ProgressServer:
    """Serve a sharded progress fleet over HTTP + WebSocket.

    Parameters
    ----------
    monitor:
        A :class:`~repro.core.monitor.ProgressMonitor` (inline shards) or
        zero-arg factory (required for ``processes=True``) — forwarded to
        :class:`ShardedProgressService`.
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (tests and
        benchmarks), :attr:`address` reports the bound one.
    n_shards / slice_steps / max_live / memory_budget_bytes / placement /
    processes / vectorized:
        Fleet knobs, forwarded verbatim to :class:`ShardedProgressService`.
    max_inflight:
        Supervisor-level admission bound: submissions that would push the
        fleet past this many uncompleted sessions get ``429``.  ``None``
        leaves admission to the per-shard budgets alone.
    retry_after:
        Seconds advertised in every ``Retry-After`` header.
    max_body_bytes:
        Request-body cap (oversized submissions get ``413`` before any
        decoding happens).
    """

    def __init__(self, monitor, *, host: str = "127.0.0.1", port: int = 0,
                 n_shards: int = 1, slice_steps: int = 8,
                 max_live: int | None = None,
                 memory_budget_bytes: int | None = None,
                 placement: str = "round_robin", processes: bool = False,
                 vectorized: bool = True, max_inflight: int | None = None,
                 retry_after: float = 1.0,
                 max_body_bytes: int = http.MAX_BODY_BYTES):
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive (or None)")
        self._host = host
        self._port = port
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._max_body_bytes = max_body_bytes
        self._service = ShardedProgressService(
            monitor, n_shards=n_shards, slice_steps=slice_steps,
            max_live=max_live, memory_budget_bytes=memory_budget_bytes,
            placement=placement, processes=processes, vectorized=vectorized,
            on_report=self._staged_reports_append,
            on_complete=self._staged_completed_append,
            keep_reports=False)
        self._records: dict[int, SessionRecord] = {}
        self._tenants: dict[str, list[int]] = {}
        #: rows/completions captured during one tick() call; applied to the
        #: records (and subscriber events) on the event loop afterwards, so
        #: a process-mode tick may run in a worker thread without touching
        #: asyncio primitives off-loop
        self._staged: list = []
        self._staged_done: list[int] = []
        self._work = asyncio.Event()
        self._draining = False
        self._drained = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._tick_task: asyncio.Task | None = None
        self._handlers: set[asyncio.Task] = set()
        self._open_writers: set[asyncio.StreamWriter] = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener and start the tick loop; (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port)
        self._host, self._port = self._server.sockets[0].getsockname()[:2]
        self._tick_task = asyncio.create_task(self._tick_loop())
        return self._host, self._port

    @property
    def address(self) -> tuple[str, int]:
        return self._host, self._port

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting sessions; serving of admitted work continues."""
        self._draining = True
        self._work.set()

    async def wait_drained(self) -> None:
        """Block until every admitted session has completed and flushed."""
        if self._tick_task is None:
            return
        await self._drained.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain, then close the listener and the fleet."""
        if self._closed:
            return
        self.begin_drain()
        await self.wait_drained()
        self._closed = True
        if self._tick_task is not None:
            await self._tick_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # reap connection handlers *before* the loop can tear them down:
        # closing the transports unblocks any parked read with an EOF
        for writer in list(self._open_writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        self._service.close()

    async def __aenter__(self) -> "ProgressServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    # -- the tick loop -------------------------------------------------------

    def _staged_reports_append(self, sid: int, report) -> None:
        self._staged.append((sid, report))

    def _staged_completed_append(self, sid: int) -> None:
        self._staged_done.append(sid)

    def _apply_staged(self) -> None:
        """Fold one tick round's staged rows into the session records and
        wake their subscribers — runs on the event loop, after tick()."""
        staged, self._staged = self._staged, []
        done, self._staged_done = self._staged_done, []
        for sid, report in staged:
            record = self._records[sid]
            record.reports.append(report)
            record.changed.set()
        for sid in done:
            record = self._records[sid]
            record.done = True
            record.changed.set()

    async def _tick_loop(self) -> None:
        """Drive the fleet while work exists; park on ``_work`` when idle.

        Process-mode rounds block on pipe IPC, so they run in a worker
        thread; inline rounds run directly on the loop.  Either way the
        staged rows are applied on-loop and a zero sleep lets handlers
        and stream tasks run between rounds.
        """
        service = self._service
        while True:
            if service.active:
                if service.processes:
                    await asyncio.to_thread(service.tick)
                else:
                    service.tick()
                self._apply_staged()
                await asyncio.sleep(0)
            elif self._draining:
                break
            else:
                self._work.clear()
                if service.active or self._draining:
                    continue
                await self._work.wait()
        self._drained.set()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._open_writers.add(writer)
        try:
            while True:
                try:
                    request = await http.read_request(reader,
                                                      self._max_body_bytes)
                except BadRequest as exc:
                    # framing is unreliable after a parse error: reply, close
                    writer.write(response_bytes(
                        exc.status, error_body(exc.status, exc.detail),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                hijacked, response = await self._dispatch(request, reader,
                                                          writer)
                if hijacked:
                    return  # the stream handler owns the socket now
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            self._open_writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter
                        ) -> tuple[bool, bytes]:
        """Route one request; ``(hijacked, response bytes)``."""
        try:
            return await self._route(request, reader, writer)
        except BadRequest as exc:
            return False, response_bytes(
                exc.status, error_body(exc.status, exc.detail))
        except Exception as exc:  # surface, don't kill the connection loop
            return False, response_bytes(
                500, error_body(500, f"{type(exc).__name__}: {exc}"))

    async def _route(self, request: Request, reader, writer
                     ) -> tuple[bool, bytes]:
        parts = [part for part in request.path.split("/") if part]
        method = request.method
        if parts == ["healthz"]:
            self._check_method(method, ("GET",))
            return False, self._healthz()
        if len(parts) >= 2 and parts[0] == "v1":
            tenant = parts[1]
            if not TENANT_RE.match(tenant):
                raise BadRequest(f"invalid tenant name {tenant!r}")
            rest = parts[2:]
            if rest == ["stats"]:
                self._check_method(method, ("GET",))
                return False, self._stats(tenant)
            if rest == ["sessions"]:
                self._check_method(method, ("GET", "POST"))
                if method == "POST":
                    return False, self._create_sessions(tenant, request)
                return False, self._list_sessions(tenant)
            if len(rest) in (2, 3) and rest[0] == "sessions":
                record = self._find(tenant, rest[1])
                if len(rest) == 2:
                    self._check_method(method, ("GET", "DELETE"))
                    if method == "DELETE":
                        return False, self._delete_session(record)
                    return False, response_bytes(
                        200, json_body(record.summary()))
                if rest[2] == "reports":
                    self._check_method(method, ("GET",))
                    return False, self._session_reports(record)
                if rest[2] == "stream":
                    self._check_method(method, ("GET",))
                    return await self._stream(record, request, reader,
                                              writer)
        raise BadRequest(f"no route for {request.path}", status=404)

    @staticmethod
    def _check_method(method: str, allowed: tuple[str, ...]) -> None:
        if method not in allowed:
            exc = BadRequest(f"method {method} not allowed here "
                             f"(allowed: {', '.join(allowed)})", status=405)
            raise exc

    def _find(self, tenant: str, sid_text: str) -> SessionRecord:
        """Tenant-scoped session lookup; 404 outside the namespace."""
        try:
            sid = int(sid_text)
        except ValueError:
            raise BadRequest(f"no session {sid_text!r}",
                             status=404) from None
        record = self._records.get(sid)
        if record is None or record.tenant != tenant:
            raise BadRequest(f"no session {sid} under tenant {tenant!r}",
                             status=404)
        return record

    # -- routes --------------------------------------------------------------

    def _healthz(self) -> bytes:
        return response_bytes(200, json_body({
            "status": "draining" if self._draining else "ok",
            "sessions_inflight": self._service.sessions_inflight,
            "n_shards": self._service.n_shards,
        }))

    def _stats(self, tenant: str) -> bytes:
        fleet = self._service.stats
        service = fleet.service
        sids = self._tenants.get(tenant, [])
        done = sum(1 for sid in sids if self._records[sid].done)
        return response_bytes(200, json_body({
            "tenant": {"name": tenant, "sessions": len(sids), "done": done,
                       "reports": sum(len(self._records[sid].reports)
                                      for sid in sids)},
            "fleet": {
                "n_shards": self._service.n_shards,
                "placement": self._service.placement,
                "processes": self._service.processes,
                "draining": self._draining,
                "sessions_submitted": self._service.sessions_submitted,
                "sessions_completed": service.sessions_completed,
                "sessions_inflight": self._service.sessions_inflight,
                "reports": service.reports,
                "ticks": service.ticks,
                "steps": service.steps,
                "deferrals": fleet.deferrals,
                "bytes_live": fleet.bytes_live,
                "bytes_peak": fleet.bytes_peak,
                "round_p50_ms": 1e3 * fleet.round_latency(50),
                "round_p99_ms": 1e3 * fleet.round_latency(99),
                "tick_p50_ms": 1e3 * fleet.tick_latency(50),
                "tick_p99_ms": 1e3 * fleet.tick_latency(99),
            },
        }))

    def _list_sessions(self, tenant: str) -> bytes:
        sids = self._tenants.get(tenant, [])
        return response_bytes(200, json_body({
            "tenant": tenant,
            "sessions": [self._records[sid].summary() for sid in sids]}))

    def _decode_runs(self, request: Request):
        """The two submission body formats -> list of runs (+ name)."""
        kind = request.content_type()
        name = request.query.get("name")
        if kind == RUNS_TYPE:
            body = request.body
        elif kind == JSON_TYPE:
            payload = request.json()
            encoded = payload.get("runs_b64")
            if not isinstance(encoded, str):
                raise BadRequest("JSON submissions need a 'runs_b64' field "
                                 "holding base64 trace-codec bytes")
            if "name" in payload:
                name = payload["name"]
            try:
                body = base64.b64decode(encoded.encode("ascii"),
                                        validate=True)
            except Exception as exc:
                raise BadRequest(f"invalid runs_b64: {exc}") from None
        else:
            raise BadRequest(
                f"unsupported submission content type {kind!r} (use "
                f"{RUNS_TYPE} or {JSON_TYPE})", status=415)
        try:
            runs = runs_from_payload(body)
        except Exception as exc:
            raise BadRequest(f"undecodable runs payload: {exc}") from None
        if not runs:
            raise BadRequest("submission carries no runs")
        if name is not None and len(runs) != 1:
            raise BadRequest("'name' applies to single-run submissions "
                             f"only (payload carries {len(runs)})")
        return runs, name

    def _create_sessions(self, tenant: str, request: Request) -> bytes:
        retry = {"Retry-After": f"{self.retry_after:g}"}
        if self._draining:
            return response_bytes(
                503, error_body(503, "server is draining; submissions are "
                                "not admitted"), headers=retry)
        runs, name = self._decode_runs(request)
        if (self.max_inflight is not None
                and self._service.sessions_inflight + len(runs)
                > self.max_inflight):
            return response_bytes(
                429, error_body(
                    429, f"fleet already has "
                    f"{self._service.sessions_inflight} sessions in flight "
                    f"(max_inflight={self.max_inflight})"),
                headers=retry)
        budget = self._service.memory_budget_bytes
        if budget is not None:
            for run in runs:  # all-or-nothing: reject before any admission
                if run.nbytes > budget:
                    return response_bytes(
                        503, error_body(
                            503, f"run {run.query_name!r} needs "
                            f"{run.nbytes} bytes but the per-shard budget "
                            f"is {budget}"),
                        headers=retry)
        created = []
        for run in runs:
            try:
                sid = self._service.submit_replay(run, query_name=name)
            except MemoryBudgetExceeded as exc:  # pragma: no cover - raced
                return response_bytes(503, error_body(503, str(exc)),
                                      headers=retry)
            record = SessionRecord(sid, tenant, name or run.query_name)
            self._records[sid] = record
            self._tenants.setdefault(tenant, []).append(sid)
            created.append({"session": sid, "name": record.name})
        self._work.set()
        body = {"tenant": tenant, "sessions": created}
        if len(created) == 1:
            body["session"] = created[0]["session"]
        return response_bytes(201, json_body(body))

    def _delete_session(self, record: SessionRecord) -> bytes:
        if not record.done:
            raise BadRequest(
                f"session {record.sid} is still active; only completed "
                f"sessions can be deleted", status=409)
        self._records.pop(record.sid, None)
        sids = self._tenants.get(record.tenant, [])
        if record.sid in sids:
            sids.remove(record.sid)
        return response_bytes(200, json_body({"deleted": record.sid}))

    def _session_reports(self, record: SessionRecord) -> bytes:
        payload = reports_to_payload(
            [(record.sid, report) for report in record.reports])
        return response_bytes(200, payload, content_type=REPORTS_TYPE,
                              headers={"X-Repro-Session-Done":
                                       "true" if record.done else "false"})

    # -- the streaming endpoint ----------------------------------------------

    async def _stream(self, record: SessionRecord, request: Request,
                      reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> tuple[bool, bytes]:
        """Upgrade to WebSocket and push the session's report rows live.

        Each binary frame carries the rows that became visible since the
        last frame (or since ``?from=``) as one ``reports_to_payload``
        batch; a final text frame summarizes completion, then the server
        closes RFC-style.  Subscribing to a completed session simply
        replays its buffered stream in one frame.
        """
        if (request.headers.get("upgrade", "").lower() != "websocket"
                or "sec-websocket-key" not in request.headers):
            raise BadRequest(
                "this endpoint only speaks WebSocket; send an Upgrade "
                "handshake", status=426)
        try:
            cursor = int(request.query.get("from", "0"))
        except ValueError:
            raise BadRequest("'from' must be an integer report index") \
                from None
        if cursor < 0:
            raise BadRequest("'from' must be non-negative")
        writer.write(ws.handshake_response(
            request.headers["sec-websocket-key"]))
        try:
            while True:
                if cursor < len(record.reports):
                    batch = record.reports[cursor:]
                    cursor = len(record.reports)
                    writer.write(ws.encode_frame(
                        ws.OP_BINARY,
                        reports_to_payload([(record.sid, report)
                                            for report in batch])))
                    await writer.drain()
                if record.done and cursor >= len(record.reports):
                    break
                if not (cursor < len(record.reports) or record.done):
                    record.changed.clear()
                    await record.changed.wait()
            writer.write(ws.encode_frame(ws.OP_TEXT, json_body({
                "type": "done", "session": record.sid,
                "tenant": record.tenant, "name": record.name,
                "reports": len(record.reports)})))
            writer.write(ws.close_frame())
            await writer.drain()
            # half of the RFC close handshake: give the peer a moment to
            # mirror the close frame, then tear down regardless
            try:
                async with asyncio.timeout(1.0):
                    while True:
                        opcode, _ = await ws.read_frame(reader)
                        if opcode == ws.OP_CLOSE:
                            break
            except (TimeoutError, asyncio.IncompleteReadError,
                    ws.ProtocolError):
                pass
        except (ConnectionResetError, BrokenPipeError):
            pass  # subscriber went away mid-stream
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return True, b""
