"""Minimal HTTP/1.1 over asyncio streams — the front end's own wire layer.

The network front end deliberately speaks raw HTTP/1.1 instead of pulling
in a web framework: the repo's only runtime dependency is NumPy, CI must
stay hermetic, and the served surface is small enough (eight routes, see
:data:`repro.service.net.server.ROUTES`) that a framework would be mostly
dead weight.  This module is the request/response half; the RFC 6455
upgrade path lives in :mod:`repro.service.net.websocket`.

Scope (and the corresponding hard errors):

* request line + headers, capped at :data:`MAX_HEADER_BYTES` (431 via
  :class:`BadRequest` when blown);
* bodies sized by ``Content-Length`` only — ``Transfer-Encoding`` is
  rejected (the repo's clients never chunk) — capped by the server's
  configured body limit (413);
* ``keep-alive`` connection reuse (HTTP/1.1 default; ``Connection:
  close`` honoured both ways).

Responses always carry ``Content-Length`` so clients can frame replies
without sniffing for EOF.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024
#: Default upper bound on request bodies (servers may lower it).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Reason phrases for every status the front end emits.
STATUS_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON_TYPE = "application/json"
#: Content type of trace-codec run payloads (``runs_to_payload`` bytes).
RUNS_TYPE = "application/x-repro-runs"
#: Content type of columnar report payloads (``reports_to_payload`` bytes).
REPORTS_TYPE = "application/x-repro-reports"


class BadRequest(Exception):
    """A request the server refuses to route, with its response status."""

    def __init__(self, detail: str, status: int = 400):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP/1.1 request."""

    method: str
    #: decoded path component, e.g. ``/v1/acme/sessions``
    path: str
    #: parsed query string: name -> first value
    query: dict[str, str]
    #: header names lower-cased; duplicate headers keep the last value
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def content_type(self) -> str:
        """The media type, parameters (``; charset=...``) stripped."""
        return self.headers.get("content-type", "").split(";")[0].strip()

    def json(self) -> dict:
        """Decode a JSON object body; :class:`BadRequest` on anything else."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload


async def read_request(reader: asyncio.StreamReader,
                       max_body_bytes: int = MAX_BODY_BYTES
                       ) -> Request | None:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`BadRequest` for anything malformed — the caller turns
    that into a 4xx response and closes the connection (framing can no
    longer be trusted after a parse failure).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise BadRequest("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request head exceeds the header limit",
                         status=431) from None
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head exceeds the header limit", status=431)
    request_line, _, header_block = head[:-4].decode(
        "latin-1").partition("\r\n")
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {name: values[-1]
             for name, values in parse_qs(split.query).items()}
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise BadRequest("Transfer-Encoding is not supported; frame the "
                         "body with Content-Length")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("non-numeric Content-Length") from None
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > max_body_bytes:
            raise BadRequest(
                f"body of {length} bytes exceeds the {max_body_bytes}-byte "
                f"limit", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("body shorter than Content-Length") from None
    return Request(method=method, path=unquote(split.path), query=query,
                   headers=headers, body=body)


def response_bytes(status: int, body: bytes = b"",
                   content_type: str = JSON_TYPE,
                   headers: dict[str, str] | None = None,
                   keep_alive: bool = True) -> bytes:
    """Serialize one response, always Content-Length-framed."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: dict) -> bytes:
    """Canonical JSON encoding (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def error_body(status: int, detail: str) -> bytes:
    """The uniform error envelope every non-2xx response carries."""
    return json_body({"error": {"status": status,
                                "reason": STATUS_REASONS.get(status, ""),
                                "detail": detail}})


async def read_response(reader: asyncio.StreamReader
                        ) -> tuple[int, dict[str, str], bytes]:
    """Client side: read one Content-Length-framed response."""
    head = await reader.readuntil(b"\r\n\r\n")
    status_line, _, header_block = head[:-4].decode(
        "latin-1").partition("\r\n")
    status = int(status_line.split(" ")[1])
    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, body
