"""Physical plan representation and pipeline decomposition.

* :mod:`repro.plan.nodes` — the operator vocabulary (:class:`Op`) and the
  :class:`PlanNode` tree, mirroring the paper's ``Nodes(Q)`` /
  ``Descendants(i)`` notation (§3.1).
* :mod:`repro.plan.pipelines` — decomposition of a plan into pipelines /
  segments with driver nodes, per Chaudhuri et al. [6] and Luo et al. [13]
  (§3.2).
"""

from repro.plan.nodes import BLOCKING_OPS, Op, PlanNode, SOURCE_OPS
from repro.plan.pipelines import Pipeline, decompose_pipelines

__all__ = [
    "Op",
    "PlanNode",
    "BLOCKING_OPS",
    "SOURCE_OPS",
    "Pipeline",
    "decompose_pipelines",
]
