"""Pipeline decomposition and driver-node identification (paper §3.2).

A *pipeline* (Chaudhuri et al. [6]; "segment" in Luo et al. [13]) is a
maximal subtree of concurrently executing operators.  Fully blocking
operators — SORT and HASH_AGG materializations, and the build side of a
HASH_JOIN — separate pipelines.  Within a pipeline, the *driver nodes*
(dominant inputs) are the tuple sources: leaf nodes excluding the inner
subtree of nested-loop joins, plus blocking operators acting as sources of
the downstream pipeline.

Pipelines are emitted in execution order, matching the executor's open
cascade: a hash join's build pipeline runs before its probe pipeline; the
pipeline below a sort runs before the pipeline consuming the sort output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plan.nodes import Op, PlanNode


@dataclass
class Pipeline:
    """One pipeline: a set of plan nodes plus its driver nodes."""

    pid: int = -1
    nodes: list[PlanNode] = field(default_factory=list)
    driver_nodes: list[PlanNode] = field(default_factory=list)

    @property
    def node_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes]

    @property
    def driver_ids(self) -> list[int]:
        return [n.node_id for n in self.driver_nodes]

    @property
    def terminal(self) -> PlanNode:
        """The top-most node of the pipeline (first visited)."""
        return self.nodes[0]

    def contains_op(self, op: Op) -> bool:
        return any(n.op == op for n in self.nodes)

    def describe(self) -> str:
        ops = ", ".join(str(n.op) for n in self.nodes)
        drivers = ", ".join(str(n.op) for n in self.driver_nodes)
        return f"P{self.pid}[{ops} | drivers: {drivers}]"


def decompose_pipelines(root: PlanNode) -> list[Pipeline]:
    """Split a finalized plan into pipelines in execution order."""
    if root.node_id < 0:
        raise ValueError("plan must be finalized before pipeline decomposition")
    pipelines: list[Pipeline] = []

    def visit(node: PlanNode, pipe: Pipeline, inner_of_nlj: bool) -> None:
        pipe.nodes.append(node)
        if node.op in (Op.SORT, Op.HASH_AGG):
            # Blocking: the subtree below forms earlier pipeline(s); this
            # node then acts as the source (driver) of the current pipeline.
            child_pipe = Pipeline()
            visit(node.children[0], child_pipe, False)
            pipelines.append(child_pipe)
            if not inner_of_nlj:
                pipe.driver_nodes.append(node)
        elif node.op == Op.HASH_JOIN:
            # Build side (children[1]) executes first, as its own pipeline.
            build_pipe = Pipeline()
            visit(node.children[1], build_pipe, False)
            pipelines.append(build_pipe)
            visit(node.children[0], pipe, inner_of_nlj)
        elif node.op == Op.NESTED_LOOP_JOIN:
            visit(node.children[0], pipe, inner_of_nlj)
            # The inner side executes within this pipeline but its nodes are
            # not driver nodes (paper §3.2).
            visit(node.children[1], pipe, True)
        elif node.op == Op.MERGE_JOIN:
            visit(node.children[0], pipe, inner_of_nlj)
            visit(node.children[1], pipe, inner_of_nlj)
        elif not node.children:
            if not inner_of_nlj:
                pipe.driver_nodes.append(node)
        else:
            visit(node.children[0], pipe, inner_of_nlj)

    top = Pipeline()
    visit(root, top, False)
    pipelines.append(top)
    for pid, pipe in enumerate(pipelines):
        pipe.pid = pid
    return pipelines


def node_to_pipeline(pipelines: list[Pipeline]) -> dict[int, int]:
    """Map ``node_id`` -> ``pid``.  Every node belongs to exactly one pipeline."""
    mapping: dict[int, int] = {}
    for pipe in pipelines:
        for node in pipe.nodes:
            if node.node_id in mapping:
                raise ValueError(f"node {node.node_id} assigned to two pipelines")
            mapping[node.node_id] = pipe.pid
    return mapping
