"""Physical operators and the plan tree.

The operator vocabulary matches the plans the paper's workloads produce on
SQL Server (Table 1 reports nested loop join, merge join, hash join/agg,
index seek, batch sort and stream aggregate fractions): scans, seeks, three
join algorithms, full and *partial batch* sorts (the nested-iteration
optimization of §5.1), aggregates and TOP.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterator


class Op(str, Enum):
    """Physical operator types."""

    TABLE_SCAN = "table_scan"
    INDEX_SCAN = "index_scan"        # clustered-order scan
    INDEX_SEEK = "index_seek"        # equality/range seek on an index
    FILTER = "filter"
    NESTED_LOOP_JOIN = "nested_loop_join"
    HASH_JOIN = "hash_join"
    MERGE_JOIN = "merge_join"
    SORT = "sort"                    # fully blocking sort
    BATCH_SORT = "batch_sort"        # partial (batch-wise) sort, §5.1
    STREAM_AGG = "stream_agg"
    HASH_AGG = "hash_agg"
    TOP = "top"

    def __str__(self) -> str:  # nicer plan printouts
        return self.value


#: Operators that materialize their entire input before producing output.
#: These are the pipeline boundaries of [6]/[13].
BLOCKING_OPS = frozenset({Op.SORT, Op.HASH_AGG})

#: Operators that read base tables.
SOURCE_OPS = frozenset({Op.TABLE_SCAN, Op.INDEX_SCAN, Op.INDEX_SEEK})

#: Operators over which estimated row widths are recomputed from children.
JOIN_OPS = frozenset({Op.NESTED_LOOP_JOIN, Op.HASH_JOIN, Op.MERGE_JOIN})


class PlanNode:
    """One node of a physical execution plan.

    Attributes
    ----------
    node_id:
        Dense preorder index within the plan (assigned by
        :meth:`finalize`); the executor's counter arrays are indexed by it.
    op:
        The physical operator (:class:`Op`).
    children:
        Sub-plans.  For joins, ``children[0]`` is the outer/probe side and
        ``children[1]`` the inner/build side.
    params:
        Operator-specific parameters (table/column names, predicates, join
        keys, sort keys, batch size, aggregate specs, ``k`` for TOP).
    est_rows:
        The optimizer's estimate :math:`E_i^0` of the total number of
        GetNext calls at this node (refined online by estimators).
    est_row_width:
        Estimated bytes per output row, for the Bytes-Processed model.
    """

    def __init__(self, op: Op, children: list["PlanNode"] | None = None,
                 **params: Any):
        self.op = op
        self.children: list[PlanNode] = children or []
        self.params: dict[str, Any] = params
        self.node_id: int = -1
        self.est_rows: float = 0.0
        self.est_row_width: float = 8.0

    # -- tree structure -------------------------------------------------

    def finalize(self) -> "PlanNode":
        """Assign dense preorder ``node_id``s; call once on the root."""
        for i, node in enumerate(self.walk()):
            node.node_id = i
        return self

    def walk(self) -> Iterator["PlanNode"]:
        """Preorder traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def descendants(self) -> Iterator["PlanNode"]:
        """All nodes strictly below this one (paper's ``Descendants(i)``)."""
        for child in self.children:
            yield from child.walk()

    def find_all(self, op: Op) -> list["PlanNode"]:
        return [n for n in self.walk() if n.op == op]

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    # -- convenience accessors -------------------------------------------

    @property
    def table(self) -> str | None:
        return self.params.get("table")

    @property
    def outer(self) -> "PlanNode":
        if not self.children:
            raise ValueError(f"{self.op} has no children")
        return self.children[0]

    @property
    def inner(self) -> "PlanNode":
        if len(self.children) < 2:
            raise ValueError(f"{self.op} has no inner child")
        return self.children[1]

    # -- debugging --------------------------------------------------------

    def pretty(self, indent: int = 0) -> str:
        """Multi-line plan rendering, ``EXPLAIN``-style."""
        label = str(self.op)
        detail = []
        if "table" in self.params:
            detail.append(self.params["table"])
        for key in ("column", "keys", "outer_key", "inner_key", "k"):
            if key in self.params:
                detail.append(f"{key}={self.params[key]}")
        if detail:
            label += f" ({', '.join(str(d) for d in detail)})"
        label += f"  [id={self.node_id}, E={self.est_rows:.0f}]"
        lines = ["  " * indent + label]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PlanNode({self.op}, id={self.node_id}, E={self.est_rows:.0f})"
