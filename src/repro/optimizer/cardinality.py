"""Cardinality estimation with textbook assumptions.

Selectivities come from equi-depth histograms (uniformity within buckets),
conjunctions multiply (independence), equi-joins use the containment
assumption ``|R ⋈ S| = |R||S| / max(ndv(R.a), ndv(S.b))``, and group counts
use the Cardenas formula.  All four assumptions are *wrong on skewed or
correlated data in exactly the way that matters to the paper*: the
resulting ``E_i`` errors are what the TGN estimator inherits and what the
estimator-selection model learns to anticipate.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.statistics import DatabaseStatistics
from repro.query.predicates import FilterSpec


class CardinalityEstimator:
    """Estimates selectivities, join sizes and group counts from statistics."""

    def __init__(self, stats: DatabaseStatistics):
        self.stats = stats

    # -- filters -----------------------------------------------------------

    def filter_selectivity(self, spec: FilterSpec) -> float:
        """Estimated fraction of rows of ``spec.table`` passing ``spec``."""
        col = self.stats.table(spec.table).column(spec.column)
        hist = col.histogram
        if spec.op == "==":
            return hist.selectivity_eq(spec.value)
        if spec.op == "!=":
            return max(0.0, 1.0 - hist.selectivity_eq(spec.value))
        if spec.op == "in":
            sel = sum(hist.selectivity_eq(v) for v in spec.value)
            return min(1.0, sel)
        low, high = spec.seek_range(col.min_value, col.max_value)
        return hist.selectivity_range(low, high)

    def conjunction_selectivity(self, specs: list[FilterSpec]) -> float:
        """Independence assumption: selectivities multiply."""
        sel = 1.0
        for spec in specs:
            sel *= self.filter_selectivity(spec)
        return sel

    def table_cardinality(self, table: str,
                          filters: list[FilterSpec]) -> float:
        base = self.stats.table(table).n_rows
        return max(base * self.conjunction_selectivity(filters), 0.0)

    # -- joins ---------------------------------------------------------------

    def ndv(self, table: str, column: str) -> int:
        return max(1, self.stats.table(table).column(column).n_distinct)

    def join_cardinality(self, left_card: float, right_card: float,
                         left_ndv: int, right_ndv: int) -> float:
        """Containment assumption for equi-joins."""
        return left_card * right_card / max(left_ndv, right_ndv, 1)

    def semi_join_cardinality(self, left_card: float, right_card: float,
                              left_ndv: int, right_ndv: int) -> float:
        """Left rows with ≥1 partner, under containment.

        The fraction of left keys that find a partner is the fraction of
        the left key domain present on the right: ``min(right_card,
        right_ndv) / left_ndv``, capped at 1.  Never exceeds the left
        input — semi joins emit each left row at most once.
        """
        match_fraction = min(
            1.0, min(right_card, float(right_ndv)) / max(left_ndv, 1))
        return left_card * match_fraction

    def anti_join_cardinality(self, left_card: float, right_card: float,
                              left_ndv: int, right_ndv: int) -> float:
        """Left rows with no partner: the semi join's complement."""
        semi = self.semi_join_cardinality(left_card, right_card,
                                          left_ndv, right_ndv)
        return max(left_card - semi, 0.0)

    def outer_join_cardinality(self, left_card: float, right_card: float,
                               left_ndv: int, right_ndv: int) -> float:
        """LEFT OUTER join: inner matches plus one padded row per
        unmatched left row; never below the preserved side."""
        inner = self.join_cardinality(left_card, right_card,
                                      left_ndv, right_ndv)
        anti = self.anti_join_cardinality(left_card, right_card,
                                          left_ndv, right_ndv)
        return max(inner + anti, left_card)

    def seek_fanout(self, table: str, column: str) -> float:
        """Expected matches per probe key for an index seek on ``column``."""
        return self.stats.table(table).n_rows / self.ndv(table, column)

    # -- grouping -------------------------------------------------------------

    def group_count(self, input_card: float, group_ndvs: list[int]) -> float:
        """Cardenas' formula: expected distinct groups among ``input_card`` rows."""
        if not group_ndvs:
            return 1.0
        domain = float(np.prod([max(d, 1) for d in group_ndvs]))
        if input_card <= 0:
            return 0.0
        if domain > 1e12:
            return min(input_card, domain)
        # D(n, d) = d * (1 - (1 - 1/d)^n)
        n, d = input_card, domain
        return min(n, d * (1.0 - (1.0 - 1.0 / d) ** n))
