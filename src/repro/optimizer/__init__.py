"""Planner substrate: cardinality estimation, physical design, plan building.

The planner turns :class:`~repro.query.logical.QuerySpec` objects into
physical plans with optimizer estimates ``E_i`` attached.  Estimation uses
the classic histogram + independence + containment assumptions, so the
estimation *errors* that challenge progress estimators arise from data
skew and correlation the same way they do in a production optimizer.
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.physical_design import (
    DesignLevel,
    PhysicalDesign,
    apply_design,
    design_for_workload,
)
from repro.optimizer.planner import Planner, PlannerConfig

__all__ = [
    "CardinalityEstimator",
    "DesignLevel",
    "PhysicalDesign",
    "apply_design",
    "design_for_workload",
    "Planner",
    "PlannerConfig",
]
