"""Physical design: index configurations at three tuning levels.

The paper evaluates TPC-H under three designs (§6, Table 1): "untuned"
(only integrity-constraint indexes), "fully tuned" (everything the Database
Tuning Advisor recommends), and "partially tuned" (DTA restricted to half
the fully-tuned space).  We reproduce the same axis with a deterministic
advisor: candidates are the join and sargable-filter columns a workload
touches; FULL takes all of them, PARTIAL takes the most frequently used
candidates until half of FULL's space (rows as a proxy) is spent, UNTUNED
takes none.  Different designs flip plans between hash joins and
index-nested-loops, which is exactly the operator-mix shift Table 1
documents.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

from repro.catalog.table import Database
from repro.query.logical import QuerySpec


class DesignLevel(str, Enum):
    UNTUNED = "untuned"
    PARTIAL = "partial"
    FULL = "full"


@dataclass
class PhysicalDesign:
    """A named set of secondary indexes: table -> indexed columns."""

    name: str
    indexes: dict[str, set[str]] = field(default_factory=dict)

    def columns_for(self, table: str) -> set[str]:
        return self.indexes.get(table, set())

    def n_indexes(self) -> int:
        return sum(len(cols) for cols in self.indexes.values())

    def add(self, table: str, column: str) -> None:
        self.indexes.setdefault(table, set()).add(column)


def candidate_columns(queries: list[QuerySpec]) -> Counter:
    """(table, column) candidates with their usage frequency in a workload."""
    usage: Counter = Counter()
    for query in queries:
        for join in query.joins:
            usage[(join.left_table, join.left_column)] += 1
            usage[(join.right_table, join.right_column)] += 1
        for filt in query.filters:
            if filt.sargable:
                usage[(filt.table, filt.column)] += 1
    return usage


def design_for_workload(db: Database, queries: list[QuerySpec],
                        level: DesignLevel) -> PhysicalDesign:
    """Deterministic tuning-advisor stand-in (see module docstring)."""
    design = PhysicalDesign(name=level.value)
    if level == DesignLevel.UNTUNED:
        return design
    usage = candidate_columns(queries)
    # Exclude columns already served by the clustered index.
    candidates = []
    for (table, column), freq in usage.items():
        tab = db.table(table)
        if tab.clustered_on == column:
            continue
        candidates.append((freq, table, column, tab.n_rows))
    if level == DesignLevel.FULL:
        for _, table, column, _ in candidates:
            design.add(table, column)
        return design
    # PARTIAL: highest benefit-per-byte first, up to half the FULL space.
    full_space = sum(rows for _, _, _, rows in candidates)
    budget = full_space / 2.0
    spent = 0.0
    ranked = sorted(candidates,
                    key=lambda c: (-c[0] / max(c[3], 1), c[1], c[2]))
    for freq, table, column, rows in ranked:
        if spent + rows > budget and spent > 0:
            continue
        design.add(table, column)
        spent += rows
    return design


def apply_design(db: Database, design: PhysicalDesign) -> None:
    """Install ``design`` on ``db``: drop all secondary indexes, recreate."""
    for table in db.tables.values():
        for column in list(table.indexes):
            table.drop_index(column)
        for column in sorted(design.columns_for(table.name)):
            table.create_index(column)
