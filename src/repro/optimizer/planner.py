"""Heuristic cost-based planner: QuerySpec -> physical PlanNode tree.

Access paths, greedy join ordering and physical operator selection follow
the standard rules a commercial optimizer applies:

* a sargable filter on an indexed column below a selectivity threshold
  becomes an INDEX_SEEK source, otherwise a scan plus residual FILTER;
* joins are ordered greedily by estimated cost; each step picks hash,
  merge (when both inputs arrive in key order) or index-nested-loop (when
  the inner table is seekable on the join column) by comparing simple cost
  formulas on the *estimated* cardinalities;
* an index-nested-loop over a large outer gets a partial BATCH_SORT on the
  outer side to localize inner references (§5.1; [9] §8.3) — including the
  dynamically growing batch sizes that make progress estimation hard;
* grouping uses stream aggregation when the input is already ordered,
  hash aggregation for small group counts, and sort+stream otherwise.

Every node receives the optimizer estimate ``E_i`` (``est_rows``) and an
estimated row width; those estimates inherit all cardinality-estimation
errors, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.statistics import DatabaseStatistics, build_statistics
from repro.catalog.table import Database
from repro.optimizer.cardinality import CardinalityEstimator
from repro.plan.nodes import Op, PlanNode
from repro.query.logical import JoinEdge, QuerySpec, valid_start_tables


@dataclass
class PlannerConfig:
    """Thresholds and cost weights of the heuristic planner."""

    seek_selectivity_threshold: float = 0.25
    batch_sort_min_outer: float = 600.0
    batch_sort_initial: int = 256
    batch_sort_growth: float = 2.0
    batch_sort_max: int = 1 << 14
    batch_sort_io_discount: float = 0.55
    hash_agg_max_groups: float = 100_000.0
    hash_agg_max_group_fraction: float = 0.5
    # relative per-row cost weights used only for plan choices
    cost_seek_probe: float = 5.0
    cost_hash_build: float = 1.8
    cost_hash_probe: float = 1.0
    cost_merge_row: float = 0.6
    cost_output_row: float = 1.0


@dataclass
class _SubPlan:
    """A partially built plan with its derived properties."""

    node: PlanNode
    est: float
    width: float
    order: str | None     # column the output is sorted by, if any
    tables: set[str]


class Planner:
    """Builds physical plans for one database + statistics snapshot."""

    def __init__(self, db: Database, stats: DatabaseStatistics | None = None,
                 config: PlannerConfig | None = None):
        self.db = db
        self.stats = stats or build_statistics(db)
        self.card = CardinalityEstimator(self.stats)
        self.config = config or PlannerConfig()

    # -- public API ---------------------------------------------------------

    def plan(self, query: QuerySpec) -> PlanNode:
        """Produce a finalized physical plan for ``query``."""
        sub = self._join_phase(query)
        if query.aggregates:
            sub = self._aggregate(query, sub)
        sub = self._order_and_top(query, sub)
        return sub.node.finalize()

    # -- access paths ---------------------------------------------------------

    def _access_path(self, query: QuerySpec, table: str) -> _SubPlan:
        tab = self.db.table(table)
        filters = query.filters_on(table)
        est_all = max(tab.n_rows * self.card.conjunction_selectivity(filters),
                      0.01)
        width = float(tab.row_width)
        best_spec, best_sel = None, 1.0
        for spec in filters:
            if spec.sargable and tab.has_index(spec.column):
                sel = self.card.filter_selectivity(spec)
                if sel < best_sel:
                    best_spec, best_sel = spec, sel
        if best_spec is not None and best_sel <= self.config.seek_selectivity_threshold:
            col_stats = self.stats.table(table).column(best_spec.column)
            low, high = best_spec.seek_range(col_stats.min_value,
                                             col_stats.max_value)
            seek = PlanNode(Op.INDEX_SEEK, table=table,
                            column=best_spec.column, low=low, high=high)
            seek.est_rows = max(tab.n_rows * best_sel, 0.01)
            seek.est_row_width = width
            node, order = seek, best_spec.column
            residual = [f for f in filters if f is not best_spec]
            if residual:
                node = PlanNode(Op.FILTER, [seek], predicates=residual)
                node.est_rows = est_all
                node.est_row_width = width
        else:
            scan_op = Op.INDEX_SCAN if tab.clustered_on else Op.TABLE_SCAN
            scan = PlanNode(scan_op, table=table)
            scan.est_rows = float(tab.n_rows)
            scan.est_row_width = width
            node, order = scan, tab.clustered_on
            if filters:
                node = PlanNode(Op.FILTER, [scan], predicates=filters)
                node.est_rows = est_all
                node.est_row_width = width
        return _SubPlan(node, est_all, width, order, {table})

    # -- joins -------------------------------------------------------------------

    def _join_phase(self, query: QuerySpec) -> _SubPlan:
        access = {t: self._access_path(query, t) for t in query.tables}
        if len(query.tables) == 1:
            return access[query.tables[0]]
        # Start from the most *selective* table (filtered fraction of its
        # base), the way a cost-based optimizer anchors the join order on
        # the strongest predicate, not merely the smallest relation.
        def selectivity(t: str) -> tuple[float, float]:
            base = max(self.db.table(t).n_rows, 1)
            return (access[t].est / base, access[t].est)

        candidates = query.tables
        if any(e.kind != "inner" for e in query.joins):
            # Non-inner edges force their preserved side to be joined
            # first; only start tables from which a complete eligible
            # order exists are sound.  QuerySpec validation guarantees at
            # least one survives.
            candidates = valid_start_tables(query.tables, query.joins)
        start = min(candidates, key=selectivity)
        current = access[start]
        remaining = set(query.tables) - {start}
        while remaining:
            choice = self._best_next_join(query, current, access, remaining)
            if choice is None:
                raise ValueError(f"query {query.name!r}: join graph is disconnected")
            edge, table = choice
            current = self._build_join(query, current, access[table], edge, table)
            remaining.discard(table)
        return current

    def _best_next_join(self, query: QuerySpec, current: _SubPlan,
                        access: dict[str, _SubPlan],
                        remaining: set[str]) -> tuple[JoinEdge, str] | None:
        """Greedy min-intermediate-result: smallest estimated join output
        first, ties broken by the cheapest physical method."""
        best, best_key = None, (float("inf"), float("inf"))
        for edge in query.joins:
            sides = (edge.left_table, edge.right_table)
            inside = [t for t in sides if t in current.tables]
            outside = [t for t in sides if t in remaining]
            if len(inside) != 1 or len(outside) != 1:
                continue
            table = outside[0]
            if edge.kind != "inner" and table != edge.right_table:
                # the preserved (left) side must already be joined
                continue
            join_est = self._join_est(edge, current, access[table], table)
            cost = self._cheapest_method(current, access[table], edge, table)[1]
            key = (join_est, cost)
            if key < best_key:
                best, best_key = (edge, table), key
        return best

    def _cheapest_method(self, current: _SubPlan, target: _SubPlan,
                         edge: JoinEdge, table: str) -> tuple[str, float]:
        cfg = self.config
        pcol = edge.column_for(edge.other(table))
        tcol = edge.column_for(table)
        join_est = self._join_est(edge, current, target, table)
        out_cost = cfg.cost_output_row * join_est
        if edge.kind == "inner":
            smaller, larger = sorted((current.est, target.est))
        else:
            # non-inner joins must build on the non-preserved (target)
            # side: the probe side's row identity drives pad/keep/drop
            smaller, larger = target.est, current.est
        best = ("hash", cfg.cost_hash_build * smaller
                + cfg.cost_hash_probe * larger + out_cost)
        tab = self.db.table(table)
        if edge.kind == "inner" and tab.has_index(tcol):
            raw = current.est * self.card.seek_fanout(table, tcol)
            nlj_cost = (cfg.cost_seek_probe * current.est
                        + 1.2 * raw + out_cost)
            if (current.est >= cfg.batch_sort_min_outer
                    and current.order != pcol):
                # A partial batch sort on the outer localizes the inner
                # seeks (the executor discounts sorted probes), making
                # "optimized" NLJ competitive for medium outers — the plans
                # behind the paper's Figure 6.
                nlj_cost *= cfg.batch_sort_io_discount
            if nlj_cost < best[1]:
                best = ("nlj", nlj_cost)
        if (edge.kind in ("inner", "left")
                and current.order == pcol and target.order == tcol):
            merge_cost = (cfg.cost_merge_row * (current.est + target.est)
                          + out_cost)
            if merge_cost < best[1]:
                best = ("merge", merge_cost)
        return best

    def _edge_ndv(self, edge: JoinEdge, table: str) -> int:
        return self.card.ndv(table, edge.column_for(table))

    def _join_est(self, edge: JoinEdge, current: _SubPlan, target: _SubPlan,
                  table: str) -> float:
        """Kind-aware join size estimate; for non-inner edges ``current``
        is always the preserved side (eligibility guarantees it)."""
        left_ndv = self._edge_ndv(edge, edge.other(table))
        right_ndv = self._edge_ndv(edge, table)
        if edge.kind == "left":
            return self.card.outer_join_cardinality(
                current.est, target.est, left_ndv, right_ndv)
        if edge.kind == "semi":
            return self.card.semi_join_cardinality(
                current.est, target.est, left_ndv, right_ndv)
        if edge.kind == "anti":
            return self.card.anti_join_cardinality(
                current.est, target.est, left_ndv, right_ndv)
        return self.card.join_cardinality(
            current.est, target.est, left_ndv, right_ndv)

    def _build_join(self, query: QuerySpec, current: _SubPlan,
                    target: _SubPlan, edge: JoinEdge, table: str) -> _SubPlan:
        method = self._cheapest_method(current, target, edge, table)[0]
        pcol = edge.column_for(edge.other(table))
        tcol = edge.column_for(table)
        join_est = max(self._join_est(edge, current, target, table), 0.01)
        # semi/anti joins emit only the preserved side's columns
        if edge.kind in ("semi", "anti"):
            out_width = current.width
        else:
            out_width = current.width + target.width

        if method == "nlj":
            return self._build_nlj(query, current, edge, table, pcol, tcol,
                                   out_width)
        if method == "merge":
            node = PlanNode(Op.MERGE_JOIN, [current.node, target.node],
                            outer_key=pcol, inner_key=tcol)
            if edge.kind != "inner":
                node.params["join_kind"] = edge.kind
            node.est_rows = join_est
            node.est_row_width = out_width
            return _SubPlan(node, join_est, out_width, pcol,
                            current.tables | {table})
        # hash join: build on the smaller estimated side; non-inner kinds
        # must probe with the preserved side, so the build side is fixed
        if edge.kind == "inner" and target.est > current.est:
            probe, build = target, current
            probe_key, build_key = tcol, pcol
        else:
            probe, build = current, target
            probe_key, build_key = pcol, tcol
        node = PlanNode(Op.HASH_JOIN, [probe.node, build.node],
                        probe_key=probe_key, build_key=build_key)
        if edge.kind != "inner":
            node.params["join_kind"] = edge.kind
        node.est_rows = join_est
        node.est_row_width = out_width
        return _SubPlan(node, join_est, out_width, probe.order,
                        current.tables | {table})

    def _build_nlj(self, query: QuerySpec, current: _SubPlan, edge: JoinEdge,
                   table: str, pcol: str, tcol: str,
                   out_width: float) -> _SubPlan:
        cfg = self.config
        tab = self.db.table(table)
        raw_total = max(current.est * self.card.seek_fanout(table, tcol), 0.01)
        filters = query.filters_on(table)
        filtered_total = max(
            raw_total * self.card.conjunction_selectivity(filters), 0.01)

        outer_node = current.node
        order: str | None = current.order
        if (current.est >= cfg.batch_sort_min_outer
                and current.order != pcol):
            batch = PlanNode(Op.BATCH_SORT, [outer_node], keys=[pcol],
                             initial_batch=cfg.batch_sort_initial,
                             growth=cfg.batch_sort_growth,
                             max_batch=cfg.batch_sort_max)
            batch.est_rows = current.est
            batch.est_row_width = current.width
            outer_node = batch
            order = None  # batch-local order only

        seek = PlanNode(Op.INDEX_SEEK, table=table, column=tcol)
        seek.est_rows = raw_total
        seek.est_row_width = float(tab.row_width)
        inner: PlanNode = seek
        if filters:
            inner = PlanNode(Op.FILTER, [seek], predicates=filters)
            inner.est_rows = filtered_total
            inner.est_row_width = float(tab.row_width)
        node = PlanNode(Op.NESTED_LOOP_JOIN, [outer_node, inner],
                        outer_key=pcol)
        node.est_rows = filtered_total
        node.est_row_width = out_width
        return _SubPlan(node, filtered_total, out_width, order,
                        current.tables | {table})

    # -- aggregation / ordering -----------------------------------------------

    def _aggregate(self, query: QuerySpec, sub: _SubPlan) -> _SubPlan:
        cfg = self.config
        group_cols = list(query.group_by)
        aggs = list(query.aggregates)
        out_width = 8.0 * (len(group_cols) + len(aggs))
        if not group_cols:
            node = PlanNode(Op.STREAM_AGG, [sub.node], group_cols=[], aggs=aggs)
            node.est_rows = 1.0
            node.est_row_width = out_width
            return _SubPlan(node, 1.0, out_width, None, sub.tables)
        ndvs = [self.card.ndv(self.db.schema.table_of_column(c).name, c)
                for c in group_cols]
        groups = max(self.card.group_count(sub.est, ndvs), 1.0)
        if len(group_cols) == 1 and sub.order == group_cols[0]:
            node = PlanNode(Op.STREAM_AGG, [sub.node], group_cols=group_cols,
                            aggs=aggs)
            node.est_rows = groups
            node.est_row_width = out_width
            return _SubPlan(node, groups, out_width, group_cols[0], sub.tables)
        if (groups <= cfg.hash_agg_max_groups
                and groups <= cfg.hash_agg_max_group_fraction * max(sub.est, 1.0)):
            node = PlanNode(Op.HASH_AGG, [sub.node], group_cols=group_cols,
                            aggs=aggs)
            node.est_rows = groups
            node.est_row_width = out_width
            return _SubPlan(node, groups, out_width, group_cols[0], sub.tables)
        sort = PlanNode(Op.SORT, [sub.node], keys=group_cols)
        sort.est_rows = sub.est
        sort.est_row_width = sub.width
        node = PlanNode(Op.STREAM_AGG, [sort], group_cols=group_cols, aggs=aggs)
        node.est_rows = groups
        node.est_row_width = out_width
        return _SubPlan(node, groups, out_width, group_cols[0], sub.tables)

    def _order_and_top(self, query: QuerySpec, sub: _SubPlan) -> _SubPlan:
        if query.order_by:
            already = (len(query.order_by) == 1
                       and sub.order == query.order_by[0])
            if not already:
                sort = PlanNode(Op.SORT, [sub.node], keys=list(query.order_by))
                sort.est_rows = sub.est
                sort.est_row_width = sub.width
                sub = _SubPlan(sort, sub.est, sub.width, query.order_by[0],
                               sub.tables)
        if query.top is not None:
            top = PlanNode(Op.TOP, [sub.node], k=query.top)
            top.est_rows = min(float(query.top), sub.est)
            top.est_row_width = sub.width
            sub = _SubPlan(top, top.est_rows, sub.width, sub.order, sub.tables)
        return sub
