"""MART: least-squares gradient boosting of regression trees (paper §4.2).

With the (root) mean-square error as loss function, the negative gradient
at each boosting iteration is simply the residual ``y - F(x)``; each
iteration fits a 30-leaf regression tree to the residuals and adds it,
scaled by the shrinkage factor, to the ensemble — Friedman's gradient
boosting machine [10] with optional stochastic subsampling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.learning.binning import QuantileBinner
from repro.learning.tree import RegressionTree, TreeParams, offset_matrix

#: the paper's training parameters (§6: "M = 200 boosting iterations; each
#: decision tree has 30 leaf nodes")
PAPER_BOOSTING_ITERATIONS = 200
PAPER_MAX_LEAVES = 30


@dataclass
class MARTParams:
    n_trees: int = PAPER_BOOSTING_ITERATIONS
    learning_rate: float = 0.1
    max_leaves: int = PAPER_MAX_LEAVES
    min_samples_leaf: int = 5
    subsample: float = 1.0       # stochastic gradient boosting fraction
    max_bins: int = 64
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be positive")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")


@dataclass
class MARTRegressor:
    """Gradient-boosted regression-tree ensemble."""

    params: MARTParams = field(default_factory=MARTParams)
    binner: QuantileBinner | None = None
    trees: list[RegressionTree] = field(default_factory=list)
    init_: float = 0.0
    fit_seconds_: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return self.binner is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MARTRegressor":
        started = time.perf_counter()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ValueError("X and y disagree on the number of samples")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty training set")
        self.binner = QuantileBinner(self.params.max_bins)
        Xb = self.binner.fit_transform(X)
        n_bins = self.binner.total_bins
        Xb_off = offset_matrix(Xb, n_bins)
        rng = np.random.default_rng(self.params.random_state)
        self.init_ = float(y.mean())
        current = np.full(len(y), self.init_)
        self.trees = []
        tree_params = TreeParams(max_leaves=self.params.max_leaves,
                                 min_samples_leaf=self.params.min_samples_leaf)
        n = len(y)
        for _ in range(self.params.n_trees):
            residual = y - current
            if self.params.subsample < 1.0:
                take = max(int(round(n * self.params.subsample)),
                           2 * self.params.min_samples_leaf)
                take = min(take, n)
                sample = rng.choice(n, size=take, replace=False)
                tree = RegressionTree(tree_params).fit(
                    Xb[sample], residual[sample], n_bins,
                    Xb_off=Xb_off[sample])
            else:
                tree = RegressionTree(tree_params).fit(Xb, residual, n_bins,
                                                       Xb_off=Xb_off)
            current += self.params.learning_rate * tree.predict_binned(Xb)
            self.trees.append(tree)
        self.fit_seconds_ = time.perf_counter() - started
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.binner is None:
            raise RuntimeError("model is not fitted")
        Xb = self.binner.transform(np.asarray(X, dtype=np.float64))
        out = np.full(len(Xb), self.init_)
        for tree in self.trees:
            out += self.params.learning_rate * tree.predict_binned(Xb)
        return out

    def staged_training_error(self, X: np.ndarray, y: np.ndarray,
                              every: int = 10) -> list[tuple[int, float]]:
        """RMSE after every ``every`` trees — used by convergence tests."""
        if self.binner is None:
            raise RuntimeError("model is not fitted")
        Xb = self.binner.transform(np.asarray(X, dtype=np.float64))
        out = np.full(len(Xb), self.init_)
        curve = []
        for m, tree in enumerate(self.trees, start=1):
            out += self.params.learning_rate * tree.predict_binned(Xb)
            if m % every == 0 or m == len(self.trees):
                rmse = float(np.sqrt(np.mean((y - out) ** 2)))
                curve.append((m, rmse))
        return curve
