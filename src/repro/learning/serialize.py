"""JSON (de)serialization for trained models.

A production system trains selection models offline (or continuously, per
§6.4) and ships them to the monitoring component; that requires a stable,
dependency-free on-disk format.  Everything here round-trips through plain
JSON-compatible dicts — no pickle, so models can cross Python versions and
be inspected by hand.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.selection import EstimatorSelector
from repro.learning.binning import QuantileBinner
from repro.learning.mart import MARTParams, MARTRegressor
from repro.learning.tree import RegressionTree, TreeParams

FORMAT_VERSION = 1


def require_format_version(payload: dict[str, Any], expected: int,
                           what: str) -> None:
    """Reject payloads written by an incompatible format version.

    Shared by every on-disk format in the repo (selector models here,
    trace manifests in :mod:`repro.trace.format`): versioned plain-JSON
    envelopes, checked up front so a stale file fails loudly instead of
    deserializing into garbage.
    """
    found = payload.get("format_version")
    if found != expected:
        raise ValueError(
            f"unsupported {what} format version {found!r}; this build "
            f"reads version {expected} — re-record or convert the file")


def tree_to_dict(tree: RegressionTree) -> dict[str, Any]:
    if tree.feature is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "feature": tree.feature.tolist(),
        "threshold_bin": tree.threshold_bin.tolist(),
        "left": tree.left.tolist(),
        "right": tree.right.tolist(),
        "value": tree.value.tolist(),
        "max_leaves": tree.params.max_leaves,
        "min_samples_leaf": tree.params.min_samples_leaf,
    }


def tree_from_dict(payload: dict[str, Any]) -> RegressionTree:
    tree = RegressionTree(TreeParams(
        max_leaves=payload["max_leaves"],
        min_samples_leaf=payload["min_samples_leaf"]))
    tree.feature = np.asarray(payload["feature"], dtype=np.int64)
    tree.threshold_bin = np.asarray(payload["threshold_bin"], dtype=np.int64)
    tree.left = np.asarray(payload["left"], dtype=np.int64)
    tree.right = np.asarray(payload["right"], dtype=np.int64)
    tree.value = np.asarray(payload["value"], dtype=np.float64)
    return tree


def mart_to_dict(model: MARTRegressor) -> dict[str, Any]:
    if model.binner is None or model.binner.edges_ is None:
        raise ValueError("cannot serialize an unfitted MART model")
    params = model.params
    return {
        "format_version": FORMAT_VERSION,
        "params": {
            "n_trees": params.n_trees,
            "learning_rate": params.learning_rate,
            "max_leaves": params.max_leaves,
            "min_samples_leaf": params.min_samples_leaf,
            "subsample": params.subsample,
            "max_bins": params.max_bins,
            "random_state": params.random_state,
        },
        "init": model.init_,
        "bin_edges": [edges.tolist() for edges in model.binner.edges_],
        "trees": [tree_to_dict(tree) for tree in model.trees],
    }


def mart_from_dict(payload: dict[str, Any]) -> MARTRegressor:
    require_format_version(payload, FORMAT_VERSION, "MART model")
    model = MARTRegressor(MARTParams(**payload["params"]))
    binner = QuantileBinner(model.params.max_bins)
    binner.edges_ = [np.asarray(edges, dtype=np.float64)
                     for edges in payload["bin_edges"]]
    model.binner = binner
    model.init_ = float(payload["init"])
    model.trees = [tree_from_dict(t) for t in payload["trees"]]
    return model


def selector_to_dict(selector: EstimatorSelector) -> dict[str, Any]:
    if not selector.is_fitted:
        raise ValueError("cannot serialize an unfitted selector")
    return {
        "format_version": FORMAT_VERSION,
        "estimator_names": list(selector.estimator_names),
        "models": {name: mart_to_dict(model)
                   for name, model in selector.models.items()},
    }


def selector_from_dict(payload: dict[str, Any]) -> EstimatorSelector:
    require_format_version(payload, FORMAT_VERSION, "selector")
    selector = EstimatorSelector(payload["estimator_names"])
    selector.models = {name: mart_from_dict(m)
                       for name, m in payload["models"].items()}
    return selector


def save_selector(selector: EstimatorSelector, path: str | Path) -> Path:
    """Write a trained selector to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(selector_to_dict(selector)))
    return path


def load_selector(path: str | Path) -> EstimatorSelector:
    """Read a selector previously written by :func:`save_selector`."""
    return selector_from_dict(json.loads(Path(path).read_text()))
