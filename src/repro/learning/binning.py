"""Quantile pre-binning of feature matrices (the histogram trick)."""

from __future__ import annotations

import numpy as np

MAX_BINS_LIMIT = 255  # bins are stored as uint8


class QuantileBinner:
    """Maps each feature to at most ``max_bins`` integer bins.

    Bin boundaries are the unique quantiles of the training distribution;
    values are assigned via ``searchsorted`` so that bin *b* holds values in
    ``(edges[b-1], edges[b]]``.  Unseen values clamp into the outermost
    bins, which is the right behaviour for test pipelines whose
    cardinalities exceed anything seen in training.
    """

    def __init__(self, max_bins: int = 64):
        if not 2 <= max_bins <= MAX_BINS_LIMIT:
            raise ValueError(f"max_bins must be in [2, {MAX_BINS_LIMIT}]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    @property
    def is_fitted(self) -> bool:
        return self.edges_ is not None

    def fit(self, X: np.ndarray) -> "QuantileBinner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        edges = []
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            column = X[:, j]
            finite = column[np.isfinite(column)]
            if len(finite) == 0:
                edges.append(np.array([0.0]))
                continue
            cuts = np.unique(np.quantile(finite, quantiles))
            edges.append(cuts)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        n, f = X.shape
        if f != len(self.edges_):
            raise ValueError(f"expected {len(self.edges_)} features, got {f}")
        out = np.empty((n, f), dtype=np.uint8)
        for j, cuts in enumerate(self.edges_):
            column = np.nan_to_num(X[:, j], nan=-np.inf)
            out[:, j] = np.searchsorted(cuts, column, side="left")
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of distinct bins feature ``feature`` can take."""
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        return len(self.edges_[feature]) + 1

    @property
    def total_bins(self) -> int:
        """Uniform bin budget per feature (for histogram allocation)."""
        if self.edges_ is None:
            raise RuntimeError("binner is not fitted")
        return max(len(cuts) + 1 for cuts in self.edges_)
