"""From-scratch MART: Multiple Additive Regression Trees (paper §4.2).

The paper's selection models are MART regressors — Friedman's stochastic
gradient boosting [10] with binary regression trees as the base learner,
least-squares loss, 200 boosting iterations and 30-leaf trees.  No gradient
boosting library is available offline, so this package implements the
algorithm directly:

* :mod:`repro.learning.binning` — quantile pre-binning of features (the
  histogram trick), which is also what lets MART "break the domain of each
  feature arbitrarily" without input normalization — the property §4.2
  credits for MART beating logistic regression / SVMs here;
* :mod:`repro.learning.tree` — best-first regression trees grown to a leaf
  budget with exact histogram split search (and parent-minus-sibling
  histogram subtraction for speed);
* :mod:`repro.learning.mart` — least-squares boosting with shrinkage and
  optional stochastic subsampling.
"""

from repro.learning.binning import QuantileBinner
from repro.learning.linear import RidgeRegressor
from repro.learning.mart import MARTParams, MARTRegressor
from repro.learning.tree import RegressionTree, TreeParams

__all__ = [
    "QuantileBinner",
    "RegressionTree",
    "TreeParams",
    "MARTRegressor",
    "MARTParams",
    "RidgeRegressor",
]
