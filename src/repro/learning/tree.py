"""Best-first regression trees over pre-binned features.

Trees are grown leaf-by-leaf (best gain first) to a fixed leaf budget —
matching the paper's "each decision tree has 30 leaf nodes" — rather than
to a fixed depth.  Split search is exact over the histogram of each
feature; a child's histogram is obtained by subtracting its sibling's from
the parent's, halving the work (the standard histogram-subtraction trick).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


@dataclass
class TreeParams:
    max_leaves: int = 30
    min_samples_leaf: int = 5

    def __post_init__(self) -> None:
        if self.max_leaves < 2:
            raise ValueError("a tree needs at least 2 leaves")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")


def offset_matrix(Xb: np.ndarray, n_bins: int) -> np.ndarray:
    """Pre-add per-feature offsets so histograms are single bincounts.

    Computed once per ensemble fit and shared across all trees/nodes.
    """
    n_features = Xb.shape[1]
    return (Xb.astype(np.int64)
            + np.arange(n_features, dtype=np.int64) * n_bins)


def _histograms(Xb_off: np.ndarray, y: np.ndarray, idx: np.ndarray,
                n_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-feature histograms of counts and target sums for rows ``idx``."""
    n_features = Xb_off.shape[1]
    flat = Xb_off[idx].ravel()
    counts = np.bincount(flat, minlength=n_features * n_bins)
    sums = np.bincount(flat, weights=np.repeat(y[idx], n_features),
                       minlength=n_features * n_bins)
    return (counts.reshape(n_features, n_bins).astype(np.float64),
            sums.reshape(n_features, n_bins))


def _best_split(counts: np.ndarray, sums: np.ndarray,
                min_leaf: int) -> tuple[float, int, int]:
    """Best (gain, feature, bin) over all features; gain < 0 if none valid.

    Gain is the SSE reduction of splitting, computed from sufficient
    statistics: ``sumL²/nL + sumR²/nR - total²/n``.
    """
    total_cnt = counts[0].sum()
    total_sum = sums[0].sum()
    cum_cnt = np.cumsum(counts, axis=1)[:, :-1]
    cum_sum = np.cumsum(sums, axis=1)[:, :-1]
    right_cnt = total_cnt - cum_cnt
    right_sum = total_sum - cum_sum
    valid = (cum_cnt >= min_leaf) & (right_cnt >= min_leaf)
    if not valid.any():
        return -1.0, -1, -1
    base = total_sum * total_sum / max(total_cnt, _EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = (cum_sum ** 2 / np.maximum(cum_cnt, _EPS)
                + right_sum ** 2 / np.maximum(right_cnt, _EPS) - base)
    gain = np.where(valid, gain, -np.inf)
    flat_best = int(np.argmax(gain))
    feature, bin_idx = divmod(flat_best, gain.shape[1])
    return float(gain[feature, bin_idx]), feature, bin_idx


class RegressionTree:
    """A fitted regression tree (see module docstring).

    Nodes are stored in flat arrays; leaves have ``feature == -1``.
    """

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self.feature: np.ndarray | None = None
        self.threshold_bin: np.ndarray | None = None
        self.left: np.ndarray | None = None
        self.right: np.ndarray | None = None
        self.value: np.ndarray | None = None

    @property
    def n_leaves(self) -> int:
        if self.feature is None:
            return 0
        return int(np.sum(self.feature < 0))

    def fit(self, Xb: np.ndarray, y: np.ndarray, n_bins: int,
            Xb_off: np.ndarray | None = None) -> "RegressionTree":
        n = len(y)
        if n == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if Xb_off is None:
            Xb_off = offset_matrix(Xb, n_bins)
        feature, threshold, left, right, value = [], [], [], [], []

        def add_node() -> int:
            feature.append(-1)
            threshold.append(0)
            left.append(-1)
            right.append(-1)
            value.append(0.0)
            return len(feature) - 1

        root_idx = np.arange(n)
        root = add_node()
        value[root] = float(y.mean())
        counts, sums = _histograms(Xb_off, y, root_idx, n_bins)
        heap: list[tuple] = []
        counter = 0  # tie-breaker, keeps heap comparisons away from arrays

        def consider(node: int, idx: np.ndarray, counts: np.ndarray,
                     sums: np.ndarray) -> None:
            nonlocal counter
            gain, feat, bin_idx = _best_split(counts, sums,
                                              self.params.min_samples_leaf)
            if gain > _EPS:
                heapq.heappush(heap, (-gain, counter, node, idx, counts,
                                      sums, feat, bin_idx))
                counter += 1

        consider(root, root_idx, counts, sums)
        n_leaves = 1
        while heap and n_leaves < self.params.max_leaves:
            _, _, node, idx, counts, sums, feat, bin_idx = heapq.heappop(heap)
            mask = Xb[idx, feat] <= bin_idx
            left_idx, right_idx = idx[mask], idx[~mask]
            if len(left_idx) == 0 or len(right_idx) == 0:
                continue  # numerically degenerate; leave as leaf
            feature[node] = feat
            threshold[node] = bin_idx
            lnode, rnode = add_node(), add_node()
            left[node], right[node] = lnode, rnode
            value[lnode] = float(y[left_idx].mean())
            value[rnode] = float(y[right_idx].mean())
            # Histogram subtraction: compute the smaller child, derive the
            # larger one from the parent.
            if len(left_idx) <= len(right_idx):
                lc, ls = _histograms(Xb_off, y, left_idx, n_bins)
                rc, rs = counts - lc, sums - ls
            else:
                rc, rs = _histograms(Xb_off, y, right_idx, n_bins)
                lc, ls = counts - rc, sums - rs
            consider(lnode, left_idx, lc, ls)
            consider(rnode, right_idx, rc, rs)
            n_leaves += 1
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold_bin = np.asarray(threshold, dtype=np.int64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.value = np.asarray(value, dtype=np.float64)
        return self

    def predict_binned(self, Xb: np.ndarray) -> np.ndarray:
        if self.feature is None:
            raise RuntimeError("tree is not fitted")
        n = len(Xb)
        node = np.zeros(n, dtype=np.int64)
        active = self.feature[node] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            cur = node[rows]
            feats = self.feature[cur]
            go_left = Xb[rows, feats] <= self.threshold_bin[cur]
            node[rows] = np.where(go_left, self.left[cur], self.right[cur])
            active[rows] = self.feature[node[rows]] >= 0
        return self.value[node]
