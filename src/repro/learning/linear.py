"""Ridge regression baseline.

The paper reports (§4.2) that MART clearly beat linear/logistic models for
error prediction, crediting MART's insensitivity to feature scaling and its
ability to split feature domains non-linearly.  This baseline exists to
reproduce that comparison (see ``benchmarks/bench_ablations.py``): a
standardized ridge regressor is the strongest linear contender that needs
no tuning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


@dataclass
class RidgeRegressor:
    """Least-squares linear model with L2 regularization and z-scoring."""

    alpha: float = 1.0
    coef_: np.ndarray | None = None
    intercept_: float = 0.0
    mean_: np.ndarray | None = None
    scale_: np.ndarray | None = None
    fit_seconds_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        started = time.perf_counter()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ValueError("X and y disagree on the number of samples")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty training set")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        Z = (X - self.mean_) / self.scale_
        n_features = Z.shape[1]
        gram = Z.T @ Z + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Z.T @ (y - y.mean()))
        self.intercept_ = float(y.mean())
        self.fit_seconds_ = time.perf_counter() - started
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        Z = (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_
        return Z @ self.coef_ + self.intercept_
