"""Execution artifacts: query-level and pipeline-level trajectories.

A :class:`QueryRun` is everything the progress-estimation layer needs about
one executed query: the plan's node metadata, the pipeline decomposition
with activity windows, and the observation matrices (time × node) for the
counters of §3.1.  :meth:`QueryRun.pipeline_run` slices out one pipeline's
view — the granularity at which the paper trains and evaluates estimator
selection ("we report the error on the level of individual pipelines",
§6).

:func:`live_pipeline_run` builds the same :class:`PipelineRun` view from a
*still-executing* query's context — the causal snapshot that the online
monitor and the multi-query progress service score at every observation
tick (a snapshot at time *t* only uses counters up to *t*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plan.nodes import Op

#: Operators whose total output is known exactly when their pipeline starts:
#: base-table scans (cardinality in the catalog) and blocking materializations
#: (row count known once the build finished).
_KNOWN_SOURCE_OPS = frozenset({Op.TABLE_SCAN, Op.INDEX_SCAN})
_MATERIALIZED_OPS = frozenset({Op.SORT, Op.HASH_AGG})


@dataclass(frozen=True)
class NodeInfo:
    """Static per-node metadata carried along with the trajectories."""

    node_id: int
    op: Op
    table: str | None
    est_rows: float
    est_row_width: float
    table_rows: float  # NaN when the node reads no base table
    pid: int
    parent: int  # node_id of the parent, -1 at the root
    is_driver: bool
    is_build_side: bool = False  # True when this node is a hash join's build child
    join_kind: str = "inner"  # join semantics at join nodes ("inner" elsewhere)


@dataclass(frozen=True)
class PipelineInfo:
    """One pipeline: node membership plus its activity window."""

    pid: int
    node_ids: list[int]
    driver_ids: list[int]
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def executed(self) -> bool:
        return np.isfinite(self.t_start) and self.t_end > self.t_start


@dataclass
class QueryRun:
    """Full record of one query execution."""

    query_name: str
    db_name: str
    nodes: list[NodeInfo]
    pipelines: list[PipelineInfo]
    times: np.ndarray          # (T,)
    K: np.ndarray              # (T, n) GetNext calls
    R: np.ndarray              # (T, n) bytes read
    W: np.ndarray              # (T, n) bytes written
    LB: np.ndarray             # (T, n) lower bounds on N_i
    UB: np.ndarray             # (T, n) upper bounds on N_i
    N: np.ndarray              # (n,)  true totals
    total_time: float
    output_rows: int = 0
    spill_events: int = 0
    output: "object | None" = None  # Chunk of result rows when collected
    D: np.ndarray | None = None  # (T, n) per-node done flags at each snapshot

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the recorded trajectories (array members
        only — the dominant term; metadata is O(nodes)).  The sharded
        service's admission control charges a replay session this many
        bytes against its shard's memory budget."""
        total = (self.times.nbytes + self.K.nbytes + self.R.nbytes
                 + self.W.nbytes + self.LB.nbytes + self.UB.nbytes
                 + self.N.nbytes)
        if self.D is not None:
            total += self.D.nbytes
        return total

    # -- persistence (repro.trace) ------------------------------------------

    def to_trace(self, path):
        """Record this run as a single-run trace directory (see
        :mod:`repro.trace`).  Returns the written :class:`~pathlib.Path`."""
        from repro.trace.store import write_trace

        return write_trace(path, [self])

    @staticmethod
    def from_trace(path) -> "QueryRun":
        """Replay a single-run trace written by :meth:`to_trace`."""
        from repro.trace.store import read_trace

        runs, _ = read_trace(path)
        if len(runs) != 1:
            raise ValueError(
                f"expected a single-run trace at {path}, found {len(runs)} "
                f"runs; use repro.trace.read_trace for bundles")
        return runs[0]

    def true_progress(self) -> np.ndarray:
        """Time-based ground-truth progress at each observation."""
        if self.total_time <= 0:
            return np.zeros_like(self.times)
        return np.clip(self.times / self.total_time, 0.0, 1.0)

    def pipeline_run(self, pid: int, min_observations: int = 5) -> "PipelineRun | None":
        """Extract one pipeline's trajectories, or None if too short to score."""
        info = self.pipelines[pid]
        if not info.executed:
            return None
        mask = (self.times >= info.t_start) & (self.times <= info.t_end)
        if int(mask.sum()) < min_observations:
            return None
        cols = np.asarray(info.node_ids)
        node_by_id = {n.node_id: n for n in self.nodes}
        members = [node_by_id[i] for i in info.node_ids]
        local_index = {nid: j for j, nid in enumerate(info.node_ids)}
        parent_local = np.array([
            local_index.get(n.parent, -1) for n in members], dtype=np.int64)
        driver_set = set(info.driver_ids)
        # Bytes the pipeline's output materializes into (Bytes-Processed
        # model): input of a sort or hash build is written as-is; a hash
        # aggregate writes its (smaller) result.
        terminal = members[0]
        parent_info = node_by_id.get(terminal.parent)
        materialized_est = 0.0
        if parent_info is not None:
            if parent_info.op == Op.SORT or terminal.is_build_side:
                materialized_est = terminal.est_rows * terminal.est_row_width
            elif parent_info.op == Op.HASH_AGG:
                materialized_est = parent_info.est_rows * parent_info.est_row_width
        return PipelineRun(
            pid=pid,
            query_name=self.query_name,
            db_name=self.db_name,
            times=self.times[mask],
            t_start=info.t_start,
            t_end=info.t_end,
            K=self.K[np.ix_(mask, cols)],
            R=self.R[np.ix_(mask, cols)],
            W=self.W[np.ix_(mask, cols)],
            LB=self.LB[np.ix_(mask, cols)],
            UB=self.UB[np.ix_(mask, cols)],
            E0=np.array([n.est_rows for n in members]),
            N=self.N[cols],
            widths=np.array([n.est_row_width for n in members]),
            table_rows=np.array([n.table_rows for n in members]),
            ops=[n.op for n in members],
            driver_mask=np.array([n.node_id in driver_set for n in members]),
            parent_local=parent_local,
            node_ids=cols,
            materialized_bytes_est=materialized_est,
        )

    def pipeline_runs(self, min_observations: int = 5) -> list["PipelineRun"]:
        """All scorable pipelines of this run."""
        runs = []
        for info in self.pipelines:
            pr = self.pipeline_run(info.pid, min_observations)
            if pr is not None:
                runs.append(pr)
        return runs


@dataclass
class PipelineRun:
    """One pipeline's view of an execution (see module docstring).

    All matrices are ``(T_p, m)`` where ``T_p`` is the number of
    observations inside the pipeline's activity window and ``m`` the number
    of member nodes, ordered as in the plan's preorder.
    """

    pid: int
    query_name: str
    db_name: str
    times: np.ndarray
    t_start: float
    t_end: float
    K: np.ndarray
    R: np.ndarray
    W: np.ndarray
    LB: np.ndarray
    UB: np.ndarray
    E0: np.ndarray
    N: np.ndarray
    widths: np.ndarray
    table_rows: np.ndarray
    ops: list[Op]
    driver_mask: np.ndarray
    parent_local: np.ndarray
    node_ids: np.ndarray
    materialized_bytes_est: float = 0.0
    _known: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_observations(self) -> int:
        return len(self.times)

    @property
    def n_nodes(self) -> int:
        return len(self.ops)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def true_progress(self) -> np.ndarray:
        """Ground truth: fraction of the pipeline's time window elapsed."""
        return np.clip((self.times - self.t_start) / max(self.duration, 1e-12),
                       0.0, 1.0)

    def known_totals(self) -> np.ndarray:
        """Best per-node totals available at pipeline start.

        Scans have exact cardinalities in the catalog; blocking sources
        (sort / hash aggregate) know their materialized row count; anything
        else falls back to the optimizer estimate ``E0`` (paper §3.4: "in
        many cases the exact sizes of the inputs to the driver nodes of a
        pipeline are known").
        """
        if self._known is not None:
            return self._known
        totals = self.E0.copy()
        for j, op in enumerate(self.ops):
            if op in _KNOWN_SOURCE_OPS and np.isfinite(self.table_rows[j]):
                totals[j] = self.table_rows[j]
            elif op in _MATERIALIZED_OPS:
                totals[j] = self.N[j]
        self._known = totals
        return totals

    def node_mask(self, *ops: Op) -> np.ndarray:
        return np.array([op in ops for op in self.ops])

    def driver_fraction(self) -> np.ndarray:
        """Fraction of the driver-node input consumed at each observation.

        This is the paper's marker quantity for dynamic features: the first
        observation where it crosses x% defines ``t{x}``.
        """
        totals = self.known_totals()
        denom = float(totals[self.driver_mask].sum())
        if denom <= 0:
            return np.zeros(self.n_observations)
        consumed = self.K[:, self.driver_mask].sum(axis=1)
        return np.clip(consumed / denom, 0.0, 1.0)

    def observation_at_driver_fraction(self, x_percent: float) -> int | None:
        """Index of ``t{x}``: first observation with >= x% driver input read."""
        fraction = self.driver_fraction()
        hits = np.flatnonzero(fraction >= x_percent / 100.0)
        return int(hits[0]) if len(hits) else None


def live_pipeline_run(ctx, pipe, query_name: str = "(online)",
                      min_observations: int = 2) -> "PipelineRun | None":
    """Causal :class:`PipelineRun` snapshot of a still-running pipeline.

    ``ctx`` is the live :class:`~repro.engine.executor.ExecContext` (taken
    duck-typed to avoid an import cycle) and ``pipe`` one of its pipelines.
    Unlike :meth:`QueryRun.pipeline_run`, true totals are unknown mid-flight:
    ``N`` holds the best *current* knowledge — exact counters for finished
    nodes, the materialized input count for blocking sources whose build
    completed, and the optimizer estimate ``E0`` otherwise.  Returns ``None``
    while the pipeline has fewer than ``min_observations`` snapshots.
    """
    arrays = ctx.log.as_arrays()
    t_start = float(ctx.pipe_first[pipe.pid])
    mask = arrays["times"] >= t_start
    if int(mask.sum()) < min_observations:
        return None
    cols = np.asarray(pipe.node_ids)
    members = pipe.nodes
    local = {nid: j for j, nid in enumerate(pipe.node_ids)}
    parent_local = np.array([
        local.get(ctx.parents.get(n.node_id, -1), -1) for n in members],
        dtype=np.int64)
    driver_set = set(pipe.driver_ids)
    n_partial = np.array([n.est_rows for n in members])
    for j, node in enumerate(members):
        if ctx.counters.done[node.node_id]:
            n_partial[j] = ctx.counters.K[node.node_id]
        elif node.op in _MATERIALIZED_OPS and node.children:
            child = node.children[0].node_id
            if ctx.counters.done[child]:
                n_partial[j] = ctx.counters.K[child]
    return PipelineRun(
        pid=pipe.pid,
        query_name=query_name,
        db_name=ctx.db.name,
        times=arrays["times"][mask],
        t_start=t_start,
        t_end=float(ctx.clock.now),
        K=arrays["K"][np.ix_(mask, cols)],
        R=arrays["R"][np.ix_(mask, cols)],
        W=arrays["W"][np.ix_(mask, cols)],
        LB=arrays["LB"][np.ix_(mask, cols)],
        UB=arrays["UB"][np.ix_(mask, cols)],
        E0=np.array([n.est_rows for n in members]),
        N=n_partial,
        widths=np.array([n.est_row_width for n in members]),
        table_rows=np.array([
            float(ctx.db.table(n.table).n_rows) if n.table else np.nan
            for n in members]),
        ops=[n.op for n in members],
        driver_mask=np.array([n.node_id in driver_set for n in members]),
        parent_local=parent_local,
        node_ids=cols,
    )
