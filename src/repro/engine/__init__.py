"""Batch-vectorized Volcano execution engine with a simulated clock.

This package is the reproduction's stand-in for the instrumented SQL Server
engine the paper measures.  It executes physical plans over columnar NumPy
tables for real (every join match, filter pass and aggregate group is
computed from the data), while *time* comes from a cost model instead of a
wall clock, which makes the "true progress" ground truth deterministic and
laptop-friendly.

The engine exposes exactly the paper's §3.1 counters, observed at regular
points of (simulated) time:

* ``K_i``  — GetNext calls issued at node *i* so far,
* ``N_i``  — total GetNext calls at node *i* (known only at the end),
* ``E_i``  — optimizer estimate of ``N_i`` (on the plan; refined by
  estimators),
* ``LB_i`` / ``UB_i`` — absolute bounds on ``N_i`` maintained online,
* ``R_i`` / ``W_i``  — bytes logically read/written at node *i*.

Spills (hash join, hash aggregate, sort) are modelled as additional
GetNext calls plus read/write bytes at the spilling node, following the
paper's convention (§3.1, counter (1)).
"""

from repro.engine.chunk import Chunk
from repro.engine.clock import CostModel, SimClock
from repro.engine.executor import ExecutionHandle, ExecutorConfig, QueryExecutor
from repro.engine.memory import MemoryManager
from repro.engine.run import PipelineRun, QueryRun, live_pipeline_run

__all__ = [
    "Chunk",
    "CostModel",
    "SimClock",
    "MemoryManager",
    "QueryExecutor",
    "ExecutionHandle",
    "ExecutorConfig",
    "QueryRun",
    "PipelineRun",
    "live_pipeline_run",
]
