"""Batch Volcano operators.

Every operator is a pull-based iterator over :class:`~repro.engine.chunk.Chunk`
batches.  Operators do three things on every batch: produce output rows
(computed for real from the data), *charge* the simulated clock through the
execution context (which also advances the counters ``K/R/W`` and may take
an observation snapshot), and mark themselves done when exhausted.

Conventions that matter to progress estimation:

* ``K_i`` counts rows *produced* by node *i* — the GetNext calls of §3.1.
* Blocking work (hash build, sort build, hash-aggregate build) is charged
  with the pipeline id of the *input* pipeline, so pipeline activity
  windows match the paper's pipeline semantics.
* Spilled rows are charged as additional GetNext calls at the spilling
  node: once when written, once when re-read (§3.1, counter (1)).
* The inner side of a nested-loop join implements a ``probe`` interface
  instead of free-running iteration; its nodes still count GetNext calls.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.table import Table, _expand_ranges
from repro.engine.chunk import Chunk
from repro.plan.nodes import Op, PlanNode
from repro.query.logical import NULL_FLOAT, NULL_INT
from repro.query.predicates import evaluate_all


class BatchIterator:
    """Base class: wraps ``_next`` with exhaustion/done bookkeeping."""

    def __init__(self, node: PlanNode, ctx):
        self.node = node
        self.ctx = ctx
        self._exhausted = False

    def open(self) -> None:
        """Prepare for iteration (blocking operators do their build here)."""

    def next_chunk(self) -> Chunk | None:
        if self._exhausted:
            return None
        chunk = self._next()
        if chunk is None:
            self._exhausted = True
            self.ctx.mark_done(self.node)
        return chunk

    def _next(self) -> Chunk | None:
        raise NotImplementedError

    def close(self) -> None:
        """Mark this subtree exhausted (early termination by TOP)."""
        self._exhausted = True


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

class TableScanIterator(BatchIterator):
    """Sequential scan of a base table (heap or clustered order)."""

    def open(self) -> None:
        self.table: Table = self.ctx.db.table(self.node.params["table"])
        self._pos = 0

    def _next(self) -> Chunk | None:
        if self._pos >= self.table.n_rows:
            return None
        stop = min(self._pos + self.ctx.batch_size, self.table.n_rows)
        chunk = Chunk({name: arr[self._pos:stop]
                       for name, arr in self.table.data.items()})
        self._pos = stop
        self.ctx.charge(self.node, rows=len(chunk),
                        r_bytes=len(chunk) * self.table.row_width)
        return chunk


class IndexScanIterator(TableScanIterator):
    """Ordered scan along the clustered index (data is stored sorted)."""


class IndexSeekSourceIterator(BatchIterator):
    """Range/equality seek used as a free-standing tuple source.

    ``params``: ``table``, ``column``, ``low``, ``high`` (inclusive range).
    """

    def open(self) -> None:
        self.table = self.ctx.db.table(self.node.params["table"])
        index = self.table.seek_index(self.node.params["column"])
        low, high = self.node.params["low"], self.node.params["high"]
        self._positions = index.lookup_range(low, high)
        self._pos = 0
        self.ctx.charge(self.node, rows=0,
                        extra_seconds=self.ctx.cost.seek_probe_seconds)

    def _next(self) -> Chunk | None:
        if self._pos >= len(self._positions):
            return None
        stop = min(self._pos + self.ctx.batch_size, len(self._positions))
        take = self._positions[self._pos:stop]
        chunk = Chunk({name: arr[take] for name, arr in self.table.data.items()})
        self._pos = stop
        r_bytes = len(chunk) * self.table.row_width
        penalty_seconds = (r_bytes * (self.ctx.cost.seek_read_penalty - 1.0)
                           * self.ctx.cost.seconds_per_byte_read)
        self.ctx.charge(self.node, rows=len(chunk), r_bytes=r_bytes,
                        extra_seconds=penalty_seconds)
        return chunk


# ---------------------------------------------------------------------------
# streaming unary operators
# ---------------------------------------------------------------------------

class FilterIterator(BatchIterator):
    """Residual predicate application.  ``params``: ``predicates``."""

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        self.predicates = self.node.params["predicates"]

    def _next(self) -> Chunk | None:
        chunk = self.child.next_chunk()
        if chunk is None:
            return None
        if len(chunk) == 0:
            return chunk
        mask = evaluate_all(self.predicates, chunk.data)
        out = chunk.select(mask)
        self.ctx.charge(self.node, rows=len(out), cpu_rows=len(chunk))
        return out

    def close(self) -> None:
        super().close()
        self.child.close()


class TopIterator(BatchIterator):
    """Row limit with early termination.  ``params``: ``k``."""

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        self._emitted = 0
        self._k = int(self.node.params["k"])

    def _next(self) -> Chunk | None:
        if self._emitted >= self._k:
            self.child.close()
            return None
        chunk = self.child.next_chunk()
        if chunk is None:
            return None
        remaining = self._k - self._emitted
        if len(chunk) > remaining:
            chunk = chunk.slice(0, remaining)
        self._emitted += len(chunk)
        self.ctx.charge(self.node, rows=len(chunk))
        return chunk

    def close(self) -> None:
        super().close()
        self.child.close()


# ---------------------------------------------------------------------------
# sorts
# ---------------------------------------------------------------------------

def _sort_order(chunk: Chunk, keys: list[str]) -> np.ndarray:
    arrays = [chunk.column(k) for k in reversed(keys)]
    return np.lexsort(arrays)


class SortIterator(BatchIterator):
    """Fully blocking sort; spills when the input exceeds the grant.

    ``params``: ``keys`` (sort columns, major first).
    """

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        child_pid = self.ctx.pipeline_of(self.child.node)
        chunks = []
        total = 0
        while (chunk := self.child.next_chunk()) is not None:
            if len(chunk):
                chunks.append(chunk)
                total += len(chunk)
        buffered = Chunk.concat(chunks)
        width = self.child.node.est_row_width
        spill = self.ctx.memory.request(total, width)
        if spill.spilled:
            # Run generation: spilled rows written now, re-read while merging.
            # The extra GetNext calls and bytes surface at the build
            # pipeline's terminal node (the sort's input), which is where
            # the Bytes-Processed model counts segment-output bytes.
            self.ctx.charge(self.child.node, rows=spill.spilled_rows,
                            w_bytes=spill.spilled_bytes, pid=child_pid)
            self.ctx.charge(self.child.node, rows=spill.spilled_rows,
                            r_bytes=spill.spilled_bytes, pid=child_pid)
        if total:
            order = _sort_order(buffered, self.node.params["keys"])
            self._sorted = buffered.take(order)
        else:
            self._sorted = buffered
        self.ctx.charge(self.node, rows=0, pid=child_pid,
                        extra_seconds=self.ctx.cost.sort_cpu_seconds(total, total))
        # Materialization write (the sort output buffer).
        self.ctx.charge(self.child.node, rows=0, pid=child_pid,
                        w_bytes=total * width)
        self._pos = 0

    def _next(self) -> Chunk | None:
        if self._pos >= len(self._sorted):
            return None
        stop = min(self._pos + self.ctx.batch_size, len(self._sorted))
        chunk = self._sorted.slice(self._pos, stop)
        self._pos = stop
        self.ctx.charge(self.node, rows=len(chunk))
        return chunk

    def close(self) -> None:
        super().close()
        self.child.close()


class BatchSortIterator(BatchIterator):
    """Partial (batch-wise) sort used below nested iterations (§5.1).

    Consumes a batch of the outer input, sorts it on the join key to
    localize inner references, then emits it; the batch size may grow
    geometrically during execution, as in SQL Server's dynamic batch sizes
    (paper §5.1, citing [9] §8.3).

    ``params``: ``keys``, ``initial_batch``, ``growth``, ``max_batch``.
    """

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        self._target = int(self.node.params.get("initial_batch", 4096))
        self._growth = float(self.node.params.get("growth", 1.0))
        self._max_batch = int(self.node.params.get("max_batch", 1 << 20))
        self._buffer: Chunk | None = None
        self._pos = 0
        self._child_done = False

    def _refill(self) -> bool:
        """Accumulate and sort the next batch; False when input exhausted."""
        if self._child_done:
            return False
        chunks: list[Chunk] = []
        total = 0
        while total < self._target:
            chunk = self.child.next_chunk()
            if chunk is None:
                self._child_done = True
                break
            if len(chunk):
                chunks.append(chunk)
                total += len(chunk)
        if total == 0:
            return False
        batch = Chunk.concat(chunks)
        order = _sort_order(batch, self.node.params["keys"])
        self._buffer = batch.take(order)
        self._pos = 0
        self.ctx.charge(self.node, rows=0,
                        extra_seconds=self.ctx.cost.sort_cpu_seconds(total, total))
        self._target = min(int(self._target * self._growth), self._max_batch)
        return True

    def _next(self) -> Chunk | None:
        if self._buffer is None or self._pos >= len(self._buffer):
            if not self._refill():
                return None
        stop = min(self._pos + self.ctx.batch_size, len(self._buffer))
        chunk = self._buffer.slice(self._pos, stop)
        self._pos = stop
        self.ctx.charge(self.node, rows=len(chunk))
        return chunk

    def close(self) -> None:
        super().close()
        self.child.close()


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

class _SortedMatcher:
    """Join matching against a sorted key column (shared by hash/merge/seek)."""

    def __init__(self, keys: np.ndarray, presorted: bool = False):
        if presorted:
            self.order = None
            self.sorted_keys = keys
        else:
            self.order = np.argsort(keys, kind="stable")
            self.sorted_keys = keys[self.order]

    def match_with_counts(
            self, probe: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`match`, plus the per-probe-row partner counts."""
        lo = np.searchsorted(self.sorted_keys, probe, side="left")
        hi = np.searchsorted(self.sorted_keys, probe, side="right")
        counts = hi - lo
        pos = _expand_ranges(lo, counts)
        if self.order is not None:
            pos = self.order[pos]
        probe_idx = np.repeat(np.arange(len(probe)), counts)
        return pos, probe_idx, counts

    def match(self, probe: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (positions-into-original, probe-row-indices) of all matches."""
        pos, probe_idx, _ = self.match_with_counts(probe)
        return pos, probe_idx

    def counts(self, probe: np.ndarray) -> np.ndarray:
        """Partner count per probe row (all a semi/anti join needs)."""
        lo = np.searchsorted(self.sorted_keys, probe, side="left")
        hi = np.searchsorted(self.sorted_keys, probe, side="right")
        return hi - lo


def _source_columns(node: PlanNode, ctx) -> dict[str, np.dtype]:
    """Column name -> dtype for the base tables feeding a plan subtree.

    Used to NULL-pad a join's non-preserved side when it materialized to
    zero rows (``Chunk.concat([])`` cannot preserve column names).
    """
    out: dict[str, np.dtype] = {}
    for sub in node.walk():
        table = sub.params.get("table")
        if table is not None:
            for name, arr in ctx.db.table(table).data.items():
                out.setdefault(name, arr.dtype)
    return out


def _null_chunk(n: int, columns: dict[str, np.dtype]) -> Chunk:
    """``n`` rows of NULL sentinels with the given column layout."""
    data: dict[str, np.ndarray] = {}
    for name, dtype in columns.items():
        if np.issubdtype(dtype, np.floating):
            data[name] = np.full(n, NULL_FLOAT, dtype=np.float64)
        else:
            data[name] = np.full(n, NULL_INT, dtype=np.int64)
    return Chunk(data)


def _left_outer_combine(probe_chunk: Chunk, probe_idx: np.ndarray,
                        matched_rows: Chunk, counts: np.ndarray,
                        pad_columns: dict[str, np.dtype]) -> Chunk:
    """Matched pairs plus NULL-padded unmatched probe rows, in probe order."""
    matched = probe_chunk.take(probe_idx).merge(matched_rows)
    unmatched = np.flatnonzero(counts == 0)
    if len(unmatched) == 0:
        return matched
    padded = probe_chunk.take(unmatched).merge(
        _null_chunk(len(unmatched), pad_columns))
    combined = Chunk.concat([matched, padded])
    order = np.argsort(np.concatenate([probe_idx, unmatched]), kind="stable")
    return combined.take(order)


class HashJoinIterator(BatchIterator):
    """Hash join: blocking build on ``children[1]``, streaming probe.

    ``params``: ``probe_key`` (outer/probe column), ``build_key``, and
    optionally ``join_kind`` (``inner``/``left``/``semi``/``anti``; the
    probe side is the preserved side for the non-inner kinds).
    """

    def __init__(self, node: PlanNode, ctx, probe_child: BatchIterator,
                 build_child: BatchIterator):
        super().__init__(node, ctx)
        self.probe_child = probe_child
        self.build_child = build_child

    def open(self) -> None:
        self.build_child.open()
        build_pid = self.ctx.pipeline_of(self.build_child.node)
        chunks = []
        while (chunk := self.build_child.next_chunk()) is not None:
            if len(chunk):
                chunks.append(chunk)
                # hash-insert cost for the batch
                self.ctx.charge(self.node, rows=0, cpu_rows=len(chunk),
                                pid=build_pid)
        self._build = Chunk.concat(chunks)
        n_build = len(self._build)
        width = self.build_child.node.est_row_width
        # Hash-table materialization: segment-output bytes of the build
        # pipeline, counted at its terminal node.
        self.ctx.charge(self.build_child.node, rows=0, pid=build_pid,
                        w_bytes=n_build * width)
        spill = self.ctx.memory.request(n_build, width)
        self._pending_spill_read = 0.0
        self._pending_spill_rows = 0
        if spill.spilled:
            self.ctx.charge(self.build_child.node, rows=spill.spilled_rows,
                            w_bytes=spill.spilled_bytes, pid=build_pid)
            self._pending_spill_read = spill.spilled_bytes
            self._pending_spill_rows = spill.spilled_rows
        if n_build:
            self._matcher = _SortedMatcher(self._build.column(
                self.node.params["build_key"]))
        else:
            self._matcher = None
        self._kind = self.node.params.get("join_kind", "inner")
        self._pad_cols: dict[str, np.dtype] | None = None
        self.probe_child.open()
        self._started_probe = False

    def _pad_columns(self) -> dict[str, np.dtype]:
        if self._pad_cols is None:
            if self._build.columns:
                self._pad_cols = {c: self._build.column(c).dtype
                                  for c in self._build.columns}
            else:
                self._pad_cols = _source_columns(self.build_child.node,
                                                 self.ctx)
        return self._pad_cols

    def _next(self) -> Chunk | None:
        if not self._started_probe:
            self._started_probe = True
            if self._pending_spill_rows:
                # Re-read spilled partitions at probe start.
                self.ctx.charge(self.node, rows=self._pending_spill_rows,
                                r_bytes=self._pending_spill_read)
        chunk = self.probe_child.next_chunk()
        if chunk is None:
            return None
        kind = self._kind
        if len(chunk) == 0:
            self.ctx.charge(self.node, rows=0, cpu_rows=0)
            if kind in ("semi", "anti"):
                return chunk
            return Chunk.empty(chunk.columns + self._build.columns)
        if self._matcher is None:
            # Empty build side: inner and semi emit nothing; anti keeps
            # every probe row; left pads every probe row with NULLs.
            if kind == "anti":
                out = chunk
            elif kind == "left":
                out = chunk.merge(_null_chunk(len(chunk), self._pad_columns()))
            else:
                self.ctx.charge(self.node, rows=0, cpu_rows=len(chunk))
                return Chunk.empty(chunk.columns + self._build.columns)
            self.ctx.charge(self.node, rows=len(out),
                            cpu_rows=len(chunk) + len(out))
            return out
        probe_keys = chunk.column(self.node.params["probe_key"])
        if kind == "inner":
            pos, probe_idx = self._matcher.match(probe_keys)
            out = chunk.take(probe_idx).merge(self._build.take(pos))
        elif kind == "left":
            pos, probe_idx, counts = self._matcher.match_with_counts(
                probe_keys)
            out = _left_outer_combine(chunk, probe_idx,
                                      self._build.take(pos), counts,
                                      self._pad_columns())
        else:  # semi / anti: emit each probe row at most once, probe cols only
            counts = self._matcher.counts(probe_keys)
            mask = counts > 0 if kind == "semi" else counts == 0
            out = chunk.select(mask)
        self.ctx.charge(self.node, rows=len(out), cpu_rows=len(chunk) + len(out))
        return out

    def close(self) -> None:
        super().close()
        self.probe_child.close()
        self.build_child.close()


class MergeJoinIterator(BatchIterator):
    """Merge join over two key-ordered inputs (both sides stream).

    ``params``: ``outer_key``, ``inner_key``, and optionally ``join_kind``
    (``inner`` or ``left``; the outer side is the preserved side).  Both
    children must deliver rows in non-decreasing key order (guaranteed by
    the planner: clustered index scans or explicit sorts).
    """

    def __init__(self, node: PlanNode, ctx, outer: BatchIterator,
                 inner: BatchIterator):
        super().__init__(node, ctx)
        self.outer_child = outer
        self.inner_child = inner

    def open(self) -> None:
        self.outer_child.open()
        self.inner_child.open()
        self._buffer: Chunk | None = None
        self._inner_done = False
        self._kind = self.node.params.get("join_kind", "inner")
        if self._kind not in ("inner", "left"):
            raise ValueError(f"merge join does not support join kind "
                             f"{self._kind!r}")
        self._pad_cols: dict[str, np.dtype] | None = None

    def _pad_columns(self) -> dict[str, np.dtype]:
        if self._pad_cols is None:
            if self._buffer is not None and self._buffer.columns:
                self._pad_cols = {c: self._buffer.column(c).dtype
                                  for c in self._buffer.columns}
            else:
                self._pad_cols = _source_columns(self.inner_child.node,
                                                 self.ctx)
        return self._pad_cols

    def _extend_buffer(self, up_to_key) -> None:
        """Pull inner chunks until the buffer covers keys <= up_to_key."""
        key = self.node.params["inner_key"]
        while not self._inner_done:
            if self._buffer is not None and len(self._buffer) > 0:
                if self._buffer.column(key)[-1] > up_to_key:
                    break
            chunk = self.inner_child.next_chunk()
            if chunk is None:
                self._inner_done = True
                break
            if len(chunk) == 0:
                continue
            if self._buffer is None or len(self._buffer) == 0:
                self._buffer = chunk
            else:
                self._buffer = Chunk.concat([self._buffer, chunk])

    def _next(self) -> Chunk | None:
        outer_chunk = self.outer_child.next_chunk()
        if outer_chunk is None:
            # Drain the inner side so its counters complete.
            while not self._inner_done:
                if self.inner_child.next_chunk() is None:
                    self._inner_done = True
            return None
        if len(outer_chunk) == 0:
            return outer_chunk
        okey = self.node.params["outer_key"]
        outer_keys = outer_chunk.column(okey)
        self._extend_buffer(outer_keys[-1])
        if self._buffer is None or len(self._buffer) == 0:
            if self._kind == "left":
                out = outer_chunk.merge(
                    _null_chunk(len(outer_chunk), self._pad_columns()))
                self.ctx.charge(self.node, rows=len(out),
                                cpu_rows=len(outer_chunk) + len(out))
                return out
            self.ctx.charge(self.node, rows=0, cpu_rows=len(outer_chunk))
            return Chunk.empty(outer_chunk.columns)
        inner_keys = self._buffer.column(self.node.params["inner_key"])
        matcher = _SortedMatcher(inner_keys, presorted=True)
        if self._kind == "left":
            pos, probe_idx, counts = matcher.match_with_counts(outer_keys)
            out = _left_outer_combine(outer_chunk, probe_idx,
                                      self._buffer.take(pos), counts,
                                      self._pad_columns())
        else:
            pos, probe_idx = matcher.match(outer_keys)
            out = outer_chunk.take(probe_idx).merge(self._buffer.take(pos))
        # Trim buffered inner rows that can no longer match (keys strictly
        # below the largest outer key seen; ties kept for the next chunk).
        keep = inner_keys >= outer_keys[-1]
        self._buffer = self._buffer.select(keep)
        self.ctx.charge(self.node, rows=len(out),
                        cpu_rows=len(outer_chunk) + len(out))
        return out

    def close(self) -> None:
        super().close()
        self.outer_child.close()
        self.inner_child.close()


# ---------------------------------------------------------------------------
# nested-loop join and its probe-side operators
# ---------------------------------------------------------------------------

class ProbeSide:
    """Inner side of a nested-loop join: answers batched key probes."""

    def open(self) -> None:
        raise NotImplementedError

    def probe(self, keys: np.ndarray) -> tuple[Chunk, np.ndarray]:
        """Rows matching each probe key, plus their probe-row indices."""
        raise NotImplementedError


class IndexSeekProbe(ProbeSide):
    """Index seek on the inner table.  ``params``: ``table``, ``column``."""

    def __init__(self, node: PlanNode, ctx):
        self.node = node
        self.ctx = ctx

    def open(self) -> None:
        self.table = self.ctx.db.table(self.node.params["table"])
        self.index = self.table.seek_index(self.node.params["column"])
        self._locality_key = None

    def probe(self, keys: np.ndarray) -> tuple[Chunk, np.ndarray]:
        positions, counts = self.index.lookup_many(keys)
        chunk = Chunk({name: arr[positions]
                       for name, arr in self.table.data.items()})
        probe_idx = np.repeat(np.arange(len(keys)), counts)
        # Sorted (batch-sorted) probe keys hit warm pages: distinct keys
        # dominate I/O, duplicates and near-duplicates are cache hits.
        sorted_probes = bool(len(keys)) and bool(np.all(np.diff(keys) >= 0))
        distinct = len(np.unique(keys)) if len(keys) else 0
        io_rows = distinct if sorted_probes else len(chunk)
        r_bytes = io_rows * self.table.row_width
        penalty_seconds = (r_bytes * (self.ctx.cost.seek_read_penalty - 1.0)
                           * self.ctx.cost.seconds_per_byte_read)
        self.ctx.charge(
            self.node, rows=len(chunk), r_bytes=r_bytes,
            extra_seconds=(self.ctx.cost.seek_probe_seconds * len(keys)
                           + penalty_seconds))
        return chunk, probe_idx


class FilterProbe(ProbeSide):
    """Residual filter on the inner side of a nested-loop join."""

    def __init__(self, node: PlanNode, ctx, child: ProbeSide):
        self.node = node
        self.ctx = ctx
        self.child = child

    def open(self) -> None:
        self.child.open()
        self.predicates = self.node.params["predicates"]

    def probe(self, keys: np.ndarray) -> tuple[Chunk, np.ndarray]:
        chunk, probe_idx = self.child.probe(keys)
        if len(chunk) == 0:
            self.ctx.charge(self.node, rows=0)
            return chunk, probe_idx
        mask = evaluate_all(self.predicates, chunk.data)
        out = chunk.select(mask)
        self.ctx.charge(self.node, rows=len(out), cpu_rows=len(chunk))
        return out, probe_idx[mask]


class NestedLoopJoinIterator(BatchIterator):
    """Index nested-loop join.  ``params``: ``outer_key``."""

    def __init__(self, node: PlanNode, ctx, outer: BatchIterator,
                 probe_side: ProbeSide):
        super().__init__(node, ctx)
        self.outer_child = outer
        self.probe_side = probe_side

    def open(self) -> None:
        self.outer_child.open()
        self.probe_side.open()

    def _next(self) -> Chunk | None:
        outer_chunk = self.outer_child.next_chunk()
        if outer_chunk is None:
            return None
        if len(outer_chunk) == 0:
            return outer_chunk
        keys = outer_chunk.column(self.node.params["outer_key"])
        inner_chunk, probe_idx = self.probe_side.probe(keys)
        out = outer_chunk.take(probe_idx).merge(inner_chunk)
        self.ctx.charge(self.node, rows=len(out),
                        cpu_rows=len(outer_chunk) + len(out))
        return out

    def close(self) -> None:
        super().close()
        self.outer_child.close()


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _group_codes(chunk: Chunk, group_cols: list[str]) -> np.ndarray:
    """Dense integer codes identifying each row's group."""
    codes = np.zeros(len(chunk), dtype=np.int64)
    for col in group_cols:
        uniq, inverse = np.unique(chunk.column(col), return_inverse=True)
        codes = codes * (len(uniq) + 1) + inverse
    return codes


def _reduce_groups(chunk: Chunk, group_cols: list[str], aggs) -> Chunk:
    """Aggregate a chunk whose rows are already *grouped contiguously*."""
    n = len(chunk)
    if group_cols:
        codes = _group_codes(chunk, group_cols)
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = codes[1:] != codes[:-1]
        starts = np.flatnonzero(boundary)
    else:
        starts = np.array([0]) if n else np.empty(0, dtype=np.int64)
    ends = np.append(starts[1:], n)
    out: dict[str, np.ndarray] = {}
    for col in group_cols:
        out[col] = chunk.column(col)[starts]
    counts = (ends - starts).astype(np.float64)
    for agg in aggs:
        name = agg.output_name
        if agg.func == "count":
            out[name] = counts.copy()
            continue
        values = chunk.column(agg.column).astype(np.float64)
        if agg.func == "sum":
            out[name] = np.add.reduceat(values, starts) if n else np.empty(0)
        elif agg.func == "avg":
            sums = np.add.reduceat(values, starts) if n else np.empty(0)
            out[name] = sums / np.maximum(counts, 1.0)
        elif agg.func == "min":
            out[name] = np.minimum.reduceat(values, starts) if n else np.empty(0)
        elif agg.func == "max":
            out[name] = np.maximum.reduceat(values, starts) if n else np.empty(0)
    return Chunk(out)


class HashAggIterator(BatchIterator):
    """Blocking hash aggregation.  ``params``: ``group_cols``, ``aggs``."""

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        child_pid = self.ctx.pipeline_of(self.child.node)
        chunks = []
        while (chunk := self.child.next_chunk()) is not None:
            if len(chunk):
                chunks.append(chunk)
                self.ctx.charge(self.node, rows=0, cpu_rows=len(chunk),
                                pid=child_pid)
        buffered = Chunk.concat(chunks)
        group_cols = self.node.params["group_cols"]
        if len(buffered) and group_cols:
            codes = _group_codes(buffered, group_cols)
            order = np.argsort(codes, kind="stable")
            buffered = buffered.take(order)
        self._result = _reduce_groups(buffered, group_cols,
                                      self.node.params["aggs"]) \
            if len(buffered) else Chunk({})
        spill = self.ctx.memory.request(len(buffered),
                                        self.child.node.est_row_width)
        if spill.spilled:
            self.ctx.charge(self.child.node, rows=spill.spilled_rows,
                            w_bytes=spill.spilled_bytes, pid=child_pid)
            self.ctx.charge(self.child.node, rows=spill.spilled_rows,
                            r_bytes=spill.spilled_bytes, pid=child_pid)
        self.ctx.charge(self.child.node, rows=0, pid=child_pid,
                        w_bytes=len(self._result) * self.node.est_row_width)
        self._pos = 0

    def _next(self) -> Chunk | None:
        if self._pos >= len(self._result):
            return None
        stop = min(self._pos + self.ctx.batch_size, len(self._result))
        chunk = self._result.slice(self._pos, stop)
        self._pos = stop
        self.ctx.charge(self.node, rows=len(chunk))
        return chunk

    def close(self) -> None:
        super().close()
        self.child.close()


class StreamAggIterator(BatchIterator):
    """Streaming aggregation over group-ordered input.

    ``params``: ``group_cols`` (a prefix of the input order; empty for a
    scalar aggregate), ``aggs``.
    """

    def __init__(self, node: PlanNode, ctx, child: BatchIterator):
        super().__init__(node, ctx)
        self.child = child

    def open(self) -> None:
        self.child.open()
        self._carry: Chunk | None = None  # rows of the last (incomplete) group
        self._input_done = False
        self._scalar_emitted = False

    def _next(self) -> Chunk | None:
        group_cols = self.node.params["group_cols"]
        aggs = self.node.params["aggs"]
        if not group_cols:
            return self._next_scalar(aggs)
        while not self._input_done:
            chunk = self.child.next_chunk()
            if chunk is None:
                self._input_done = True
                break
            if len(chunk) == 0:
                continue
            self.ctx.charge(self.node, rows=0, cpu_rows=len(chunk))
            merged = chunk if self._carry is None else Chunk.concat(
                [self._carry, chunk])
            codes = _group_codes(merged, group_cols)
            if codes[0] == codes[-1]:
                self._carry = merged  # whole buffer is one group so far
                continue
            last_start = int(np.flatnonzero(codes != codes[-1])[-1] + 1)
            complete = merged.slice(0, last_start)
            self._carry = merged.slice(last_start, len(merged))
            out = _reduce_groups(complete, group_cols, aggs)
            self.ctx.charge(self.node, rows=len(out))
            return out
        if self._carry is not None and len(self._carry):
            out = _reduce_groups(self._carry, group_cols, aggs)
            self._carry = None
            self.ctx.charge(self.node, rows=len(out))
            return out
        return None

    def _next_scalar(self, aggs) -> Chunk | None:
        """Scalar (ungrouped) aggregate: one output row after full input."""
        if self._scalar_emitted:
            return None
        buffered: list[Chunk] = []
        while (chunk := self.child.next_chunk()) is not None:
            if len(chunk):
                self.ctx.charge(self.node, rows=0, cpu_rows=len(chunk))
                buffered.append(chunk)
        self._scalar_emitted = True
        merged = Chunk.concat(buffered)
        if len(merged) == 0:
            # COUNT over an empty input still yields one row (zero).
            counts = [a for a in aggs if a.func == "count"]
            if not counts:
                return None
            out = Chunk({a.output_name: np.zeros(1) for a in counts})
            self.ctx.charge(self.node, rows=1)
            return out
        out = _reduce_groups(merged, [], aggs)
        self.ctx.charge(self.node, rows=len(out))
        return out

    def close(self) -> None:
        super().close()
        self.child.close()


# ---------------------------------------------------------------------------
# iterator construction
# ---------------------------------------------------------------------------

def build_probe_side(node: PlanNode, ctx) -> ProbeSide:
    if node.op == Op.INDEX_SEEK:
        return IndexSeekProbe(node, ctx)
    if node.op == Op.FILTER:
        return FilterProbe(node, ctx, build_probe_side(node.children[0], ctx))
    raise ValueError(f"unsupported operator {node.op} on NLJ inner side")


def build_iterator(node: PlanNode, ctx) -> BatchIterator:
    """Construct the iterator tree for a physical plan."""
    op = node.op
    if op in (Op.TABLE_SCAN,):
        return TableScanIterator(node, ctx)
    if op == Op.INDEX_SCAN:
        return IndexScanIterator(node, ctx)
    if op == Op.INDEX_SEEK:
        return IndexSeekSourceIterator(node, ctx)
    if op == Op.FILTER:
        return FilterIterator(node, ctx, build_iterator(node.children[0], ctx))
    if op == Op.TOP:
        return TopIterator(node, ctx, build_iterator(node.children[0], ctx))
    if op == Op.SORT:
        return SortIterator(node, ctx, build_iterator(node.children[0], ctx))
    if op == Op.BATCH_SORT:
        return BatchSortIterator(node, ctx, build_iterator(node.children[0], ctx))
    if op == Op.HASH_JOIN:
        return HashJoinIterator(node, ctx,
                                build_iterator(node.children[0], ctx),
                                build_iterator(node.children[1], ctx))
    if op == Op.MERGE_JOIN:
        return MergeJoinIterator(node, ctx,
                                 build_iterator(node.children[0], ctx),
                                 build_iterator(node.children[1], ctx))
    if op == Op.NESTED_LOOP_JOIN:
        return NestedLoopJoinIterator(node, ctx,
                                      build_iterator(node.children[0], ctx),
                                      build_probe_side(node.children[1], ctx))
    if op == Op.HASH_AGG:
        return HashAggIterator(node, ctx, build_iterator(node.children[0], ctx))
    if op == Op.STREAM_AGG:
        return StreamAggIterator(node, ctx, build_iterator(node.children[0], ctx))
    raise ValueError(f"no iterator for operator {op}")
