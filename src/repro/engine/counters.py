"""Per-node counter store and the observation log.

The counter store holds the live values of the paper's §3.1 counters; the
observation log snapshots them at (simulated-)time ticks, yielding the
trajectories ``K_i^t``, ``R_i^t``, ``W_i^t``, ``LB_i^t``, ``UB_i^t`` that
every progress estimator and every dynamic feature is computed from.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import NamedTuple

import numpy as np

#: Cap for upper bounds that are theoretically unbounded (join outputs).
UNBOUNDED = 1.0e15


class LogRow(NamedTuple):
    """One observation's full-width counter snapshot (all plan nodes).

    The arrays are the log's own per-snapshot copies — treat them as
    immutable.  Both the live :class:`ObservationLog` and the replay-side
    log expose this row shape, so the monitor's incremental capture path
    is source-agnostic.
    """

    time: float
    K: np.ndarray
    R: np.ndarray
    W: np.ndarray
    LB: np.ndarray
    UB: np.ndarray
    D: np.ndarray


class CounterStore:
    """Live per-node counters for one query execution."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.K = np.zeros(n_nodes)
        self.R = np.zeros(n_nodes)
        self.W = np.zeros(n_nodes)
        self.done = np.zeros(n_nodes, dtype=bool)
        self.first_activity = np.full(n_nodes, np.nan)
        self.last_activity = np.full(n_nodes, np.nan)

    def record_activity(self, node_id: int, now: float) -> None:
        if np.isnan(self.first_activity[node_id]):
            self.first_activity[node_id] = now
        self.last_activity[node_id] = now


class ObservationLog:
    """Snapshots of the counter store over time.

    Besides the counter trajectories, each snapshot records the per-node
    done flags ``D_i^t`` — they cost one boolean row and make recorded
    traces replayable: a replayed monitor needs to know *when* each node
    finished, which the counters alone do not encode (see
    :mod:`repro.trace.replay`).
    """

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self.times: list[float] = []
        self._K: list[np.ndarray] = []
        self._R: list[np.ndarray] = []
        self._W: list[np.ndarray] = []
        self._LB: list[np.ndarray] = []
        self._UB: list[np.ndarray] = []
        self._D: list[np.ndarray] = []

    def snapshot(self, now: float, counters: CounterStore,
                 lb: np.ndarray, ub: np.ndarray) -> None:
        if counters.n_nodes != self.n_nodes:
            raise ValueError(
                f"counter store tracks {counters.n_nodes} nodes but the "
                f"observation log was sized for {self.n_nodes}")
        lb = np.asarray(lb)
        ub = np.asarray(ub)
        expected = (self.n_nodes,)
        if lb.shape != expected or ub.shape != expected:
            raise ValueError(
                f"bounds must have shape {expected}, got lb {lb.shape} / "
                f"ub {ub.shape}")
        self.times.append(now)
        self._K.append(counters.K.copy())
        self._R.append(counters.R.copy())
        self._W.append(counters.W.copy())
        self._LB.append(lb.copy())
        self._UB.append(ub.copy())
        self._D.append(counters.done.copy())

    def __len__(self) -> int:
        return len(self.times)

    def row(self, i: int) -> LogRow:
        """O(1) access to one recorded snapshot (no materialization)."""
        return LogRow(self.times[i], self._K[i], self._R[i], self._W[i],
                      self._LB[i], self._UB[i], self._D[i])

    def start_index(self, t_start: float) -> int:
        """First snapshot index with ``time >= t_start`` (times ascend)."""
        return bisect_left(self.times, t_start)

    @property
    def last_time(self) -> float:
        return self.times[-1] if self.times else -np.inf

    def as_arrays(self, stop: int | None = None) -> dict[str, np.ndarray]:
        """Materialize the log as dense arrays of shape ``(T, n_nodes)``.

        ``stop`` truncates to the first ``stop`` snapshots — the as-of
        view a deferred consumer needs to reconstruct what the log looked
        like at an earlier observation (rows are append-only, so the
        prefix is exactly the historical log).
        """
        times = self.times if stop is None else self.times[:stop]
        if not times:
            empty = np.empty((0, self.n_nodes))
            return {"times": np.empty(0), "K": empty, "R": empty.copy(),
                    "W": empty.copy(), "LB": empty.copy(), "UB": empty.copy(),
                    "D": np.empty((0, self.n_nodes), dtype=bool)}
        return {
            "times": np.asarray(times),
            "K": np.vstack(self._K[:stop]),
            "R": np.vstack(self._R[:stop]),
            "W": np.vstack(self._W[:stop]),
            "LB": np.vstack(self._LB[:stop]),
            "UB": np.vstack(self._UB[:stop]),
            "D": np.vstack(self._D[:stop]),
        }
