"""The query executor: drives a plan, produces a :class:`QueryRun`.

The executor owns the execution context threaded through all operators: it
advances the simulated clock on every charge, maintains the counter store,
refreshes the online bounds ``LB_i``/``UB_i`` ([6]'s worst-case bounds based
on input sizes and tuples seen so far), and snapshots observations at
regular simulated-time ticks.

Execution is resumable: :meth:`QueryExecutor.begin` returns an
:class:`ExecutionHandle` whose :meth:`~ExecutionHandle.step` advances the
query by one unit of work, so a scheduler can interleave many queries in
time slices (see :mod:`repro.service`).  :meth:`QueryExecutor.execute` is
the synchronous convenience wrapper that steps one handle to completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.catalog.table import Database
from repro.engine.clock import CostModel, SimClock
from repro.engine.counters import CounterStore, ObservationLog, UNBOUNDED
from repro.engine.iterators import build_iterator
from repro.engine.memory import MemoryManager
from repro.engine.run import NodeInfo, PipelineInfo, QueryRun, live_pipeline_run
from repro.plan.nodes import Op, PlanNode
from repro.plan.pipelines import decompose_pipelines, node_to_pipeline


@dataclass
class ExecutorConfig:
    """Knobs of the simulated engine."""

    batch_size: int = 1024
    memory_budget_bytes: float = float(4 << 20)
    target_observations: int = 250
    max_observations: int = 1500
    seed: int = 0
    collect_output: bool = False  # keep result rows on the QueryRun

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.target_observations < 10:
            raise ValueError("need at least 10 observations per query")


class ExecContext:
    """Execution state shared by all operators of one query."""

    def __init__(self, db: Database, plan: PlanNode, config: ExecutorConfig,
                 cost_model: CostModel,
                 on_observation: Callable[["ExecContext"], None] | None = None):
        self.db = db
        self.plan = plan
        self.config = config
        self.cost = cost_model
        self.batch_size = config.batch_size
        self.rng = np.random.default_rng(config.seed)
        self.clock = SimClock(cost_model, self.rng)
        self.memory = MemoryManager(config.memory_budget_bytes)
        self.pipelines = decompose_pipelines(plan)
        self.node_pid = node_to_pipeline(self.pipelines)
        n = plan.n_nodes
        self.counters = CounterStore(n)
        self.log = ObservationLog(n)
        self.on_observation = on_observation
        n_pipes = len(self.pipelines)
        self.pipe_first = np.full(n_pipes, np.nan)
        self.pipe_last = np.full(n_pipes, np.nan)
        self._nodes = list(plan.walk())
        self._bottom_up = list(reversed(self._nodes))
        self.parents: dict[int, int] = {}
        for node in self._nodes:
            for child in node.children:
                self.parents[child.node_id] = node.node_id
        self._table_rows = np.full(n, np.nan)
        for node in self._nodes:
            if node.table is not None:
                self._table_rows[node.node_id] = db.table(node.table).n_rows
        # Probe-side nodes of nested-loop joins, bottom-up, paired with
        # their join's outer child: duplicate probe keys fan a seek out
        # past its table's cardinality, so these nodes get their own
        # bound rule in _compute_bounds.
        self._probe_side: list[tuple[PlanNode, int]] = []
        for node in self._nodes:
            if node.op is Op.NESTED_LOOP_JOIN:
                outer_id = node.children[0].node_id
                chain = list(node.children[1].walk())
                self._probe_side.extend(
                    (inner, outer_id) for inner in reversed(chain))
        self._tick = self._initial_tick()
        self._next_obs = 0.0

    # -- cost bookkeeping --------------------------------------------------

    def charge(self, node: PlanNode, rows: float, *, cpu_rows: float | None = None,
               r_bytes: float = 0.0, w_bytes: float = 0.0,
               extra_seconds: float = 0.0, pid: int | None = None,
               count: bool = True) -> None:
        """Account for a unit of work at ``node``.

        ``rows`` are GetNext calls produced (added to ``K``); ``cpu_rows``
        overrides the row count used for CPU costing (e.g. a filter pays for
        input rows but produces fewer).  ``pid`` attributes the work to a
        pipeline other than the node's own (used by blocking builds).
        """
        i = node.node_id
        cpu_basis = rows if cpu_rows is None else cpu_rows
        seconds = (self.cost.cpu_seconds(node.op, cpu_basis)
                   + r_bytes * self.cost.seconds_per_byte_read
                   + w_bytes * self.cost.seconds_per_byte_written
                   + extra_seconds)
        self.clock.advance(seconds)
        if count and rows:
            self.counters.K[i] += rows
        self.counters.R[i] += r_bytes
        self.counters.W[i] += w_bytes
        now = self.clock.now
        self.counters.record_activity(i, now)
        p = self.node_pid[i] if pid is None else pid
        if np.isnan(self.pipe_first[p]):
            self.pipe_first[p] = now
        self.pipe_last[p] = now
        self.maybe_observe()

    def pipeline_of(self, node: PlanNode) -> int:
        return self.node_pid[node.node_id]

    def live_pipeline_run(self, pipe, query_name: str = "(online)",
                          min_observations: int = 2):
        """Causal snapshot of a running pipeline (see :func:`live_pipeline_run`)."""
        return live_pipeline_run(self, pipe, query_name=query_name,
                                 min_observations=min_observations)

    def mark_done(self, node: PlanNode) -> None:
        self.counters.done[node.node_id] = True

    # -- observations -------------------------------------------------------

    def maybe_observe(self, force: bool = False) -> None:
        if not force and self.clock.now < self._next_obs:
            return
        if len(self.log) >= self.config.max_observations:
            self._tick *= 2.0
            if not force:
                self._next_obs = self.clock.now + self._tick
                return
        lb, ub = self._compute_bounds()
        self.log.snapshot(self.clock.now, self.counters, lb, ub)
        self._next_obs = self.clock.now + self._tick
        if self.on_observation is not None:
            self.on_observation(self)

    def _initial_tick(self) -> float:
        est = 0.0
        for node in self._nodes:
            rows = max(node.est_rows, 1.0)
            est += self.cost.cpu_seconds(node.op, rows)
            if node.op in (Op.TABLE_SCAN, Op.INDEX_SCAN, Op.INDEX_SEEK):
                est += rows * node.est_row_width * self.cost.seconds_per_byte_read
            if node.op == Op.SORT:
                est += self.cost.sort_cpu_seconds(rows, rows)
        est *= self.cost.time_scale
        return max(est / self.config.target_observations, 1e-9)

    def _compute_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Worst-case bounds on ``N_i`` based on input sizes ([6]).

        Upper bounds are derived from *total* input cardinalities (known
        for scans, bounded recursively elsewhere), never from "remaining"
        arithmetic — rows in flight between operators would otherwise make
        the bounds momentarily unsound.  A finished node's total is its
        counter.  Spill-induced GetNext calls are outside the bounds by
        design (they are unpredictable extra work; see the engine docs).
        """
        K = self.counters.K
        done = self.counters.done
        lb = K.copy()
        ub = np.full(self.plan.n_nodes, UNBOUNDED)
        for node in self._bottom_up:
            i = node.node_id
            if done[i]:
                ub[i] = K[i]
                continue
            op = node.op
            if op in (Op.TABLE_SCAN, Op.INDEX_SCAN, Op.INDEX_SEEK):
                ub[i] = self._table_rows[i]
            elif op in (Op.FILTER, Op.BATCH_SORT):
                ub[i] = ub[node.children[0].node_id]
            elif op in (Op.SORT, Op.HASH_AGG):
                # Blocking: once the input finished, the materialized row
                # count (and hence the output total) is known exactly.
                c = node.children[0].node_id
                ub[i] = max(K[i], K[c]) if done[c] else ub[c]
            elif op == Op.STREAM_AGG:
                c = node.children[0].node_id
                if node.params.get("group_cols"):
                    # at most one accumulated group is still pending
                    ub[i] = K[i] + 1.0 if done[c] else ub[c]
                else:
                    ub[i] = 1.0
            elif op == Op.TOP:
                ub[i] = min(float(node.params["k"]),
                            ub[node.children[0].node_id])
            elif op in (Op.HASH_JOIN, Op.MERGE_JOIN, Op.NESTED_LOOP_JOIN):
                outer = ub[node.children[0].node_id]
                if node.params.get("join_kind", "inner") in ("semi", "anti"):
                    # Each probe row is emitted at most once, so the
                    # outer-side bound alone is sound — and much tighter
                    # than the inner-join product.
                    ub[i] = outer
                else:
                    # Inner: at most outer × inner matches.  LEFT OUTER is
                    # covered by the same product: k matched outer rows
                    # yield ≤ k·inner rows and the outer−k unmatched rows
                    # one padded row each, which totals ≤ outer·inner for
                    # inner ≥ 1, and exactly `outer` (the max(·,1) floor)
                    # once an empty inner side is proven.
                    inner = ub[node.children[1].node_id]
                    ub[i] = min(max(outer, 1.0) * max(inner, 1.0), UNBOUNDED)
            else:  # pragma: no cover - defensive
                ub[i] = UNBOUNDED
        # Second pass: nested-loop probe sides.  An inner INDEX_SEEK is
        # driven once per outer row, so its total is bounded by
        # outer-bound × table rows, not by the table alone (duplicate
        # probe keys revisit rows); residual FILTERs inherit.  The outer
        # subtree precedes the inner in preorder, so its bound is final
        # by the time this pass runs.
        for node, outer_id in self._probe_side:
            i = node.node_id
            if done[i]:
                continue
            if node.op is Op.INDEX_SEEK:
                ub[i] = min(max(ub[outer_id], 1.0)
                            * max(self._table_rows[i], 1.0), UNBOUNDED)
            else:  # residual FILTER above the seek
                ub[i] = ub[node.children[0].node_id]
        np.minimum(ub, UNBOUNDED, out=ub)
        np.maximum(ub, lb, out=ub)
        return lb, ub


class ExecutionHandle:
    """Resumable, step-wise execution of one plan.

    Created by :meth:`QueryExecutor.begin`.  Each :meth:`step` performs one
    unit of work — opening the iterator tree (which runs any blocking
    builds) or pulling one output chunk from the root — and returns whether
    work remains.  Interleaving ``step()`` calls across several handles is
    how the multi-query progress service time-slices concurrent queries;
    ``begin()`` + a ``step()`` loop is byte-for-byte equivalent to
    :meth:`QueryExecutor.execute` (observation snapshots, counters and the
    final :class:`QueryRun` are identical).
    """

    def __init__(self, executor: "QueryExecutor", plan: PlanNode,
                 query_name: str):
        if plan.node_id < 0:
            plan.finalize()
        self.plan = plan
        self.query_name = query_name
        self._executor = executor
        self.ctx = ExecContext(executor.db, plan, executor.config,
                               executor.cost_model, executor.on_observation)
        self.ctx.maybe_observe(force=True)  # t=0 snapshot
        self._root = build_iterator(plan, self.ctx)
        self._opened = False
        self._output_rows = 0
        self._collected = [] if executor.config.collect_output else None
        self._run: QueryRun | None = None

    @property
    def done(self) -> bool:
        return self._run is not None

    @property
    def result(self) -> QueryRun:
        if self._run is None:
            raise RuntimeError("execution has not finished; call step() "
                               "until it returns False (or run_to_completion)")
        return self._run

    def step(self) -> bool:
        """Advance execution by one unit of work; True while work remains."""
        if self._run is not None:
            return False
        if not self._opened:
            self._root.open()
            self._opened = True
            return True
        chunk = self._root.next_chunk()
        if chunk is not None:
            self._output_rows += len(chunk)
            if self._collected is not None and len(chunk):
                self._collected.append(chunk)
            return True
        self.ctx.counters.done[:] = True
        self.ctx.maybe_observe(force=True)  # final snapshot
        run = self._executor._assemble(self.ctx, self.plan, self.query_name,
                                       self._output_rows)
        if self._collected is not None:
            from repro.engine.chunk import Chunk
            run.output = Chunk.concat(self._collected)
        self._run = run
        return False

    def run_to_completion(self) -> QueryRun:
        while self.step():
            pass
        return self.result


class QueryExecutor:
    """Executes physical plans over a database, recording trajectories.

    Example
    -------
    >>> executor = QueryExecutor(db)
    >>> run = executor.execute(plan, query_name="q1")
    >>> run.total_time, len(run.pipelines)
    """

    def __init__(self, db: Database, config: ExecutorConfig | None = None,
                 cost_model: CostModel | None = None,
                 on_observation: Callable[[ExecContext], None] | None = None):
        self.db = db
        self.config = config or ExecutorConfig()
        self.cost_model = cost_model or CostModel()
        self.on_observation = on_observation

    def begin(self, plan: PlanNode, query_name: str = "query") -> ExecutionHandle:
        """Start ``plan`` without driving it; the caller steps the handle."""
        return ExecutionHandle(self, plan, query_name)

    def execute(self, plan: PlanNode, query_name: str = "query") -> QueryRun:
        """Run ``plan`` to completion and return the recorded trajectories."""
        return self.begin(plan, query_name).run_to_completion()

    def _assemble(self, ctx: ExecContext, plan: PlanNode, query_name: str,
                  output_rows: int) -> QueryRun:
        parent = {}
        build_side_ids = set()
        for node in plan.walk():
            for child in node.children:
                parent[child.node_id] = node.node_id
            if node.op == Op.HASH_JOIN:
                build_side_ids.add(node.children[1].node_id)
        driver_ids = set()
        for pipe in ctx.pipelines:
            driver_ids.update(pipe.driver_ids)
        nodes = []
        for node in plan.walk():
            i = node.node_id
            nodes.append(NodeInfo(
                node_id=i,
                op=node.op,
                table=node.table,
                est_rows=float(node.est_rows),
                est_row_width=float(node.est_row_width),
                table_rows=float(ctx._table_rows[i]),
                pid=ctx.node_pid[i],
                parent=parent.get(i, -1),
                is_driver=i in driver_ids,
                is_build_side=i in build_side_ids,
                join_kind=node.params.get("join_kind", "inner"),
            ))
        pipeline_infos = []
        for pipe in ctx.pipelines:
            pipeline_infos.append(PipelineInfo(
                pid=pipe.pid,
                node_ids=list(pipe.node_ids),
                driver_ids=list(pipe.driver_ids),
                t_start=float(ctx.pipe_first[pipe.pid]),
                t_end=float(ctx.pipe_last[pipe.pid]),
            ))
        arrays = ctx.log.as_arrays()
        return QueryRun(
            query_name=query_name,
            db_name=self.db.name,
            nodes=nodes,
            pipelines=pipeline_infos,
            times=arrays["times"],
            K=arrays["K"],
            R=arrays["R"],
            W=arrays["W"],
            LB=arrays["LB"],
            UB=arrays["UB"],
            N=ctx.counters.K.copy(),
            total_time=float(ctx.clock.now),
            output_rows=output_rows,
            spill_events=ctx.memory.spill_events,
            D=arrays["D"],
        )
