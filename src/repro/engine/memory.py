"""Memory grants and spill accounting.

Each memory-consuming operator (hash join build, hash aggregate, sort)
requests a grant; whatever does not fit the per-operator budget spills.
Spills matter to progress estimation in two ways, both modelled per the
paper (§3.1): the spilled rows surface as *additional GetNext calls* at the
spilling node (work the optimizer's ``E_i`` never anticipated), and the
spill bytes surface in the read/write counters the Bytes-Processed model
tracks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SpillDecision:
    """Outcome of a memory grant request."""

    requested_bytes: float
    granted_bytes: float
    spilled_bytes: float
    spilled_rows: int

    @property
    def spilled(self) -> bool:
        return self.spilled_rows > 0


class MemoryManager:
    """Fixed per-operator memory budget (workspace grant)."""

    def __init__(self, budget_bytes: float = float(1 << 20)):
        if budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = float(budget_bytes)
        self.total_spilled_bytes = 0.0
        self.spill_events = 0

    def request(self, rows: int, row_width: float) -> SpillDecision:
        """Request memory for ``rows`` rows of ``row_width`` bytes each."""
        requested = rows * row_width
        granted = min(requested, self.budget_bytes)
        spilled_bytes = max(0.0, requested - granted)
        spilled_rows = 0
        if spilled_bytes > 0 and row_width > 0:
            spilled_rows = int(round(spilled_bytes / row_width))
            spilled_rows = min(spilled_rows, rows)
        decision = SpillDecision(
            requested_bytes=requested,
            granted_bytes=granted,
            spilled_bytes=spilled_rows * row_width,
            spilled_rows=spilled_rows,
        )
        if decision.spilled:
            self.total_spilled_bytes += decision.spilled_bytes
            self.spill_events += 1
        return decision
