"""Columnar batches flowing between operators."""

from __future__ import annotations

import numpy as np


class Chunk:
    """A batch of rows stored column-wise.

    All operators exchange ``Chunk``s; an empty chunk is a legal result of a
    selective filter and simply produces no downstream work.
    """

    __slots__ = ("data", "n_rows")

    def __init__(self, data: dict[str, np.ndarray]):
        self.data = data
        self.n_rows = len(next(iter(data.values()))) if data else 0

    def __len__(self) -> int:
        return self.n_rows

    def __contains__(self, column: str) -> bool:
        return column in self.data

    def column(self, name: str) -> np.ndarray:
        return self.data[name]

    @property
    def columns(self) -> list[str]:
        return list(self.data)

    def select(self, mask: np.ndarray) -> "Chunk":
        """Rows where ``mask`` is True."""
        return Chunk({name: arr[mask] for name, arr in self.data.items()})

    def take(self, indices: np.ndarray) -> "Chunk":
        """Gather rows by position (repeats allowed, e.g. join fan-out)."""
        return Chunk({name: arr[indices] for name, arr in self.data.items()})

    def slice(self, start: int, stop: int) -> "Chunk":
        return Chunk({name: arr[start:stop] for name, arr in self.data.items()})

    def merge(self, other: "Chunk") -> "Chunk":
        """Column-wise combination of two equally long chunks (join output)."""
        if other.n_rows != self.n_rows:
            raise ValueError(f"merge length mismatch: {self.n_rows} vs {other.n_rows}")
        overlap = set(self.data) & set(other.data)
        if overlap:
            raise ValueError(f"merge column collision: {sorted(overlap)}")
        combined = dict(self.data)
        combined.update(other.data)
        return Chunk(combined)

    @staticmethod
    def concat(chunks: list["Chunk"]) -> "Chunk":
        """Row-wise concatenation; all chunks must share columns."""
        chunks = [c for c in chunks if c.n_rows > 0]
        if not chunks:
            return Chunk({})
        if len(chunks) == 1:
            return chunks[0]
        names = chunks[0].columns
        return Chunk({
            name: np.concatenate([c.data[name] for c in chunks]) for name in names
        })

    @staticmethod
    def empty(columns: list[str]) -> "Chunk":
        return Chunk({name: np.empty(0, dtype=np.int64) for name in columns})

    def __repr__(self) -> str:
        return f"Chunk({self.n_rows} rows, cols={self.columns})"
