"""Simulated clock and operator cost model.

Progress ground truth in the paper is elapsed wall-clock time; here it is
elapsed *simulated* time.  The cost model deliberately makes GetNext calls
cost different amounts at different operators (a seek's random I/O is far
more expensive than a scan's sequential read, hashing costs more than
streaming, sorts pay an ``n log n`` factor).  This is what keeps the
idealized Total-GetNext model *imperfect* — the paper measures its residual
error at L1 ≈ 0.06 (§6.7) precisely because real per-call costs vary — while
still correlating well with time.

A slowly drifting multiplicative *load factor* (an AR(1) process) models
background system load, which is what makes Luo et al.'s speed-extrapolation
estimator genuinely useful on some queries and misleading on others.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plan.nodes import Op


@dataclass
class CostModel:
    """Per-operator CPU costs (seconds/row) and I/O rates (seconds/byte)."""

    cpu_per_row: dict[Op, float] = field(default_factory=lambda: {
        Op.TABLE_SCAN: 0.80e-6,
        Op.INDEX_SCAN: 0.90e-6,
        Op.INDEX_SEEK: 1.10e-6,
        Op.FILTER: 0.25e-6,
        Op.NESTED_LOOP_JOIN: 0.45e-6,
        Op.HASH_JOIN: 0.95e-6,
        Op.MERGE_JOIN: 0.55e-6,
        Op.SORT: 1.10e-6,
        Op.BATCH_SORT: 0.90e-6,
        Op.STREAM_AGG: 0.45e-6,
        Op.HASH_AGG: 1.40e-6,
        Op.TOP: 0.05e-6,
    })
    #: sequential read/write (approx. 150 / 100 MB/s)
    seconds_per_byte_read: float = 1.0 / 150e6
    seconds_per_byte_written: float = 1.0 / 100e6
    #: random-I/O penalty multiplier for index-seek reads
    seek_read_penalty: float = 4.0
    #: fixed cost per probe key of an index seek (B-tree descent)
    seek_probe_seconds: float = 6.0e-6
    #: extra per-row cost factor charged by sorts, scaled by log2(n)
    sort_log_factor: float = 0.12
    #: multiplicative noise per charge: lognormal sigma (0 disables)
    noise_sigma: float = 0.06
    #: AR(1) background-load process: dt *= load, load drifts around 1.0
    load_sigma: float = 0.25
    load_rho: float = 0.995
    #: global time multiplier: stretches simulated durations into the
    #: minutes-to-hours range of real decision-support queries, so that
    #: LUO's 10-second speed window is a small fraction of a query
    time_scale: float = 2000.0

    def cpu_seconds(self, op: Op, rows: float) -> float:
        return self.cpu_per_row[op] * rows

    def sort_cpu_seconds(self, rows: float, total: float) -> float:
        """CPU for sorting ``rows`` rows of a ``total``-row sort."""
        if rows <= 0:
            return 0.0
        log_n = max(1.0, np.log2(max(total, 2.0)))
        return self.cpu_per_row[Op.SORT] * rows * self.sort_log_factor * log_n


class SimClock:
    """Simulated time plus the stochastic load process."""

    def __init__(self, cost_model: CostModel, rng: np.random.Generator):
        self.cost = cost_model
        self.rng = rng
        self.now = 0.0
        self._load = 1.0

    def advance(self, seconds: float) -> float:
        """Advance time by ``seconds`` perturbed by noise/load; returns dt."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if seconds == 0:
            return 0.0
        dt = seconds * self.cost.time_scale
        if self.cost.noise_sigma > 0:
            dt *= self.rng.lognormal(0.0, self.cost.noise_sigma)
        if self.cost.load_sigma > 0:
            rho = self.cost.load_rho
            target = self.rng.lognormal(0.0, self.cost.load_sigma)
            self._load = rho * self._load + (1.0 - rho) * target
            dt *= self._load
        self.now += dt
        return dt
