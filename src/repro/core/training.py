"""Building training data from executed workloads.

One training example per scorable pipeline: the feature vector (static or
static+dynamic) and the observed L1/L2 error of every candidate estimator
against the pipeline's time-based true progress.  The paper stresses how
cheap this capture is (§6.4): all estimators share the same counters, so
tracking all of them costs no more than tracking one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import EstimatorSelector
from repro.engine.run import PipelineRun, QueryRun
from repro.features.vector import FeatureExtractor
from repro.learning.mart import MARTParams
from repro.progress.base import ProgressEstimator
from repro.progress.metrics import l1_error, l2_error


@dataclass
class TrainingData:
    """Aligned features, errors and metadata for a set of pipelines."""

    X: np.ndarray                     # (n, n_features)
    errors_l1: np.ndarray             # (n, n_estimators)
    errors_l2: np.ndarray             # (n, n_estimators)
    feature_names: list[str]
    estimator_names: list[str]
    meta: list[dict] = field(default_factory=list)  # per-row provenance

    @property
    def n_examples(self) -> int:
        return len(self.X)

    def subset(self, mask: np.ndarray) -> "TrainingData":
        mask = np.asarray(mask)
        if mask.dtype == bool:
            idx = np.flatnonzero(mask)
        else:
            idx = mask
        return TrainingData(
            X=self.X[idx],
            errors_l1=self.errors_l1[idx],
            errors_l2=self.errors_l2[idx],
            feature_names=self.feature_names,
            estimator_names=self.estimator_names,
            meta=[self.meta[i] for i in idx],
        )

    @staticmethod
    def concat(parts: list["TrainingData"]) -> "TrainingData":
        parts = [p for p in parts if p.n_examples > 0]
        if not parts:
            raise ValueError("nothing to concatenate")
        first = parts[0]
        for p in parts[1:]:
            if p.feature_names != first.feature_names:
                raise ValueError("feature layouts disagree")
            if p.estimator_names != first.estimator_names:
                raise ValueError("estimator sets disagree")
        return TrainingData(
            X=np.vstack([p.X for p in parts]),
            errors_l1=np.vstack([p.errors_l1 for p in parts]),
            errors_l2=np.vstack([p.errors_l2 for p in parts]),
            feature_names=first.feature_names,
            estimator_names=first.estimator_names,
            meta=[m for p in parts for m in p.meta],
        )

    def restrict_estimators(self, names: list[str]) -> "TrainingData":
        """Keep only the error columns for ``names`` (e.g. DNE/TGN/LUO)."""
        cols = [self.estimator_names.index(n) for n in names]
        return TrainingData(
            X=self.X,
            errors_l1=self.errors_l1[:, cols],
            errors_l2=self.errors_l2[:, cols],
            feature_names=self.feature_names,
            estimator_names=list(names),
            meta=self.meta,
        )


def runs_to_pipelines(runs: list[QueryRun],
                      min_observations: int = 8) -> list[PipelineRun]:
    """All scorable pipelines across a list of executed queries."""
    out: list[PipelineRun] = []
    for run in runs:
        out.extend(run.pipeline_runs(min_observations=min_observations))
    return out


def collect_training_data(pipeline_runs: list[PipelineRun],
                          estimators: list[ProgressEstimator],
                          extractor: FeatureExtractor) -> TrainingData:
    """Score every estimator on every pipeline and extract features."""
    names = [est.name for est in estimators]
    rows_x, rows_l1, rows_l2, meta = [], [], [], []
    for pr in pipeline_runs:
        truth = pr.true_progress()
        estimates = {est.name: est.estimate(pr) for est in estimators}
        rows_l1.append([l1_error(estimates[n], truth) for n in names])
        rows_l2.append([l2_error(estimates[n], truth) for n in names])
        rows_x.append(extractor.extract(pr, estimates=estimates))
        meta.append({
            "query": pr.query_name,
            "db": pr.db_name,
            "pid": pr.pid,
            "duration": pr.duration,
            "total_getnext": float(pr.N.sum()),
        })
    n_features = extractor.n_features
    return TrainingData(
        X=np.asarray(rows_x).reshape(len(rows_x), n_features),
        errors_l1=np.asarray(rows_l1).reshape(len(rows_l1), len(names)),
        errors_l2=np.asarray(rows_l2).reshape(len(rows_l2), len(names)),
        feature_names=extractor.feature_names,
        estimator_names=names,
        meta=meta,
    )


def train_selector(data: TrainingData,
                   mart_params: MARTParams | None = None,
                   metric: str = "l1") -> EstimatorSelector:
    """Fit an :class:`EstimatorSelector` on collected training data."""
    if metric not in ("l1", "l2"):
        raise ValueError(f"metric must be 'l1' or 'l2', got {metric!r}")
    errors = data.errors_l1 if metric == "l1" else data.errors_l2
    selector = EstimatorSelector(data.estimator_names, mart_params)
    selector.fit(data.X, errors)
    return selector
