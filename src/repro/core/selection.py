"""Estimator selection by per-estimator error regression (paper §4.1).

The paper deliberately does *not* model selection as multi-class
classification: many estimators produce near-identical estimates, and what
matters is the magnitude of the error when the choice is wrong.  Instead,
one MART regressor per candidate estimator predicts that estimator's error
on a pipeline; selection takes the argmin of the predictions, minimizing
the expected impact of mistakes.
"""

from __future__ import annotations

import numpy as np

from repro.learning.mart import MARTParams, MARTRegressor


class EstimatorSelector:
    """One error-regression model per candidate estimator.

    Parameters
    ----------
    estimator_names:
        Names of the candidate estimators, in the column order of the
        error matrices used for training.
    mart_params:
        Hyper-parameters shared by all per-estimator models; defaults to
        the paper's (200 boosting iterations, 30-leaf trees).
    """

    def __init__(self, estimator_names: list[str],
                 mart_params: MARTParams | None = None):
        if not estimator_names:
            raise ValueError("need at least one candidate estimator")
        self.estimator_names = list(estimator_names)
        self.mart_params = mart_params or MARTParams()
        self.models: dict[str, MARTRegressor] = {}
        self.training_seconds_: float = 0.0
        #: number of scoring passes made (each pass is one
        #: :meth:`MARTRegressor.predict` per candidate, whatever the batch
        #: size) — the quantity the batched service amortizes across
        #: sessions; see ``benchmarks/bench_service_throughput.py``.
        self.predict_calls_: int = 0

    @property
    def n_estimators(self) -> int:
        return len(self.estimator_names)

    @property
    def is_fitted(self) -> bool:
        return len(self.models) == len(self.estimator_names)

    def fit(self, X: np.ndarray, errors: np.ndarray) -> "EstimatorSelector":
        """Train the per-estimator error models.

        ``errors`` is ``(n_pipelines, n_estimators)`` with columns in
        ``estimator_names`` order.
        """
        X = np.asarray(X, dtype=np.float64)
        errors = np.asarray(errors, dtype=np.float64)
        if errors.shape != (len(X), self.n_estimators):
            raise ValueError(
                f"errors must be (n, {self.n_estimators}), got {errors.shape}")
        self.models = {}
        self.training_seconds_ = 0.0
        for j, name in enumerate(self.estimator_names):
            model = MARTRegressor(self.mart_params)
            model.fit(X, errors[:, j])
            self.models[name] = model
            self.training_seconds_ += model.fit_seconds_
        return self

    def predict_errors(self, X: np.ndarray) -> np.ndarray:
        """Predicted error of every candidate on every pipeline."""
        if not self.is_fitted:
            raise RuntimeError("selector is not fitted")
        X = np.asarray(X, dtype=np.float64)
        self.predict_calls_ += 1
        columns = [self.models[name].predict(X) for name in self.estimator_names]
        return np.column_stack(columns)

    def select_indices(self, X: np.ndarray) -> np.ndarray:
        """Index (into ``estimator_names``) of the chosen estimator per row."""
        return np.argmin(self.predict_errors(X), axis=1)

    def select(self, X: np.ndarray) -> list[str]:
        """Chosen estimator name per pipeline."""
        return [self.estimator_names[i] for i in self.select_indices(X)]

    def select_one(self, x: np.ndarray) -> str:
        """Convenience: selection for a single feature vector."""
        return self.select(np.atleast_2d(x))[0]
