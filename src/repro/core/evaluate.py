"""Selection-quality metrics (paper §6).

Everything the paper's tables and figures report about a trained selector
on a test set:

* the fraction of pipelines where the selection is (close to) optimal
  under the §6.6 tolerance rules,
* the distribution of error-ratios to the per-pipeline optimum, including
  the 2x/5x/10x tail fractions of Table 6,
* average L1/L2 of the selection vs. each individual estimator vs. the
  "oracle" selector that always picks the best (the lower bound discussed
  in §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import EstimatorSelector
from repro.core.training import TrainingData
from repro.progress.metrics import near_optimal_mask

RATIO_THRESHOLDS = (2.0, 5.0, 10.0)
_RATIO_FLOOR = 1e-4


@dataclass
class SelectionEvaluation:
    """Evaluation of one selector (or fixed estimator) on one test set."""

    name: str
    chosen_indices: np.ndarray
    chosen_errors_l1: np.ndarray
    chosen_errors_l2: np.ndarray
    optimal_rate: float
    avg_l1: float
    avg_l2: float
    ratio_tail: dict[float, float] = field(default_factory=dict)
    per_estimator_l1: dict[str, float] = field(default_factory=dict)
    per_estimator_optimal_rate: dict[str, float] = field(default_factory=dict)
    oracle_l1: float = 0.0
    oracle_l2: float = 0.0

    def summary(self) -> str:
        lines = [f"== {self.name} =="]
        lines.append(f"  avg L1 {self.avg_l1:.4f}  avg L2 {self.avg_l2:.4f}  "
                     f"optimal {self.optimal_rate:.1%}")
        tail = "  ".join(f">{int(t)}x: {v:.1%}" for t, v in self.ratio_tail.items())
        lines.append(f"  ratio tail: {tail}")
        lines.append(f"  oracle L1 {self.oracle_l1:.4f}")
        for est, l1 in self.per_estimator_l1.items():
            rate = self.per_estimator_optimal_rate[est]
            lines.append(f"    {est:>10}: L1 {l1:.4f}  optimal {rate:.1%}")
        return "\n".join(lines)


def ratios_to_optimum(errors: np.ndarray, chosen: np.ndarray) -> np.ndarray:
    """Per-pipeline ratio of the chosen estimator's error to the minimum."""
    best = errors.min(axis=1)
    rows = np.arange(len(errors))
    return ((errors[rows, chosen] + _RATIO_FLOOR)
            / (best + _RATIO_FLOOR))


def evaluate_choices(name: str, data: TrainingData,
                     chosen: np.ndarray) -> SelectionEvaluation:
    """Score an arbitrary per-pipeline choice vector against the test set."""
    rows = np.arange(data.n_examples)
    chosen_l1 = data.errors_l1[rows, chosen]
    chosen_l2 = data.errors_l2[rows, chosen]
    near = near_optimal_mask(data.errors_l1)
    optimal_rate = float(near[rows, chosen].mean()) if data.n_examples else 0.0
    ratios = ratios_to_optimum(data.errors_l1, chosen)
    tail = {t: float((ratios > t).mean()) for t in RATIO_THRESHOLDS}
    per_est_l1 = {est: float(data.errors_l1[:, j].mean())
                  for j, est in enumerate(data.estimator_names)}
    per_est_rate = {est: float(near[:, j].mean())
                    for j, est in enumerate(data.estimator_names)}
    return SelectionEvaluation(
        name=name,
        chosen_indices=chosen,
        chosen_errors_l1=chosen_l1,
        chosen_errors_l2=chosen_l2,
        optimal_rate=optimal_rate,
        avg_l1=float(chosen_l1.mean()) if data.n_examples else 0.0,
        avg_l2=float(chosen_l2.mean()) if data.n_examples else 0.0,
        ratio_tail=tail,
        per_estimator_l1=per_est_l1,
        per_estimator_optimal_rate=per_est_rate,
        oracle_l1=float(data.errors_l1.min(axis=1).mean()) if data.n_examples else 0.0,
        oracle_l2=float(data.errors_l2.min(axis=1).mean()) if data.n_examples else 0.0,
    )


def evaluate_selection(selector: EstimatorSelector, data: TrainingData,
                       name: str = "estimator_selection") -> SelectionEvaluation:
    """Evaluate a trained selector on held-out pipelines."""
    if selector.estimator_names != data.estimator_names:
        raise ValueError("selector and data disagree on estimator columns")
    chosen = selector.select_indices(data.X)
    return evaluate_choices(name, data, chosen)


def evaluate_fixed(data: TrainingData, estimator: str) -> SelectionEvaluation:
    """Evaluate always choosing one fixed estimator (the paper's baselines)."""
    j = data.estimator_names.index(estimator)
    chosen = np.full(data.n_examples, j, dtype=np.int64)
    return evaluate_choices(estimator, data, chosen)


def evaluate_oracle(data: TrainingData) -> SelectionEvaluation:
    """The theoretical optimum: always pick the lowest-error estimator."""
    chosen = np.argmin(data.errors_l1, axis=1)
    return evaluate_choices("oracle", data, chosen)
