"""The paper's contribution: statistical estimator selection (§4).

* :mod:`repro.core.selection` — per-estimator MART error regressors; at
  selection time the estimator with the smallest *predicted* error wins.
* :mod:`repro.core.training` — turning executed workloads into training
  matrices (features × per-estimator errors) at pipeline granularity.
* :mod:`repro.core.evaluate` — the paper's §6 quality metrics: %-optimal
  under the tolerance rules, error-ratio tails, average L1/L2 including
  the "oracle" lower bound.
* :mod:`repro.core.monitor` — the deployable API: an online progress
  monitor that attaches to an executing query, selects estimators per
  pipeline (statically at pipeline start, revised from dynamic features at
  20% of the driver input) and reports overall query progress (eq. 5).
"""

from repro.core.evaluate import SelectionEvaluation, evaluate_selection
from repro.core.monitor import (
    MonitorState,
    ProgressMonitor,
    ProgressReport,
    ReportDraft,
)
from repro.core.selection import EstimatorSelector
from repro.core.training import (
    TrainingData,
    collect_training_data,
    runs_to_pipelines,
    train_selector,
)

__all__ = [
    "EstimatorSelector",
    "TrainingData",
    "collect_training_data",
    "runs_to_pipelines",
    "train_selector",
    "SelectionEvaluation",
    "evaluate_selection",
    "ProgressMonitor",
    "ProgressReport",
    "MonitorState",
    "ReportDraft",
]
