"""Online progress monitoring: the deployable face of the paper's system.

A :class:`ProgressMonitor` attaches to a query execution and, at every
observation tick, produces a :class:`ProgressReport`:

* per pipeline, a progress estimate from the estimator the selection model
  chose — chosen from *static* features when the pipeline starts, revised
  once from *dynamic* features when 20% of the driver input has been
  consumed (the paper's setting, §4.4);
* the overall query progress as the ΣE-weighted combination of pipeline
  estimates (eq. 5).

Report production is split into two phases so the same logic serves both
the single-query path and the pooled multi-query service
(:mod:`repro.service`):

1. :meth:`ProgressMonitor.snapshot` runs *causally inside* the observation
   callback: it captures everything that depends on mutable executor state
   (time, pipeline trajectories, feature vectors for any still-unmade
   selection) into an immutable :class:`ReportDraft`.
2. :meth:`ProgressMonitor.finalize` turns a draft into a
   :class:`ProgressReport`, resolving pending estimator selections through
   a pluggable ``resolve`` callable — the solo path resolves immediately
   per pipeline, the service batches feature vectors across all live
   sessions and resolves with a single scoring pass per tick.

Because the split captures state at observation time, a finalized report
at time *t* only uses counters up to *t* regardless of when ``finalize``
runs; the solo convenience :meth:`ProgressMonitor.run` finalizes in the
callback and returns reports as a list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.catalog.table import Database
from repro.core.selection import EstimatorSelector
from repro.engine.executor import ExecContext, ExecutorConfig, QueryExecutor
from repro.engine.run import QueryRun
from repro.features.vector import FeatureExtractor
from repro.plan.nodes import PlanNode
from repro.progress.base import ProgressEstimator
from repro.progress.registry import all_estimators

#: selector kinds a draft may reference
STATIC, DYNAMIC = "static", "dynamic"


@dataclass
class ProgressReport:
    """One snapshot of estimated query progress."""

    time: float
    progress: float
    active_pid: int
    active_estimator: str | None
    pipeline_progress: dict[int, float] = field(default_factory=dict)
    pipeline_estimator: dict[int, str] = field(default_factory=dict)


@dataclass
class MonitorState:
    """Per-query mutable selection state (sticky choices + tick counter)."""

    ticks: int = 0
    static_choices: dict[int, str] = field(default_factory=dict)
    dynamic_choices: dict[int, str] = field(default_factory=dict)
    choices: dict[int, str] = field(default_factory=dict)
    #: (pid, kind) pairs whose features were already captured in a queued
    #: draft — suppresses duplicate extraction until the choice commits
    requested: set[tuple[int, str]] = field(default_factory=set)
    #: per-pipeline ΣE weights (eq. 5), fixed once the plan is finalized
    weights: dict[int, float] | None = None


@dataclass
class PipeSnapshot:
    """Causal capture of one pipeline at one observation."""

    pid: int
    weight: float
    status: str  # "unstarted" | "done" | "short" | "running"
    pr: object | None = None          # PipelineRun snapshot when running
    kind: str | None = None           # selector kind applying at this tick
    features: np.ndarray | None = None  # set iff a new selection is needed


@dataclass
class ReportDraft:
    """Everything needed to produce one report, captured causally."""

    time: float
    pipes: list[PipeSnapshot]

    def pending_selections(self, state: MonitorState) -> list[PipeSnapshot]:
        """Snapshots whose estimator choice is not yet in ``state``."""
        out = []
        for snap in self.pipes:
            if snap.features is None:
                continue
            made = (state.dynamic_choices if snap.kind == DYNAMIC
                    else state.static_choices)
            if snap.pid not in made:
                out.append(snap)
        return out


class ProgressMonitor:
    """Runs queries under online estimator selection.

    Parameters
    ----------
    static_selector / dynamic_selector:
        Trained :class:`EstimatorSelector` models over static and
        static+dynamic features.  Either may be ``None``: with no selector
        at all the monitor falls back to ``fallback`` (default DNE),
        reproducing a conventional progress bar.
    estimators:
        Candidate pool; must cover the names both selectors emit.
    refresh_every:
        Recompute selections/estimates every k-th observation (estimates
        between refreshes are cheap to interpolate but we simply skip).
    """

    def __init__(self,
                 static_selector: EstimatorSelector | None = None,
                 dynamic_selector: EstimatorSelector | None = None,
                 estimators: list[ProgressEstimator] | None = None,
                 fallback: str = "dne",
                 dynamic_percent: float = 20.0,
                 refresh_every: int = 5,
                 on_report: Callable[[ProgressReport], None] | None = None):
        self.static_selector = static_selector
        self.dynamic_selector = dynamic_selector
        pool = estimators if estimators is not None else all_estimators()
        self.estimators = {est.name: est for est in pool}
        if fallback not in self.estimators:
            raise ValueError(f"fallback estimator {fallback!r} not in pool")
        self.fallback = fallback
        self.dynamic_percent = dynamic_percent
        self.refresh_every = max(1, refresh_every)
        self.on_report = on_report
        self._static_extractor = FeatureExtractor("static")
        self._dynamic_extractor = FeatureExtractor(
            "dynamic", estimators=list(self.estimators.values()))

    # -- public API -----------------------------------------------------------

    def run(self, db: Database, plan: PlanNode, query_name: str = "query",
            config: ExecutorConfig | None = None
            ) -> tuple[QueryRun, list[ProgressReport]]:
        """Execute ``plan`` and monitor it; returns the run and the reports."""
        reports: list[ProgressReport] = []
        state = MonitorState()

        def observe(ctx: ExecContext) -> None:
            state.ticks += 1
            if state.ticks % self.refresh_every:
                return
            report = self.finalize(self.snapshot(ctx, state), state)
            reports.append(report)
            if self.on_report is not None:
                self.on_report(report)

        executor = QueryExecutor(db, config=config, on_observation=observe)
        run = executor.execute(plan, query_name=query_name)
        return run, reports

    # -- phase 1: causal capture --------------------------------------------

    def snapshot(self, ctx: ExecContext, state: MonitorState) -> ReportDraft:
        """Capture one observation of a live execution into a draft.

        Must run inside the observation callback: everything that reads
        mutable executor state (clock, counter log, trajectories, feature
        vectors) is materialized here, so the draft stays valid however
        late it is finalized.  Feature vectors are extracted only for
        pipelines whose selection is still open in ``state`` *at this
        tick* — callers consult :meth:`ReportDraft.pending_selections`
        before finalizing.
        """
        if state.weights is None:
            total_e = sum(max(n.est_rows, 0.0)
                          for n in ctx.plan.walk()) or 1.0
            state.weights = {
                pipe.pid: sum(max(n.est_rows, 0.0)
                              for n in pipe.nodes) / total_e
                for pipe in ctx.pipelines}
        pipes: list[PipeSnapshot] = []
        for pipe in ctx.pipelines:
            pid = pipe.pid
            weight = state.weights[pid]
            started = np.isfinite(ctx.pipe_first[pid])
            terminal_done = bool(ctx.counters.done[pipe.terminal.node_id])
            if not started:
                pipes.append(PipeSnapshot(pid, weight, "unstarted"))
                continue
            if terminal_done:
                pipes.append(PipeSnapshot(pid, weight, "done"))
                continue
            pr = ctx.live_pipeline_run(pipe)
            if pr is None:
                pipes.append(PipeSnapshot(pid, weight, "short"))
                continue
            kind, features = self._selection_needs(pr, pid, state)
            pipes.append(PipeSnapshot(pid, weight, "running", pr=pr,
                                      kind=kind, features=features))
        return ReportDraft(time=float(ctx.clock.now), pipes=pipes)

    def _selection_needs(self, pr, pid: int, state: MonitorState
                         ) -> tuple[str, np.ndarray | None]:
        """Selector kind applying now, and the features if scoring is needed.

        Static choice at pipeline start, revised once at the 20% marker
        (§4.4).  Features are extracted causally, but only while the
        kind's sticky choice is still missing from ``state`` — once the
        choice is committed, later snapshots carry no feature vector.
        """
        fraction = pr.driver_fraction()[-1]
        if (self.dynamic_selector is not None
                and fraction >= self.dynamic_percent / 100.0):
            if (pid in state.dynamic_choices
                    or (pid, DYNAMIC) in state.requested):
                return DYNAMIC, None
            state.requested.add((pid, DYNAMIC))
            return DYNAMIC, self._dynamic_extractor.extract(pr)
        if (self.static_selector is None or pid in state.static_choices
                or (pid, STATIC) in state.requested):
            return STATIC, None
        state.requested.add((pid, STATIC))
        return STATIC, self._static_extractor.extract(pr)

    # -- phase 2: finalization ----------------------------------------------

    def finalize(self, draft: ReportDraft, state: MonitorState,
                 resolve: Callable[[str, np.ndarray], str] | None = None
                 ) -> ProgressReport:
        """Turn a draft into a report, committing selections into ``state``.

        ``resolve(kind, features)`` supplies the chosen estimator name for
        a still-open selection; it defaults to scoring the single feature
        vector with this monitor's own selectors.  The pooled service
        pre-resolves choices into ``state`` in one batched pass, so its
        ``resolve`` is only a lookup safety net.
        """
        if resolve is None:
            resolve = self._resolve_one
        overall = 0.0
        pipeline_progress: dict[int, float] = {}
        active_pid, active_name = -1, None
        for snap in draft.pipes:
            pid = snap.pid
            if snap.status in ("unstarted", "short"):
                pipeline_progress[pid] = 0.0
                continue
            if snap.status == "done":
                pipeline_progress[pid] = 1.0
                overall += snap.weight
                continue
            name = self._commit_choice(snap, state, resolve)
            value = float(self.estimators[name].estimate(snap.pr)[-1])
            pipeline_progress[pid] = value
            overall += snap.weight * value
            if pid > active_pid:
                active_pid, active_name = pid, name
        return ProgressReport(
            time=draft.time,
            progress=float(min(overall, 1.0)),
            active_pid=active_pid,
            active_estimator=active_name,
            pipeline_progress=pipeline_progress,
            pipeline_estimator=dict(state.choices),
        )

    def _commit_choice(self, snap: PipeSnapshot, state: MonitorState,
                       resolve: Callable[[str, np.ndarray], str]) -> str:
        pid = snap.pid
        if snap.kind == DYNAMIC:
            if pid not in state.dynamic_choices:
                state.dynamic_choices[pid] = resolve(DYNAMIC, snap.features)
            state.choices[pid] = state.dynamic_choices[pid]
            return state.dynamic_choices[pid]
        if pid not in state.static_choices:
            if self.static_selector is not None:
                state.static_choices[pid] = resolve(STATIC, snap.features)
            else:
                state.static_choices[pid] = self.fallback
        state.choices[pid] = state.static_choices[pid]
        return state.static_choices[pid]

    def _resolve_one(self, kind: str, x: np.ndarray) -> str:
        selector = (self.dynamic_selector if kind == DYNAMIC
                    else self.static_selector)
        return selector.select_one(x)
